"""The service application: routing, admission, execution, observability.

:class:`ServiceApp` is the whole HTTP surface as one synchronous
``handle(method, path, body)`` function — the asyncio server
(:mod:`repro.service.server`) is a thin socket wrapper around it, and
tests (and the benchmark's direct mode) call it without a socket.

Request lifecycle::

    POST /v1/jobs
      -> validate_request     (400 on malformed bodies)
      -> tenant admission     (403 unknown tenant, 429 over quota)
      -> job id = request digest
      -> spool lookup:
           done     -> 200, ``cache: hit`` — no executor, one spool read
           unfinished -> 202, ``cache: pending`` — the existing handle
           absent   -> 202, ``cache: miss`` — journal + enqueue

The worker (``run_pending``; driven by the server's background task,
or called directly in tests) pops pending jobs and executes them
through the engine: suite jobs via
:func:`repro.engine.executor.run_engine` against the tenant's own
:class:`~repro.engine.store.ResultStore`, sweep jobs via
:func:`repro.explore.engine.cost_suite_grid` with the tenant's chunk
store.  Each job runs inside a :mod:`repro.perfmon` profile;
``GET /v1/jobs/{id}`` embeds a live snapshot of its counters and spans
while it runs, and ``GET /metrics`` serves the service-lifetime
counters in Prometheus exposition format.

Result payloads are deterministic by construction (experiment dicts
and digest maps only — timings live in record ``meta``), serialized
with sorted keys and compact separators: identical requests produce
byte-identical result responses, which tests and the CI service-smoke
job assert with a plain byte compare.

The app also owns the **lifecycle layer** (:mod:`repro.service.lifecycle`,
DESIGN.md §5k): graceful drain (:meth:`ServiceApp.drain` — reject new
work with ``503 + Retry-After``, finish or checkpoint the in-flight
job, journal a drain record), per-request ``deadline_s`` budgets
propagated into the engine's per-job timeout, a per-``(tenant, kind)``
circuit breaker that fast-fails doomed submissions, and a worker
watchdog (:meth:`ServiceApp.beat` / :meth:`ServiceApp.watchdog_check`)
that requeues a wedged worker's job behind an epoch fence.  All of it
surfaces as ``drain.*``/``breaker.*``/``watchdog.*``/``deadline.*``
counters in ``/metrics`` and as ``ready``/``degraded``/``draining`` in
``/v1/health``.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from repro.engine.executor import run_engine
from repro.engine.store import DEFAULT_STORE_ROOT, ColumnCache, ResultStore
from repro.explore.engine import cost_suite_grid
from repro.faults.inject import FaultInjector, fault_point
from repro.faults.plan import FaultPlan
from repro.faults.retry import chaos_retry_policy
from repro.perfmon.collector import Profile
from repro.perfmon.collector import profile as perfmon_profile
from repro.perfmon.counters import declare_counters
from repro.perfmon.export import to_prometheus
from repro.service.lifecycle import (
    DEGRADED,
    DRAIN_NAMESPACE,
    DRAIN_SCHEMA,
    DRAINING,
    LIFECYCLE_COUNTERS,
    READY,
    CircuitBreaker,
    drain_key,
    retry_after_header,
)
from repro.service.requests import (
    DEFAULT_TENANT,
    RequestError,
    request_job_id,
    validate_deadline,
    validate_request,
)
from repro.service.resolve import JOB_RESOLVERS
from repro.service.spool import DONE, FAILED, RUNNING, JobRecord, JobSpool
from repro.service.tenants import Tenant, TenantRegistry, tenant_store_root
from repro.suite.archive import experiment_to_dict

__all__ = [
    "RESULT_SCHEMA",
    "CACHE_HIT",
    "CACHE_MISS",
    "CACHE_PENDING",
    "Response",
    "ServiceApp",
    "json_response",
    "canonical_json_bytes",
]

RESULT_SCHEMA = 1

CACHE_HIT = "hit"
CACHE_MISS = "miss"
CACHE_PENDING = "pending"

declare_counters(
    "service",
    (
        "requests",  # every handled HTTP request
        "submissions",  # POST /v1/jobs admitted (hit or miss)
        "hits",  # submissions answered from a completed record
        "misses",  # submissions that created a new job
        "completed",  # jobs finished successfully
        "failed",  # jobs finished in failure
        "quota_rejections",  # submissions bounced by tenant quotas
        "bad_requests",  # malformed submissions (HTTP 400)
        "swept",  # job records dropped by TTL sweeps
        "client_disconnects",  # connections dropped mid-request/response
    ),
)


@dataclass(frozen=True)
class Response:
    """One HTTP response, transport-agnostic."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: tuple[tuple[str, str], ...] = ()


def canonical_json_bytes(payload: dict) -> bytes:
    """Sorted-key compact JSON — the byte-identity serialization."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def json_response(
    status: int, payload: dict, headers: tuple[tuple[str, str], ...] = ()
) -> Response:
    return Response(status=status, body=canonical_json_bytes(payload), headers=headers)


def _error(
    status: int,
    message: str,
    reason: str | None = None,
    retry_after_s: float | None = None,
) -> Response:
    """An error response; overload-class errors carry a machine-readable
    ``reason`` and a ``Retry-After`` header so clients can back off
    without parsing prose."""
    payload: dict = {"error": message}
    headers: tuple[tuple[str, str], ...] = ()
    if reason is not None:
        payload["reason"] = reason
    if retry_after_s is not None:
        payload["retry_after_s"] = retry_after_s
        headers = retry_after_header(retry_after_s)
    return json_response(status, payload, headers=headers)


class ServiceApp:
    """Benchmark-as-a-service over the content-addressed engine."""

    def __init__(
        self,
        root: str | Path = DEFAULT_STORE_ROOT,
        tenants: TenantRegistry | None = None,
        jobs: int = 1,
        injector: FaultInjector | None = None,
        clock=time.time,
        breaker: CircuitBreaker | None = None,
        stall_timeout_s: float = 30.0,
        drain_retry_after_s: float = 5.0,
    ) -> None:
        self.root = Path(root)
        self.spool = JobSpool(self.root)
        self.tenants = tenants if tenants is not None else TenantRegistry()
        self.jobs = jobs
        self.injector = injector
        self.clock = clock
        #: (tenant, job_id) FIFO the worker drains.
        self.queue: deque[tuple[str, str]] = deque()
        #: live per-job profiles, for progress snapshots while running.
        self.job_profiles: dict[str, Profile] = {}
        #: service-lifetime profile behind ``GET /metrics``.
        self.profile = Profile(meta={"service": "repro", "root": str(self.root)})
        self.started_at = self.clock()
        # ----------------------------------------------- lifecycle state
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        #: heartbeat-age limit before the watchdog declares the worker
        #: wedged, requeues its job, and fences its epoch.
        self.stall_timeout_s = stall_timeout_s
        #: Retry-After hint handed out while draining.
        self.drain_retry_after_s = drain_retry_after_s
        self.draining = False
        self.drain_reason: str | None = None
        #: True after a job fell back to serial execution (pool loss);
        #: cleared when a pooled suite job completes cleanly again.
        self.degraded = False
        #: Fencing token: bumped by the watchdog/checkpoint so a stale
        #: worker that wakes after a requeue cannot overwrite the spool.
        self.worker_epoch = 0
        #: (tenant, job_id) the worker currently executes, if any.
        self.running_job: tuple[str, str] | None = None
        self.heartbeat_at = self.clock()
        # Seed every lifecycle counter at zero so /metrics exports the
        # full drain/breaker/watchdog/deadline surface from first scrape.
        for component, names in LIFECYCLE_COUNTERS.items():
            self.profile.counters.add_many(component, dict.fromkeys(names, 0.0))

    # ------------------------------------------------------------ counters
    def _count(self, **increments: float) -> None:
        self.profile.counters.add_many(
            "service", {name: float(value) for name, value in increments.items()}
        )

    def _record(self, component: str, **increments: float) -> None:
        self.profile.counters.add_many(
            component, {name: float(value) for name, value in increments.items()}
        )

    # ------------------------------------------------------------ recovery
    def recover(self) -> list[JobRecord]:
        """Re-enqueue unfinished spool records (startup resume path)."""
        resumed = self.spool.recover()
        for record in resumed:
            self.queue.append((record.tenant, record.job_id))
        if self.last_drain() is not None:
            self._record("drain", resumed=1.0)
        return resumed

    # ------------------------------------------------------------ routing
    def handle(self, method: str, path: str, body: bytes = b"") -> Response:
        """Dispatch one request; never raises for client-side faults."""
        self._count(requests=1.0)
        path, _, query = path.partition("?")
        params = _parse_query(query)
        parts = [p for p in path.split("/") if p]
        try:
            if method == "POST" and parts == ["v1", "jobs"]:
                return self.submit(body)
            if method == "GET" and len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                return self.job_status(parts[2], params.get("tenant"))
            if (
                method == "GET"
                and len(parts) == 4
                and parts[:2] == ["v1", "jobs"]
                and parts[3] == "result"
            ):
                return self.job_result(parts[2], params.get("tenant"))
            if method == "GET" and parts == ["v1", "jobs"]:
                return self.list_jobs(params.get("tenant"))
            if method == "GET" and len(parts) == 3 and parts[:2] == ["v1", "results"]:
                return self.result_by_digest(parts[2], params.get("tenant"))
            if method == "GET" and parts == ["metrics"]:
                return self.metrics()
            if method == "GET" and parts == ["v1", "health"]:
                return self.health()
        except Exception as exc:  # a handler bug must not kill the server
            return _error(500, f"{type(exc).__name__}: {exc}")
        return _error(404, f"no route for {method} /{'/'.join(parts)}")

    # ------------------------------------------------------------ handlers
    def submit(self, body: bytes) -> Response:
        if self.draining:
            # Drain contract: nothing new is admitted, in-flight work
            # finishes, and the client is told when to come back — the
            # restarted process will serve the resubmission (or the
            # cached result, if a twin already completed).
            self._record("drain", rejected=1.0)
            return _error(
                503,
                "server is draining"
                + (f" ({self.drain_reason})" if self.drain_reason else "")
                + "; resubmit after restart",
                reason="draining",
                retry_after_s=self.drain_retry_after_s,
            )
        try:
            parsed = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, ValueError):
            self._count(bad_requests=1.0)
            return _error(400, "request body is not valid JSON", reason="bad_request")
        try:
            request = validate_request(parsed)
            deadline_s = validate_deadline(parsed)
        except RequestError as exc:
            self._count(bad_requests=1.0)
            return _error(400, str(exc), reason="bad_request")

        tenant = self.tenants.get(request["tenant"])
        if tenant is None:
            return _error(
                403,
                f"unknown tenant {request['tenant']!r}; provisioned: "
                f"{', '.join(self.tenants.names())}",
                reason="unknown_tenant",
            )

        job_id = request_job_id(request)
        action = fault_point("service_submit", self.injector, job_id)
        if action is not None:
            if action.kind == "slow":
                time.sleep(action.delay_s)
            else:
                return _error(
                    503,
                    "injected service fault (chaos harness)",
                    reason="fault_injection",
                    retry_after_s=self.drain_retry_after_s,
                )

        existing = self.spool.get(tenant.name, job_id)
        if existing is not None and existing.state == DONE:
            # The content-addressed fast path: one spool read, no
            # executor, no queue — the "costs ~0" case.  The touch
            # renews the TTL so a sweep racing this hit cannot delete
            # the handle we just handed out.
            existing = self.spool.refresh_ttl(
                existing, now=self.clock(), ttl_s=tenant.result_ttl_s
            )
            self._count(submissions=1.0, hits=1.0)
            return json_response(
                200, self._submission_payload(existing, CACHE_HIT)
            )
        if existing is not None and not existing.finished:
            self._count(submissions=1.0)
            return json_response(
                202, self._submission_payload(existing, CACHE_PENDING)
            )

        # Only genuinely new work faces the breaker: hits and pending
        # twins above are already paid for.
        breaker_key = (tenant.name, request["kind"])
        decision = self.breaker.admit(breaker_key, self.clock())
        if decision.event == "probe":
            self._record("breaker", probes=1.0)
        if not decision.allowed:
            self._record("breaker", fast_fails=1.0)
            return _error(
                503,
                f"circuit breaker {decision.state} for tenant "
                f"{tenant.name!r} kind {request['kind']!r} after repeated "
                f"failures; retry later",
                reason="breaker_open",
                retry_after_s=decision.retry_after_s,
            )

        counts = self.spool.counts(tenant.name)
        unfinished = counts["pending"] + counts["running"]
        if existing is None and unfinished >= tenant.max_pending:
            self._count(quota_rejections=1.0)
            return _error(
                429,
                f"tenant {tenant.name!r} has {unfinished} unfinished jobs "
                f"(quota {tenant.max_pending})",
                reason="quota_pending",
                retry_after_s=self.drain_retry_after_s,
            )
        if existing is None and counts["total"] >= tenant.max_records:
            self._count(quota_rejections=1.0)
            return _error(
                429,
                f"tenant {tenant.name!r} holds {counts['total']} job records "
                f"(quota {tenant.max_records}); run gc or raise the quota",
                reason="quota_records",
                retry_after_s=self.drain_retry_after_s,
            )

        if deadline_s is not None:
            self._record("deadline", admitted=1.0)
        record = JobRecord(
            job_id=job_id,
            tenant=tenant.name,
            request=request,
            submitted_at=self.clock(),
            attempts=existing.attempts if existing is not None else 0,
            deadline_s=deadline_s,
        )
        self.spool.put(record)
        self.queue.append((tenant.name, job_id))
        self._count(submissions=1.0, misses=1.0)
        return json_response(202, self._submission_payload(record, CACHE_MISS))

    def _submission_payload(self, record: JobRecord, cache: str) -> dict:
        return {
            "job_id": record.job_id,
            "kind": record.kind,
            "tenant": record.tenant,
            "state": record.state,
            "cache": cache,
            "links": {
                "status": f"/v1/jobs/{record.job_id}?tenant={record.tenant}",
                "result": f"/v1/jobs/{record.job_id}/result?tenant={record.tenant}",
            },
        }

    def _lookup(self, job_id: str, tenant: str | None) -> JobRecord | None:
        return self.spool.get(tenant or DEFAULT_TENANT, job_id)

    def job_status(self, job_id: str, tenant: str | None) -> Response:
        record = self._lookup(job_id, tenant)
        if record is None:
            return _error(404, f"no job {job_id!r} for tenant {tenant or DEFAULT_TENANT!r}")
        payload = {
            "job_id": record.job_id,
            "kind": record.kind,
            "tenant": record.tenant,
            "state": record.state,
            "attempts": record.attempts,
            "submitted_at": record.submitted_at,
            "finished_at": record.finished_at,
            "expires_at": record.expires_at,
            "error": record.error,
            "meta": record.meta,
        }
        if record.deadline_s is not None:
            payload["deadline_s"] = record.deadline_s
            if not record.finished:
                # Remaining budget is live information, only meaningful
                # while the job can still spend it.
                payload["deadline_remaining_s"] = record.deadline_remaining_s(
                    self.clock()
                )
        live = self.job_profiles.get(record.job_id)
        if live is not None:
            payload["progress"] = _progress_snapshot(live)
        return json_response(200, payload)

    def job_result(self, job_id: str, tenant: str | None) -> Response:
        record = self._lookup(job_id, tenant)
        if record is None:
            return _error(404, f"no job {job_id!r} for tenant {tenant or DEFAULT_TENANT!r}")
        if record.state == FAILED:
            return _error(500, record.error or "job failed")
        if record.result is None:
            return json_response(
                202,
                {"job_id": record.job_id, "state": record.state,
                 "error": "result not ready"},
            )
        return Response(status=200, body=canonical_json_bytes(record.result))

    def list_jobs(self, tenant: str | None) -> Response:
        name = tenant or DEFAULT_TENANT
        if self.tenants.get(name) is None:
            return _error(403, f"unknown tenant {name!r}")
        records = self.spool.records(name)
        return json_response(
            200,
            {
                "tenant": name,
                "jobs": [
                    {"job_id": r.job_id, "kind": r.kind, "state": r.state}
                    for r in records
                ],
                "counts": self.spool.counts(name),
            },
        )

    def result_by_digest(self, digest: str, tenant: str | None) -> Response:
        """Direct content-addressed read: one store get, no job needed."""
        name = tenant or DEFAULT_TENANT
        if self.tenants.get(name) is None:
            return _error(403, f"unknown tenant {name!r}")
        store = ResultStore(tenant_store_root(self.root, name))
        for entry in store.entries():
            if entry.key != digest:
                continue
            cached = store.get(_entry_digest(entry.exp_id, entry.key))
            if cached is None:
                break  # corrupt: quarantined on read, report a miss
            return json_response(
                200,
                {
                    "schema": RESULT_SCHEMA,
                    "digest": digest,
                    "exp_id": cached.exp_id,
                    "cache": CACHE_HIT,
                    "experiment": experiment_to_dict(cached.experiment),
                },
            )
        return _error(404, f"no result under digest {digest!r} for tenant {name!r}")

    def metrics(self) -> Response:
        return Response(
            status=200,
            body=to_prometheus(self.profile).encode("utf-8"),
            content_type="text/plain; version=0.0.4",
        )

    def health_state(self) -> str:
        if self.draining:
            return DRAINING
        if self.degraded:
            return DEGRADED
        return READY

    def health(self) -> Response:
        return json_response(
            200,
            {
                "status": self.health_state(),
                "draining": self.draining,
                "degraded": self.degraded,
                "pending": len(self.queue),
                "running": sorted(self.job_profiles),
                "tenants": list(self.tenants.names()),
                "breakers": self.breaker.snapshot(),
                "worker": {
                    "epoch": self.worker_epoch,
                    "heartbeat_age_s": max(0.0, self.clock() - self.heartbeat_at),
                },
            },
        )

    # ------------------------------------------------------------ worker
    def next_pending(self) -> tuple[str, str] | None:
        try:
            return self.queue.popleft()
        except IndexError:
            return None

    def beat(self) -> None:
        """Stamp the worker heartbeat (one per drain cycle).

        The ``worker_heartbeat`` fault site lives here: a ``slow``
        action wedges the worker mid-beat (the watchdog's cue), an
        ``error`` action crashes the loop body (the supervisor's cue).
        """
        self.heartbeat_at = self.clock()
        self._record("watchdog", beats=1.0)
        action = fault_point("worker_heartbeat", self.injector, "worker")
        if action is not None:
            if action.kind == "slow":
                time.sleep(action.delay_s)
            else:
                raise RuntimeError("injected worker fault (chaos harness)")

    def _fenced(self, epoch: int | None) -> bool:
        return epoch is not None and epoch != self.worker_epoch

    def run_pending(self, max_jobs: int | None = None, epoch: int | None = None) -> int:
        """Drain the queue (the worker loop body); returns jobs run.

        ``epoch`` is the fencing token a supervised worker passes: the
        loop stops as soon as the watchdog (or a drain checkpoint) has
        moved the app to a newer epoch, so a stale worker never claims
        or completes work that was requeued away from it.
        """
        ran = 0
        while max_jobs is None or ran < max_jobs:
            self.beat()
            if self.draining or self._fenced(epoch):
                break
            item = self.next_pending()
            if item is None:
                break
            tenant, job_id = item
            self.run_one(tenant, job_id, epoch=epoch)
            ran += 1
        return ran

    def run_one(
        self, tenant_name: str, job_id: str, epoch: int | None = None
    ) -> JobRecord | None:
        """Execute one journaled job through the engine."""
        record = self.spool.get(tenant_name, job_id)
        if record is None or record.finished:
            return record
        if self._fenced(epoch):
            self._record("watchdog", fenced=1.0)
            return None
        tenant = self.tenants.get(tenant_name) or Tenant(name=tenant_name)
        breaker_key = (tenant_name, record.kind)

        remaining = record.deadline_remaining_s(self.clock())
        if remaining is not None and remaining <= 0:
            # Expired while queued: fail as timeout without spending
            # engine time on a result nobody is waiting for.
            # A lapsed budget says nothing about builder health, so the
            # breaker is not fed here (or on the exceeded path below).
            self._record("deadline", expired=1.0)
            self._count(failed=1.0)
            return self.spool.mark_failed(
                record,
                error=(
                    f"timeout: deadline of {record.deadline_s:g} s expired "
                    f"before execution started"
                ),
                meta={"attempts": record.attempts, "deadline_s": record.deadline_s},
                now=self.clock(),
                ttl_s=tenant.result_ttl_s,
            )

        record = self.spool.mark_running(record)
        self.running_job = (tenant_name, job_id)
        with perfmon_profile(job_id=job_id, tenant=tenant_name) as prof:
            self.job_profiles[job_id] = prof
            try:
                result, meta = self._execute(record, timeout_s=remaining)
            except Exception as exc:
                self.job_profiles.pop(job_id, None)
                self.running_job = None
                if self._fenced(epoch):
                    self._record("watchdog", fenced=1.0)
                    return None
                self._count(failed=1.0)
                self._breaker_failure(breaker_key)
                return self.spool.mark_failed(
                    record,
                    error=f"{type(exc).__name__}: {exc}",
                    meta={"attempts": record.attempts},
                    now=self.clock(),
                    ttl_s=tenant.result_ttl_s,
                )
            finally:
                self.job_profiles.pop(job_id, None)
                self.running_job = None
        meta["perfmon"] = _progress_snapshot(prof)
        if self._fenced(epoch):
            # The watchdog requeued this job while we were executing it:
            # our claim is stale, and writing now would race the worker
            # that legitimately owns the new epoch.  Discard.
            self._record("watchdog", fenced=1.0)
            return None
        if meta.get("serial_fallback"):
            # The engine abandoned its pool mid-job: still correct, but
            # the service is running in brownout until proven otherwise.
            self.degraded = True
            self._record("breaker", brownouts=1.0)
        elif record.kind == "suite" and self.jobs > 1 and result is not None:
            self.degraded = False
        over_deadline = (
            record.deadline_at is not None and self.clock() > record.deadline_at
        )
        if over_deadline:
            self._record("deadline", exceeded=1.0)
            self._count(failed=1.0)
            return self.spool.mark_failed(
                record,
                error=f"timeout: job exceeded its {record.deadline_s:g} s deadline",
                meta=meta,
                now=self.clock(),
                ttl_s=tenant.result_ttl_s,
            )
        if result is None:
            self._count(failed=1.0)
            self._breaker_failure(breaker_key)
            return self.spool.mark_failed(
                record,
                error=str(meta.get("failures") or "job failed"),
                meta=meta,
                now=self.clock(),
                ttl_s=tenant.result_ttl_s,
            )
        self._count(completed=1.0)
        if self.breaker.record_success(breaker_key) == "closed":
            self._record("breaker", closed=1.0)
        return self.spool.mark_done(
            record,
            result=result,
            meta=meta,
            now=self.clock(),
            ttl_s=tenant.result_ttl_s,
        )

    def _breaker_failure(self, key: tuple[str, str]) -> None:
        self._record("breaker", failures=1.0)
        if self.breaker.record_failure(key, self.clock()) == "opened":
            self._record("breaker", opened=1.0)

    # ----------------------------------------------------- server hooks
    def note_client_disconnect(self) -> None:
        """A connection died mid-request/response (observable, not fatal)."""
        self._count(client_disconnects=1.0)

    def note_worker_restart(self) -> None:
        """The supervised worker loop crashed and was restarted in place."""
        self._record("watchdog", restarts=1.0)

    # ------------------------------------------------------------ executors
    def _execute(
        self, record: JobRecord, timeout_s: float | None = None
    ) -> tuple[dict | None, dict]:
        kind = record.kind
        payload = record.request.get(kind, {})
        if kind == "suite":
            return self._execute_suite(record, payload, timeout_s=timeout_s)
        if kind == "sweep":
            return self._execute_sweep(record, payload)
        raise ValueError(f"unknown job kind {kind!r}; know {', '.join(JOB_RESOLVERS)}")

    def _execute_suite(
        self, record: JobRecord, payload: dict, timeout_s: float | None = None
    ) -> tuple[dict | None, dict]:
        exp_ids = JOB_RESOLVERS["suite"](payload)
        store = ResultStore(tenant_store_root(self.root, record.tenant))
        injector = retry = None
        if payload.get("fault_plan") is not None:
            injector = FaultPlan.from_dict(payload["fault_plan"]).injector()
            retry = chaos_retry_policy()
        report = run_engine(
            exp_ids,
            jobs=self.jobs,
            store=store,
            timeout_s=timeout_s,  # the job's remaining deadline budget
            retry=retry,
            injector=injector,
        )
        meta = {
            "cache": report.cache_counts(),
            "plan": report.plan.counts(),
            "wall_s": report.wall_s,
            "attempts": record.attempts,
            "retry_rounds": report.retry_rounds,
            "serial_fallback": report.serial_fallback,
        }
        if report.failures:
            meta["failures"] = [f.summary_line() for f in report.failures]
            return None, meta
        digests = {e.exp_id: e.digest.key for e in report.plan.entries}
        result = {
            "schema": RESULT_SCHEMA,
            "kind": "suite",
            "job_id": record.job_id,
            "tenant": record.tenant,
            "exp_ids": list(exp_ids),
            "digests": {exp_id: digests[exp_id] for exp_id in exp_ids},
            "experiments": [
                experiment_to_dict(r.experiment) for r in report.successes
            ],
        }
        return result, meta

    def _execute_sweep(self, record: JobRecord, payload: dict) -> tuple[dict, dict]:
        from repro.engine.store import ChunkStore

        sweep = JOB_RESOLVERS["sweep"](payload)
        grid = sweep.build()
        trace_ids = tuple(payload.get("traces") or ()) or None
        chunk_store = ChunkStore(tenant_store_root(self.root, record.tenant))
        start = time.perf_counter()
        outcome = cost_suite_grid(
            grid,
            trace_ids=trace_ids,
            memory_dilation=float(payload.get("dilation", 1.0)),
            store=chunk_store,
        )
        meta = {
            "wall_s": time.perf_counter() - start,
            "attempts": record.attempts,
            "n_machines": outcome.n_machines,
        }
        result = {
            "schema": RESULT_SCHEMA,
            "kind": "sweep",
            "job_id": record.job_id,
            "tenant": record.tenant,
            "anchor": payload.get("anchor", "sx4"),
            "n_machines": outcome.n_machines,
            "trace_ids": list(outcome.trace_ids),
            "machines": [
                {
                    "name": outcome.machine_names[i],
                    "suite_seconds": float(outcome.suite_seconds[i]),
                    "suite_mflops": float(outcome.suite_mflops[i]),
                    "suite_bandwidth_bytes_per_s": float(
                        outcome.suite_bandwidth_bytes_per_s[i]
                    ),
                }
                for i in range(outcome.n_machines)
            ],
        }
        return result, meta

    # ------------------------------------------------------------ lifecycle
    def watchdog_check(self, now: float | None = None) -> dict | None:
        """Detect a wedged worker; requeue its job and fence its epoch.

        Called periodically by the server's monitor task (and directly
        by tests/chaos on a logical clock).  A worker is wedged when its
        heartbeat is older than ``stall_timeout_s``.  Recovery is pure
        state surgery: the RUNNING record goes back to PENDING at the
        *front* of the queue, the epoch bump fences any write the stale
        worker attempts if it ever wakes, and the caller restarts a
        fresh worker loop on the new epoch.
        """
        now = self.clock() if now is None else now
        if self.draining:
            return None  # drain owns the endgame; see checkpoint_running
        stalled_for = now - self.heartbeat_at
        if stalled_for <= self.stall_timeout_s:
            return None
        self._record("watchdog", stalls=1.0)
        requeued: list[str] = []
        busy = self.running_job
        if busy is not None:
            tenant_name, job_id = busy
            record = self.spool.get(tenant_name, job_id)
            if record is not None and record.state == RUNNING:
                self.spool.mark_pending(record)
                self.queue.appendleft((tenant_name, job_id))
                requeued.append(job_id)
                self._record("watchdog", requeues=1.0)
            self.job_profiles.pop(job_id, None)
        self.worker_epoch += 1
        self.running_job = None
        self.heartbeat_at = now
        self._record("watchdog", restarts=1.0)
        return {
            "stalled_for_s": stalled_for,
            "requeued": requeued,
            "epoch": self.worker_epoch,
        }

    def begin_drain(self, reason: str = "signal") -> None:
        """Flip into the draining state: new submissions bounce with 503."""
        if self.draining:
            return
        self.draining = True
        self.drain_reason = reason
        self._record("drain", begun=1.0)

    def checkpoint_running(self) -> list[str]:
        """Demote every RUNNING record to PENDING (drain-timeout path).

        The epoch bump makes the demotion safe against the very worker
        we are abandoning: if it finishes after the timeout, its
        ``mark_done`` is fenced and discarded, and the restarted server
        recomputes the job to the same content-addressed result.
        """
        self.worker_epoch += 1
        self.running_job = None
        checkpointed = []
        for record in self.spool.records():
            if record.state == RUNNING:
                self.spool.mark_pending(record)
                checkpointed.append(record.job_id)
        if checkpointed:
            self._record("drain", checkpointed=float(len(checkpointed)))
        return checkpointed

    def sweep_orphan_columns(self) -> int:
        """Sweep dead-owner shared-memory column segments, all tenants."""
        swept = 0
        for name in self.tenants.names():
            root = tenant_store_root(self.root, name)
            if root.exists():
                swept += len(ColumnCache(root).sweep_orphans())
        if swept:
            self._record("drain", orphan_segments=float(swept))
        return swept

    def journal_drain(self, checkpointed: list[str], swept_segments: int) -> dict | None:
        """Write the drain record; the restarted process reads it back.

        Journaled through the same ChunkStore discipline as job records
        (atomic replace, checksummed), under a fixed key — there is only
        ever one "latest drain".  The ``service_drain`` fault site lets
        chaos stall or bounce this write; a bounced write loses only the
        record, never jobs (the spool is already consistent).
        """
        action = fault_point("service_drain", self.injector, "drain")
        if action is not None:
            if action.kind == "slow":
                time.sleep(action.delay_s)
            else:
                return None
        states = {}
        for record in self.spool.records():
            states[record.state] = states.get(record.state, 0) + 1
        payload = {
            "schema": DRAIN_SCHEMA,
            "reason": self.drain_reason,
            "drained_at": self.clock(),
            "job_states": states,
            "checkpointed": sorted(checkpointed),
            "orphan_segments_swept": swept_segments,
        }
        self.spool.chunks.put(DRAIN_NAMESPACE, drain_key(), payload)
        self._record("drain", completed=1.0)
        return payload

    def last_drain(self) -> dict | None:
        """The previous process's drain record, if it exited gracefully."""
        return self.spool.chunks.get(DRAIN_NAMESPACE, drain_key())

    def drain(
        self,
        timeout_s: float = 30.0,
        reason: str = "signal",
        poll_s: float = 0.02,
        sleep=time.sleep,
    ) -> dict:
        """The whole drain sequence, blocking up to ``timeout_s``.

        Waits for the in-flight job to finish; past the timeout it is
        checkpointed back to PENDING instead.  Either way the spool ends
        consistent, orphan column segments are swept, and a drain record
        is journaled — the graceful-exit contract the server's signal
        handler (and the lifecycle tests) rely on.
        """
        self.begin_drain(reason)
        deadline = time.monotonic() + timeout_s
        while self.running_job is not None and time.monotonic() < deadline:
            sleep(poll_s)
        checkpointed = self.checkpoint_running()
        swept = self.sweep_orphan_columns()
        journal = self.journal_drain(checkpointed, swept)
        return {
            "reason": reason,
            "checkpointed": checkpointed,
            "orphan_segments_swept": swept,
            "journaled": journal is not None,
        }

    # ------------------------------------------------------------ hygiene
    def sweep_expired(self, now: float | None = None) -> int:
        """TTL sweep over every tenant's finished job records."""
        swept = self.spool.sweep_expired(self.clock() if now is None else now)
        if swept:
            self._count(swept=float(len(swept)))
        return len(swept)


def _parse_query(query: str) -> dict[str, str]:
    params: dict[str, str] = {}
    for pair in query.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        params[key] = value
    return params


def _entry_digest(exp_id: str, key: str):
    from repro.engine.deps import ExperimentDigest

    return ExperimentDigest(exp_id=exp_id, key=key, modules=())


def _progress_snapshot(prof: Profile) -> dict:
    """A point-in-time view of a job profile, safe to take mid-run."""
    spans = list(prof.spans)
    finished = [s for s in spans if s.end_s is not None]
    return {
        "counters": prof.counters.to_dict(),
        "spans_finished": len(finished),
        "spans_open": [s.name for s in spans if s.end_s is None],
        "last_span": finished[-1].name if finished else None,
        "cache_hits": sum(
            1 for s in finished if s.attrs.get("cache") == "hit"
        ),
    }
