"""Command-line interface for the benchmark service.

Usage::

    python -m repro.service serve  [--host H] [--port P] [--cache-dir D]
                                   [--jobs N] [--costing ENGINE]
                                   [--tenants FILE] [--paused]
                                   [--ready-file F] [--drain-timeout S]
                                   [--stall-timeout S]
    python -m repro.service submit [--host H] [--port P] (--body JSON |
                                   --body-file F) [--wait] [--json]
    python -m repro.service status JOB_ID [--host H] [--port P]
                                   [--tenant T] [--result]
    python -m repro.service gc     [--cache-dir D] [--dry-run]

Exit codes follow the uniform service contract (REPO010): **0** on
success, **1** when the operation itself failed (a failed job, an
error response, an unreachable server), **2** for usage errors
(argparse's own convention).  ``submit --wait`` exits 1 when the job
finishes ``failed`` — scripting a suite through the service composes
with ``&&`` the same way running it locally does.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from repro.engine.store import DEFAULT_STORE_ROOT

__all__ = ["main"]


def _client(args: argparse.Namespace):
    from repro.service.client import ServiceClient

    return ServiceClient(host=args.host, port=args.port)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.app import ServiceApp
    from repro.service.server import serve
    from repro.service.tenants import TenantRegistry

    tenants = None
    if args.tenants:
        try:
            tenants = TenantRegistry.load(args.tenants)
        except (OSError, KeyError, TypeError, ValueError) as exc:
            print(f"error: cannot load tenants file: {exc}", file=sys.stderr)
            return 1
    if args.costing is not None:
        from repro.machine.compiled import set_default_engine

        set_default_engine(args.costing)
    app = ServiceApp(
        root=args.cache_dir,
        tenants=tenants,
        jobs=args.jobs,
        stall_timeout_s=args.stall_timeout,
    )
    try:
        asyncio.run(
            serve(
                app,
                host=args.host,
                port=args.port,
                paused=args.paused,
                ready_file=args.ready_file,
                drain_timeout_s=args.drain_timeout,
            )
        )
    except KeyboardInterrupt:
        # Only reachable where SIGINT handlers could not be installed
        # (non-POSIX); on POSIX the server drains gracefully instead.
        print("repro.service: interrupted, exiting", file=sys.stderr)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    if args.body is not None:
        raw = args.body
    else:
        try:
            raw = Path(args.body_file).read_text(encoding="utf-8")
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    try:
        body = json.loads(raw)
    except ValueError as exc:
        print(f"error: body is not valid JSON: {exc}", file=sys.stderr)
        return 1
    client = _client(args)
    try:
        submitted = client.submit(body)
    except (OSError, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not args.wait:
        print(json.dumps(submitted, indent=None if args.json else 2, sort_keys=True))
        return 0
    tenant = submitted.get("tenant")
    try:
        final = client.wait(submitted["job_id"], tenant=tenant)
    except (OSError, TimeoutError, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({"submitted": submitted, "final": final}, sort_keys=True))
    else:
        print(
            f"job {submitted['job_id']} [{submitted['cache']}] "
            f"-> {final['state']}"
        )
        if final.get("error"):
            print(f"error: {final['error']}", file=sys.stderr)
    return 0 if final.get("state") == "done" else 1


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    client = _client(args)
    try:
        if args.result:
            sys.stdout.buffer.write(
                client.result_bytes(args.job_id, tenant=args.tenant)
            )
            sys.stdout.buffer.write(b"\n")
            return 0
        payload = client.status(args.job_id, tenant=args.tenant)
    except (OSError, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    from repro.service.spool import JobSpool

    spool = JobSpool(args.cache_dir)
    swept = spool.sweep_expired(dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    for record in swept:
        print(f"{verb} {record.tenant}/{record.job_id} ({record.state})")
    print(
        f"service gc: {verb} {len(swept)} expired job "
        f"record{'' if len(swept) == 1 else 's'}"
    )
    return 0


def _add_endpoint(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="server address")
    parser.add_argument("--port", type=int, default=8750, help="server port")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Benchmark-as-a-service over the content-addressed engine.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_serve = sub.add_parser("serve", help="run the HTTP service")
    _add_endpoint(p_serve)
    p_serve.add_argument("--cache-dir", default=DEFAULT_STORE_ROOT, metavar="DIR",
                         help="store root (results, chunks, job spool)")
    p_serve.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="engine worker processes per suite job")
    from repro.machine.compiled import ENGINES

    p_serve.add_argument("--costing", choices=ENGINES, default=None,
                         metavar="ENGINE",
                         help="costing engine served jobs execute with "
                              "(default: the process default; all engines "
                              "are bit-identical)")
    p_serve.add_argument("--tenants", default=None, metavar="FILE",
                         help="tenant registry JSON (default: public only)")
    p_serve.add_argument("--paused", action="store_true",
                         help="accept submissions but do not execute "
                              "(restart-recovery staging)")
    p_serve.add_argument("--ready-file", default=None, metavar="F",
                         help="write the bound address here once listening")
    p_serve.add_argument("--drain-timeout", type=float, default=30.0, metavar="S",
                         help="seconds a SIGTERM drain waits for the in-flight "
                              "job before checkpointing it back to pending")
    p_serve.add_argument("--stall-timeout", type=float, default=30.0, metavar="S",
                         help="worker heartbeat age after which the watchdog "
                              "requeues its job and restarts the loop")

    p_submit = sub.add_parser("submit", help="POST a job submission")
    _add_endpoint(p_submit)
    group = p_submit.add_mutually_exclusive_group(required=True)
    group.add_argument("--body", default=None, help="request body as JSON text")
    group.add_argument("--body-file", default=None, metavar="F",
                       help="request body from a file")
    p_submit.add_argument("--wait", action="store_true",
                          help="poll until the job finishes; exit 1 on failure")
    p_submit.add_argument("--json", action="store_true",
                          help="compact machine-readable output")

    p_status = sub.add_parser("status", help="fetch job status or result")
    _add_endpoint(p_status)
    p_status.add_argument("job_id", help="deterministic job id (sha256)")
    p_status.add_argument("--tenant", default=None, help="tenant namespace")
    p_status.add_argument("--result", action="store_true",
                          help="print the raw result bytes instead of status")

    p_gc = sub.add_parser("gc", help="sweep expired job records")
    p_gc.add_argument("--cache-dir", default=DEFAULT_STORE_ROOT, metavar="DIR",
                      help="store root holding the job spool")
    p_gc.add_argument("--dry-run", action="store_true",
                      help="report what would be removed without removing")

    args = parser.parse_args(argv)
    handlers = {"serve": _cmd_serve, "submit": _cmd_submit,
                "status": _cmd_status, "gc": _cmd_gc}
    return handlers[args.command](args)
