"""A small blocking client for the service, on :mod:`http.client`.

The CLI's ``submit``/``status`` commands, the latency benchmark, and
the CI smoke job all talk through this — one dependency-free wrapper
that knows the routes, raises :class:`ServiceError` for error statuses,
and hands back parsed JSON (or raw bytes, for the byte-identity
checks).
"""

from __future__ import annotations

import http.client
import json
import time

__all__ = [
    "ServiceError",
    "ServiceClient",
]


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Blocking HTTP client bound to one server address."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8750, timeout_s: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # ------------------------------------------------------------ plumbing
    def request_bytes(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, bytes]:
        """One request; returns (status, raw body) without judging it."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        status, raw = self.request_bytes(method, path, body)
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            parsed = {"error": raw.decode("utf-8", "replace")}
        if status >= 400:
            raise ServiceError(status, str(parsed.get("error", parsed)))
        return parsed

    # ------------------------------------------------------------- routes
    def submit(self, body: dict) -> dict:
        return self.request("POST", "/v1/jobs", body)

    def status(self, job_id: str, tenant: str | None = None) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}{_tenant_query(tenant)}")

    def result_bytes(self, job_id: str, tenant: str | None = None) -> bytes:
        status, raw = self.request_bytes(
            "GET", f"/v1/jobs/{job_id}/result{_tenant_query(tenant)}"
        )
        if status != 200:
            raise ServiceError(status, raw.decode("utf-8", "replace"))
        return raw

    def result_by_digest(self, digest: str, tenant: str | None = None) -> dict:
        return self.request("GET", f"/v1/results/{digest}{_tenant_query(tenant)}")

    def jobs(self, tenant: str | None = None) -> dict:
        return self.request("GET", f"/v1/jobs{_tenant_query(tenant)}")

    def health(self) -> dict:
        return self.request("GET", "/v1/health")

    def metrics(self) -> str:
        status, raw = self.request_bytes("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, raw.decode("utf-8", "replace"))
        return raw.decode("utf-8")

    # ------------------------------------------------------------ helpers
    def wait(
        self,
        job_id: str,
        tenant: str | None = None,
        timeout_s: float = 120.0,
        poll_s: float = 0.05,
    ) -> dict:
        """Poll until the job finishes; returns its final status payload."""
        deadline = time.monotonic() + timeout_s
        while True:
            payload = self.status(job_id, tenant)
            if payload.get("state") in ("done", "failed"):
                return payload
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {payload.get('state')!r} "
                    f"after {timeout_s:.0f}s"
                )
            time.sleep(poll_s)

    def wait_ready(self, timeout_s: float = 30.0, poll_s: float = 0.05) -> dict:
        """Poll /v1/health until the server accepts connections."""
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                return self.health()
            except (OSError, ServiceError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll_s)


def _tenant_query(tenant: str | None) -> str:
    return f"?tenant={tenant}" if tenant else ""
