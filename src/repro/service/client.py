"""A small blocking client for the service, on :mod:`http.client`.

The CLI's ``submit``/``status`` commands, the latency benchmark, and
the CI smoke job all talk through this — one dependency-free wrapper
that knows the routes, raises :class:`ServiceError` for error statuses,
and hands back parsed JSON (or raw bytes, for the byte-identity
checks).

Resilience (the client half of DESIGN.md §5k): connection-level
``OSError`` failures are retried with the same bounded-exponential,
deterministically-jittered backoff arithmetic the engine uses
(:class:`repro.faults.retry.RetryPolicy` — a hash of the request
identity and attempt number, no entropy, so test runs replay
identically).  Overload responses (429/503) carrying ``Retry-After``
are honored on ``submit`` up to a bounded number of attempts, and the
polling helpers (:meth:`ServiceClient.wait` /
:meth:`ServiceClient.wait_ready`) grow their poll interval
geometrically instead of spinning at a fixed 50 ms.
"""

from __future__ import annotations

import http.client
import json
import time

from repro.faults.retry import RetryPolicy

__all__ = [
    "ServiceError",
    "ServiceClient",
    "connect_retry_policy",
]

#: Poll intervals grow by this factor per iteration (wait/wait_ready).
_POLL_BACKOFF_FACTOR = 1.6


def connect_retry_policy() -> RetryPolicy:
    """Backoff for connection failures: 4 tries, 50 ms base, 1 s cap."""
    return RetryPolicy(max_attempts=4, base_delay_s=0.05, max_delay_s=1.0)


class ServiceError(RuntimeError):
    """A non-2xx response from the service.

    ``reason`` is the machine-readable error class the service includes
    for overload responses (``draining``, ``breaker_open``,
    ``quota_pending``, ...); ``retry_after_s`` mirrors the
    ``Retry-After`` header when the server sent one.
    """

    def __init__(
        self,
        status: int,
        message: str,
        reason: str | None = None,
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.reason = reason
        self.retry_after_s = retry_after_s


class ServiceClient:
    """Blocking HTTP client bound to one server address.

    ``sleep`` and ``retry`` are injectable so tests drive the whole
    backoff schedule without waiting it out.  ``max_retry_after_s``
    bounds how long a server-sent ``Retry-After`` can make ``submit``
    sleep — a draining server's hint should delay a client, not park it.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8750,
        timeout_s: float = 30.0,
        retry: RetryPolicy | None = None,
        busy_retries: int = 2,
        max_retry_after_s: float = 5.0,
        sleep=time.sleep,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retry = retry if retry is not None else connect_retry_policy()
        self.busy_retries = busy_retries
        self.max_retry_after_s = max_retry_after_s
        self.sleep = sleep

    # ------------------------------------------------------------ plumbing
    def _request_once(
        self, method: str, path: str, body: bytes | None
    ) -> tuple[int, dict[str, str], bytes]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            header_map = {
                name.lower(): value for name, value in response.getheaders()
            }
            return response.status, header_map, response.read()
        finally:
            conn.close()

    def request_raw(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, dict[str, str], bytes]:
        """One request with connection retries; (status, headers, body).

        Only :class:`OSError` (refused/reset/timeout — the server is
        restarting or the network hiccuped) is retried; HTTP-level
        errors are responses, not failures, and pass straight through.
        Every route here is idempotent by construction (submissions are
        content-addressed), so a retried request is always safe.
        """
        identity = f"{self.host}:{self.port}:{method}:{path}"
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._request_once(method, path, body)
            except OSError:
                if attempt >= self.retry.max_attempts:
                    raise
                self.sleep(self.retry.delay_s(identity, attempt))

    def request_bytes(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, bytes]:
        """One request; returns (status, raw body) without judging it."""
        status, _headers, raw = self.request_raw(method, path, body)
        return status, raw

    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        status, headers, raw = self.request_raw(method, path, body)
        parsed = _parse_json(raw)
        if status >= 400:
            raise _service_error(status, headers, parsed)
        return parsed

    # ------------------------------------------------------------- routes
    def submit(self, body: dict) -> dict:
        """POST a submission, honoring ``Retry-After`` on 429/503.

        A server that is briefly overloaded (quota pressure, open
        breaker, drain window) tells the client when to come back; up
        to ``busy_retries`` hints are obeyed (each capped at
        ``max_retry_after_s``) before the error propagates.
        """
        encoded = json.dumps(body).encode("utf-8")
        busy_attempts = 0
        while True:
            status, headers, raw = self.request_raw("POST", "/v1/jobs", encoded)
            parsed = _parse_json(raw)
            if status < 400:
                return parsed
            error = _service_error(status, headers, parsed)
            if (
                status in (429, 503)
                and error.retry_after_s is not None
                and busy_attempts < self.busy_retries
            ):
                busy_attempts += 1
                self.sleep(min(error.retry_after_s, self.max_retry_after_s))
                continue
            raise error

    def status(self, job_id: str, tenant: str | None = None) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}{_tenant_query(tenant)}")

    def result_bytes(self, job_id: str, tenant: str | None = None) -> bytes:
        status, raw = self.request_bytes(
            "GET", f"/v1/jobs/{job_id}/result{_tenant_query(tenant)}"
        )
        if status != 200:
            raise ServiceError(status, raw.decode("utf-8", "replace"))
        return raw

    def result_by_digest(self, digest: str, tenant: str | None = None) -> dict:
        return self.request("GET", f"/v1/results/{digest}{_tenant_query(tenant)}")

    def jobs(self, tenant: str | None = None) -> dict:
        return self.request("GET", f"/v1/jobs{_tenant_query(tenant)}")

    def health(self) -> dict:
        return self.request("GET", "/v1/health")

    def metrics(self) -> str:
        status, raw = self.request_bytes("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, raw.decode("utf-8", "replace"))
        return raw.decode("utf-8")

    # ------------------------------------------------------------ helpers
    def wait(
        self,
        job_id: str,
        tenant: str | None = None,
        timeout_s: float = 120.0,
        poll_s: float = 0.05,
        max_poll_s: float = 1.0,
    ) -> dict:
        """Poll until the job finishes; returns its final status payload.

        The interval starts at ``poll_s`` and backs off geometrically to
        ``max_poll_s`` — near-instant cache answers stay snappy, long
        suite runs stop hammering the server twenty times a second.
        """
        deadline = time.monotonic() + timeout_s
        interval = poll_s
        while True:
            payload = self.status(job_id, tenant)
            if payload.get("state") in ("done", "failed"):
                return payload
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {payload.get('state')!r} "
                    f"after {timeout_s:.0f}s"
                )
            self.sleep(interval)
            interval = min(max_poll_s, interval * _POLL_BACKOFF_FACTOR)

    def wait_ready(
        self,
        timeout_s: float = 30.0,
        poll_s: float = 0.05,
        max_poll_s: float = 0.5,
    ) -> dict:
        """Poll /v1/health until the server accepts connections."""
        deadline = time.monotonic() + timeout_s
        interval = poll_s
        while True:
            try:
                return self.health()
            except (OSError, ServiceError):
                if time.monotonic() >= deadline:
                    raise
                self.sleep(interval)
                interval = min(max_poll_s, interval * _POLL_BACKOFF_FACTOR)


def _parse_json(raw: bytes) -> dict:
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return {"error": raw.decode("utf-8", "replace")}


def _service_error(status: int, headers: dict[str, str], parsed: dict) -> ServiceError:
    retry_after: float | None = None
    raw_hint = headers.get("retry-after")
    if raw_hint is not None:
        try:
            retry_after = float(raw_hint)
        except ValueError:
            retry_after = None
    reason = parsed.get("reason") if isinstance(parsed, dict) else None
    message = parsed.get("error", parsed) if isinstance(parsed, dict) else parsed
    return ServiceError(
        status, str(message), reason=reason, retry_after_s=retry_after
    )


def _tenant_query(tenant: str | None) -> str:
    return f"?tenant={tenant}" if tenant else ""
