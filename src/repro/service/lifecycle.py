"""Service lifecycle vocabulary: health states, breaker, drain journal.

The service's resilience story (DESIGN.md §5k) has four moving parts;
this module holds the state machines and constants they share so
:mod:`repro.service.app` stays the single wiring point:

* **Health states** — :data:`READY`/:data:`DEGRADED`/:data:`DRAINING`,
  what ``GET /v1/health`` truthfully reports.  ``degraded`` means the
  engine abandoned its process pool (serial fallback) on a recent job;
  ``draining`` means a shutdown signal arrived and new submissions
  bounce with ``503 + Retry-After``.
* **Circuit breaker** — :class:`CircuitBreaker` tracks consecutive
  execution failures per ``(tenant, kind)`` key.  After
  ``failure_threshold`` consecutive failures the breaker *opens*:
  submissions for that key fast-fail with ``503 + Retry-After`` instead
  of queueing work that is going to fail anyway.  After ``cooldown_s``
  one **probe** submission is admitted (*half-open*); its outcome
  closes the breaker or re-opens it for another cooldown.
* **Drain journal** — :func:`drain_key` names the fixed
  :class:`~repro.engine.store.ChunkStore` slot
  (namespace :data:`DRAIN_NAMESPACE`) where the app journals its final
  drain record, so the restarted process can tell a graceful handoff
  from a crash.

Everything here is deterministic given an injected clock: no module in
this file reads the wall clock itself, which is what lets the chaos
harness drive the whole lifecycle on a logical clock and assert
byte-identical reports across seeded runs.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

from repro.perfmon.counters import declare_counters

__all__ = [
    "READY",
    "DEGRADED",
    "DRAINING",
    "HEALTH_STATES",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "LIFECYCLE_COUNTERS",
    "DRAIN_NAMESPACE",
    "DRAIN_SCHEMA",
    "BreakerDecision",
    "CircuitBreaker",
    "drain_key",
    "retry_after_header",
]

# ------------------------------------------------------------- health
READY = "ready"
DEGRADED = "degraded"
DRAINING = "draining"

HEALTH_STATES = (READY, DEGRADED, DRAINING)

# ------------------------------------------------------------ counters
#: Lifecycle counters by component.  The app seeds every name at zero
#: at startup so ``/metrics`` always exports the full lifecycle
#: surface, incremented or not.
LIFECYCLE_COUNTERS: dict[str, tuple[str, ...]] = {
    "drain": (
        "begun",  # drain sequences started (signal received)
        "rejected",  # submissions bounced while draining
        "checkpointed",  # RUNNING jobs demoted to PENDING at drain timeout
        "completed",  # drain records journaled (clean exits)
        "resumed",  # startups that found a prior drain record
        "orphan_segments",  # shared-memory column segments swept on drain
    ),
    "breaker": (
        "opened",  # closed/half-open -> open transitions
        "closed",  # open/half-open -> closed transitions (probe succeeded)
        "fast_fails",  # submissions bounced by an open breaker
        "probes",  # half-open probe submissions admitted
        "failures",  # execution failures fed to the breaker
        "brownouts",  # jobs that fell back to serial execution (degraded)
    ),
    "watchdog": (
        "beats",  # worker heartbeats stamped
        "stalls",  # heartbeat-age violations detected
        "requeues",  # RUNNING jobs requeued from a wedged worker
        "restarts",  # worker loops (re)started after a stall or crash
        "fenced",  # stale-epoch writes discarded after a requeue
    ),
    "deadline": (
        "admitted",  # submissions carrying a deadline_s
        "expired",  # jobs whose deadline lapsed before execution started
        "exceeded",  # jobs that ran past their deadline (failed as timeout)
    ),
}

for _component, _names in LIFECYCLE_COUNTERS.items():
    declare_counters(_component, _names)

# ------------------------------------------------------------- breaker
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerDecision:
    """The breaker's verdict on one submission."""

    allowed: bool
    state: str
    #: seconds until a retry is worth attempting (open breakers only).
    retry_after_s: float | None = None
    #: "probe" when this admission is the half-open trial run.
    event: str | None = None


@dataclass
class _BreakerSlot:
    state: str = BREAKER_CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    probing: bool = False


@dataclass
class CircuitBreaker:
    """Consecutive-failure breaker keyed by ``(tenant, kind)``.

    Purely clock-injected: every time-dependent decision takes ``now``
    from the caller, so tests and the chaos harness drive it on a
    logical clock and two seeded runs transition identically.
    """

    failure_threshold: int = 3
    cooldown_s: float = 30.0
    _slots: dict[tuple[str, str], _BreakerSlot] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")

    def _slot(self, key: tuple[str, str]) -> _BreakerSlot:
        return self._slots.setdefault(key, _BreakerSlot())

    def state(self, key: tuple[str, str]) -> str:
        return self._slot(key).state

    def admit(self, key: tuple[str, str], now: float) -> BreakerDecision:
        """Decide one submission for ``key`` at time ``now``."""
        slot = self._slot(key)
        if slot.state == BREAKER_CLOSED:
            return BreakerDecision(allowed=True, state=BREAKER_CLOSED)
        remaining = slot.opened_at + self.cooldown_s - now
        if slot.state == BREAKER_OPEN and remaining <= 0:
            slot.state = BREAKER_HALF_OPEN
            slot.probing = True
            return BreakerDecision(
                allowed=True, state=BREAKER_HALF_OPEN, event="probe"
            )
        # Open and cooling down, or half-open with the probe still out:
        # fast-fail so the queue never accumulates doomed work.
        retry_after = max(remaining, 0.0) if slot.state == BREAKER_OPEN \
            else self.cooldown_s
        return BreakerDecision(
            allowed=False, state=slot.state, retry_after_s=retry_after
        )

    def record_success(self, key: tuple[str, str]) -> str | None:
        """An execution for ``key`` succeeded; returns "closed" on close."""
        slot = self._slot(key)
        was_open = slot.state != BREAKER_CLOSED
        slot.state = BREAKER_CLOSED
        slot.consecutive_failures = 0
        slot.probing = False
        return "closed" if was_open else None

    def record_failure(self, key: tuple[str, str], now: float) -> str | None:
        """An execution for ``key`` failed; returns "opened" on a trip."""
        slot = self._slot(key)
        slot.consecutive_failures += 1
        if slot.state == BREAKER_HALF_OPEN or (
            slot.state == BREAKER_CLOSED
            and slot.consecutive_failures >= self.failure_threshold
        ):
            slot.state = BREAKER_OPEN
            slot.opened_at = now
            slot.probing = False
            return "opened"
        return None

    def snapshot(self) -> dict[str, dict]:
        """Non-closed breakers, for the health payload (deterministic)."""
        return {
            f"{tenant}/{kind}": {
                "state": slot.state,
                "consecutive_failures": slot.consecutive_failures,
            }
            for (tenant, kind), slot in sorted(self._slots.items())
            if slot.state != BREAKER_CLOSED or slot.consecutive_failures
        }


# --------------------------------------------------------------- drain
DRAIN_SCHEMA = 1

#: ChunkStore namespace holding the (single) drain record.
DRAIN_NAMESPACE = "svclifecycle"


def drain_key() -> str:
    """The fixed 64-hex chunk key the drain record journals under."""
    return hashlib.sha256(b"service-drain").hexdigest()


def retry_after_header(retry_after_s: float) -> tuple[tuple[str, str], ...]:
    """A ``Retry-After`` header tuple (integer seconds, at least 1)."""
    return (("Retry-After", str(max(1, math.ceil(retry_after_s)))),)
