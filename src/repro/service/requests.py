"""The service request model: canonical bodies and deterministic job ids.

A job submission is a JSON object; :func:`validate_request` normalizes
it into the **canonical request** — defaults filled in explicitly,
values coerced to their canonical types, keys fixed — and
:func:`request_job_id` digests the canonical form.  Two clients that
ask for the same work therefore compute the same job id on any
machine, which is the property the whole service leans on:

* submissions are idempotent — re-POSTing a body lands on the existing
  job record instead of a duplicate;
* a completed job is a **content-addressed result** — the second
  identical submission is served from the spool in one read, marked
  ``cache: hit``, and the executor never runs;
* a killed-and-restarted server resumes a pending job under the same
  id, so clients polling across the restart never lose their handle.

The ``tag`` field is the idempotency escape hatch: clients that want
two runs of identical work (load tests, soak runs) vary the tag, which
is folded into the digest but ignored by execution.

``deadline_s`` is the opposite: validated here
(:func:`validate_deadline`) but deliberately **excluded** from the
canonical request — a deadline bounds *when* work is worth doing, not
*what* the work is, so the same submission with a different deadline
must land on the same content-addressed job (and its cached result).
"""

from __future__ import annotations

import hashlib
import json

from repro.faults.plan import FaultPlan
from repro.service.resolve import JOB_RESOLVERS

__all__ = [
    "REQUEST_SCHEMA",
    "DEFAULT_TENANT",
    "RequestError",
    "validate_request",
    "validate_deadline",
    "request_bytes",
    "request_job_id",
]

REQUEST_SCHEMA = 1

DEFAULT_TENANT = "public"


class RequestError(ValueError):
    """A submission body the service rejects (HTTP 400)."""


def _canonical_axes(axes: object) -> list[dict]:
    if not isinstance(axes, list):
        raise RequestError("sweep 'axes' must be a list of axis objects")
    canonical = []
    for axis in axes:
        if not isinstance(axis, dict) or "parameter" not in axis or "values" not in axis:
            raise RequestError(
                "each sweep axis needs 'parameter' and 'values' fields"
            )
        try:
            values = [float(v) for v in axis["values"]]
        except (TypeError, ValueError) as exc:
            raise RequestError(f"axis values must be numbers: {exc}") from exc
        canonical.append({"parameter": str(axis["parameter"]), "values": values})
    return canonical


def _canonical_suite(payload: dict) -> dict:
    ids = payload.get("ids") or []
    if not isinstance(ids, list) or any(not isinstance(i, str) for i in ids):
        raise RequestError("suite 'ids' must be a list of experiment id strings")
    canonical: dict = {"ids": list(ids)}
    fault_plan = payload.get("fault_plan")
    if fault_plan is not None:
        try:
            canonical["fault_plan"] = FaultPlan.from_dict(fault_plan).to_dict()
        except (KeyError, TypeError, ValueError) as exc:
            raise RequestError(f"invalid fault plan: {exc}") from exc
    return canonical


def _canonical_sweep(payload: dict) -> dict:
    return {
        "anchor": str(payload.get("anchor", "sx4")),
        "axes": _canonical_axes(payload.get("axes", [])),
        "include_presets": bool(payload.get("include_presets", False)),
        "traces": [str(t) for t in payload.get("traces") or []],
        "dilation": float(payload.get("dilation", 1.0)),
    }


def validate_request(body: object, default_tenant: str = DEFAULT_TENANT) -> dict:
    """Normalize a submission body into its canonical request form.

    The canonical form is what gets digested, journaled, and resolved —
    every default is made explicit here so the same work always
    serializes to the same bytes, however sparsely the client wrote it.
    Raises :class:`RequestError` on anything malformed.
    """
    if not isinstance(body, dict):
        raise RequestError("request body must be a JSON object")
    kind = body.get("kind")
    if kind not in JOB_RESOLVERS:
        raise RequestError(
            f"unknown job kind {kind!r}; know {', '.join(JOB_RESOLVERS)}"
        )
    tenant = body.get("tenant", default_tenant)
    if not isinstance(tenant, str) or not tenant:
        raise RequestError("'tenant' must be a non-empty string")
    payload = body.get(kind, {})
    if not isinstance(payload, dict):
        raise RequestError(f"{kind!r} payload must be an object")
    canonical_payload = (
        _canonical_suite(payload) if kind == "suite" else _canonical_sweep(payload)
    )
    request = {
        "schema": REQUEST_SCHEMA,
        "kind": kind,
        "tenant": tenant,
        kind: canonical_payload,
        "tag": str(body.get("tag", "")),
    }
    # Resolution must succeed before a job id exists: a request that
    # cannot resolve (unknown experiment, bad sweep axis) is a 400, not
    # a job that fails later.
    try:
        JOB_RESOLVERS[kind](canonical_payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise RequestError(str(exc)) from exc
    return request


def validate_deadline(body: object) -> float | None:
    """The submission's ``deadline_s`` budget, validated; None if absent.

    Kept out of :func:`validate_request`'s canonical form on purpose —
    see the module docstring — so callers carry it on the job record
    instead of the digest.
    """
    if not isinstance(body, dict) or body.get("deadline_s") is None:
        return None
    raw = body["deadline_s"]
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise RequestError("'deadline_s' must be a number of seconds")
    deadline = float(raw)
    if not deadline > 0 or deadline != deadline:  # rejects 0, negatives, NaN
        raise RequestError("'deadline_s' must be a positive number of seconds")
    return deadline


def request_bytes(request: dict) -> bytes:
    """The canonical serialized request — the bytes the job id digests."""
    return json.dumps(request, sort_keys=True, separators=(",", ":")).encode("utf-8")


def request_job_id(request: dict) -> str:
    """Deterministic job id: sha256 over the canonical request bytes."""
    return hashlib.sha256(request_bytes(request)).hexdigest()
