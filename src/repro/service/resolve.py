"""Pure job resolution: from a validated request payload to the work.

The service's job-execution path splits in two, deliberately:

* **resolution** (this module) maps a validated request payload onto
  the things the engine will run — suite experiment ids in paper order,
  or a built :class:`~repro.explore.sweep.ParameterSweep` — without
  reading a clock, the environment, or the filesystem;
* **execution** (:mod:`repro.service.app`) feeds the resolved work to
  :func:`repro.engine.executor.run_engine` /
  :func:`repro.explore.engine.cost_suite_grid`, which own timing,
  caching, and fan-out.

The resolvers in :data:`JOB_RESOLVERS` are registered as builder entry
points (:func:`repro.engine.deps.builder_entry_points` enumerates the
dict literal below statically), so the whole-program effect analyzer
(DET001–DET006) proves the request-handler path reaches only
deterministic builders: a request body resolves to the same work, and
the same cache keys, on every server that ever sees it.  That is what
makes request-body digests safe to use as job ids.
"""

from __future__ import annotations

from repro.analysis.traces import TRACE_BUILDERS
from repro.explore.sweep import Axis, ParameterSweep
from repro.suite.experiments import EXPERIMENTS

__all__ = [
    "JOB_RESOLVERS",
    "resolve_suite",
    "resolve_sweep",
]


def resolve_suite(payload: dict) -> tuple[str, ...]:
    """Experiment ids a suite payload dispatches, in paper order.

    ``payload["ids"]`` selects a subset (order preserved — it is part
    of the request identity); an absent or empty list means the whole
    suite.  Unknown ids raise ``ValueError`` — the handler turns that
    into an HTTP 400 before a job record is ever created.
    """
    ids = payload.get("ids") or list(EXPERIMENTS)
    unknown = [exp_id for exp_id in ids if exp_id not in EXPERIMENTS]
    if unknown:
        raise ValueError(
            f"unknown experiment id(s): {', '.join(unknown)}; "
            f"valid ids: {', '.join(EXPERIMENTS)}"
        )
    return tuple(ids)


def resolve_sweep(payload: dict) -> ParameterSweep:
    """The :class:`ParameterSweep` a sweep payload describes.

    Axes arrive as explicit value lists (``{"parameter": ..., "values":
    [...]}``) — the client lowers linear/log specs itself, so the
    request body fully determines the grid and therefore the chunk
    cache keys.  Validation (unknown parameters, empty axes, cache-only
    anchors with vector axes) happens inside the sweep model.
    """
    unknown = [
        trace_id
        for trace_id in payload.get("traces") or ()
        if trace_id not in TRACE_BUILDERS
    ]
    if unknown:
        raise ValueError(
            f"unknown trace id(s): {', '.join(unknown)}; "
            f"valid ids: {', '.join(TRACE_BUILDERS)}"
        )
    axes = tuple(
        Axis(
            parameter=str(axis["parameter"]),
            values=tuple(float(v) for v in axis["values"]),
        )
        for axis in payload.get("axes", ())
    )
    return ParameterSweep(
        anchor=str(payload.get("anchor", "sx4")),
        axes=axes,
        include_presets=bool(payload.get("include_presets", False)),
    )


#: Job kind -> resolver.  The dict literal is statically enumerated by
#: :func:`repro.engine.deps.builder_entry_points`, which places every
#: resolver under the DET determinism contract next to the experiment
#: builders themselves.
JOB_RESOLVERS = {
    "suite": resolve_suite,
    "sweep": resolve_sweep,
}
