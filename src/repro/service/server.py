"""The asyncio HTTP front end: sockets in, :class:`ServiceApp` out.

Stdlib only, by design: :func:`asyncio.start_server` plus a minimal
HTTP/1.1 reader is all the service needs — one short-lived connection
per request (``Connection: close``), no keep-alive, no chunked bodies.
The interesting logic all lives in :class:`repro.service.app.ServiceApp`;
this module is the few hundred lines that turn bytes on a socket into
``app.handle(method, target, body)`` and back, plus the process-level
lifecycle the app cannot own itself:

* the **acceptor** — parses requests and dispatches handlers via
  :func:`asyncio.to_thread` (which propagates contextvars, so perfmon
  profiles opened in handlers fold into the right collector);
* the **worker** — a daemon thread draining the job queue through
  ``app.run_pending(1, epoch=...)``.  A thread, not a task: a wedged
  job must never be able to block event-loop shutdown, and the epoch
  argument fences the thread out the moment the watchdog moves on;
* the **watchdog** — a loop task calling :meth:`ServiceApp.watchdog_check`;
  when the worker's heartbeat goes stale it requeues the RUNNING job
  and this module starts a fresh worker thread on the new epoch;
* **graceful drain** — SIGTERM/SIGINT flip the app into ``draining``
  (new submissions bounce with ``503 + Retry-After``), the in-flight
  job gets ``drain_timeout_s`` to finish (checkpointed back to PENDING
  past that), orphan column segments are swept, a drain record is
  journaled, and the process exits 0.  Restarting resumes the spool
  bit-identically — the CI service-chaos job SIGTERMs a 50-job burst
  and byte-compares every result against an uninterrupted run.

``paused=True`` starts the acceptor without the worker or watchdog:
submitted jobs journal to the spool and stay ``pending``.  The CI
service-smoke job uses it to stage a killed-mid-queue server
deterministically, then restarts without ``paused`` and watches
:meth:`ServiceApp.recover` resume the same job id to the same result
digest.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
from pathlib import Path

from repro.service.app import Response, ServiceApp

__all__ = [
    "MAX_REQUEST_BYTES",
    "WORKER_IDLE_SLEEP_S",
    "DEFAULT_DRAIN_TIMEOUT_S",
    "read_request",
    "write_response",
    "serve",
]

#: Hard cap on request bodies — a benchmark submission is a few KB.
MAX_REQUEST_BYTES = 1 << 20

#: Worker poll interval when the queue is empty.
WORKER_IDLE_SLEEP_S = 0.05

#: How long a drain waits for the in-flight job before checkpointing it.
DEFAULT_DRAIN_TIMEOUT_S = 30.0

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


async def read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, bytes] | None:
    """Parse one HTTP/1.1 request; None on EOF or a malformed head.

    Connection errors propagate to the caller, which counts them — a
    peer hanging up is normal traffic, but it must stay observable.
    """
    try:
        request_line = await reader.readline()
    except asyncio.LimitOverrunError:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        return None
    method, target, _version = parts
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                return None
    if content_length < 0 or content_length > MAX_REQUEST_BYTES:
        return None
    body = b""
    if content_length:
        try:
            body = await reader.readexactly(content_length)
        except asyncio.IncompleteReadError:
            return None
    return method.upper(), target, body


def write_response(writer: asyncio.StreamWriter, response: Response) -> None:
    extra = "".join(f"{name}: {value}\r\n" for name, value in response.headers)
    head = (
        f"HTTP/1.1 {response.status} {_REASONS.get(response.status, 'Unknown')}\r\n"
        f"Content-Type: {response.content_type}\r\n"
        f"Content-Length: {len(response.body)}\r\n"
        f"{extra}"
        f"Connection: close\r\n"
        f"\r\n"
    )
    writer.write(head.encode("latin-1") + response.body)


async def _handle_connection(
    app: ServiceApp, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    try:
        parsed = await read_request(reader)
        if parsed is None:
            response = Response(
                status=400, body=json.dumps({"error": "malformed request"}).encode()
            )
        else:
            method, target, body = parsed
            # to_thread keeps the loop responsive during long handlers
            # and carries contextvars, so perfmon stays attached.
            response = await asyncio.to_thread(app.handle, method, target, body)
        write_response(writer, response)
        await writer.drain()
    except ConnectionError:
        app.note_client_disconnect()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            app.note_client_disconnect()


def _worker_loop(app: ServiceApp, epoch: int, stop: threading.Event) -> None:
    """One worker thread's life: drain jobs until fenced, stopped, or draining."""
    while not stop.is_set():
        if app.draining or app.worker_epoch != epoch:
            break
        try:
            ran = app.run_pending(1, epoch=epoch)
        except Exception:  # injected worker fault or handler bug:
            app.note_worker_restart()  # the loop survives, counted
            ran = 0
        if not ran:
            time.sleep(WORKER_IDLE_SLEEP_S)


async def serve(
    app: ServiceApp,
    host: str = "127.0.0.1",
    port: int = 8750,
    paused: bool = False,
    ready_file: str | Path | None = None,
    drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
    watchdog_interval_s: float | None = None,
    install_signal_handlers: bool = True,
) -> None:
    """Run the service until cancelled or drained by a signal.

    Recovery happens before the socket opens: unfinished spool records
    re-enter the queue first, so a client polling a pre-restart job id
    never observes a 404 window.  ``ready_file``, when given, is
    written with the bound address once the socket is listening —
    scripts (and the CI smoke job) wait on it instead of sleeping.

    SIGTERM/SIGINT (when handlers can be installed — the main thread's
    loop on POSIX) trigger the graceful drain instead of killing the
    process: the socket keeps answering (submissions get ``503 +
    Retry-After``, status/result reads still work) while the in-flight
    job gets ``drain_timeout_s`` to finish, then the coroutine returns
    normally so the CLI exits 0.
    """
    resumed = app.recover()
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(app, r, w), host=host, port=port
    )
    bound = server.sockets[0].getsockname()
    print(
        f"repro.service: listening on http://{bound[0]}:{bound[1]} "
        f"(root={app.root}, resumed={len(resumed)} job"
        f"{'' if len(resumed) == 1 else 's'}"
        f"{', paused' if paused else ''})",
        flush=True,
    )
    if ready_file is not None:
        # Atomic: pollers wait on the path appearing, so it must never
        # be observable half-written.
        target = Path(ready_file)
        staging = target.with_name(target.name + ".tmp")
        staging.write_text(
            json.dumps({"host": bound[0], "port": bound[1]}), encoding="utf-8"
        )
        os.replace(staging, target)

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()

    def _initiate_drain(signame: str) -> None:
        app.begin_drain(signame)
        stop.set()

    if install_signal_handlers:
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, _initiate_drain, sig.name)
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-POSIX platform or a loop outside the main thread
                # (tests): cancellation remains the shutdown path.
                break

    worker_stop = threading.Event()

    def _start_worker() -> threading.Thread:
        epoch = app.worker_epoch
        thread = threading.Thread(
            target=_worker_loop,
            args=(app, epoch, worker_stop),
            name=f"repro-service-worker-{epoch}",
            daemon=True,  # a wedged job must never block process exit
        )
        thread.start()
        return thread

    if not paused:
        _start_worker()

    interval = (
        watchdog_interval_s
        if watchdog_interval_s is not None
        else max(0.05, min(1.0, app.stall_timeout_s / 4.0))
    )

    async def _watchdog() -> None:
        while True:
            await asyncio.sleep(interval)
            event = app.watchdog_check()
            if event is not None:
                requeued = ", ".join(event["requeued"]) or "none"
                print(
                    f"repro.service: watchdog stalled worker after "
                    f"{event['stalled_for_s']:.1f}s (requeued: {requeued}); "
                    f"restarting on epoch {event['epoch']}",
                    flush=True,
                )
                _start_worker()

    watchdog_task = None if paused else asyncio.ensure_future(_watchdog())
    try:
        async with server:
            # start_server is already accepting; block until a shutdown
            # signal sets the stop event (or the caller cancels us).
            await stop.wait()
            # Drain with the socket still open: submissions during the
            # window get an honest 503 + Retry-After, not a dead port.
            outcome = await asyncio.to_thread(
                app.drain, drain_timeout_s, app.drain_reason or "signal"
            )
            checkpointed = len(outcome["checkpointed"])
            print(
                f"repro.service: drained ({outcome['reason']}) — "
                f"{checkpointed} job{'' if checkpointed == 1 else 's'} "
                f"checkpointed, {outcome['orphan_segments_swept']} orphan "
                f"segment{'' if outcome['orphan_segments_swept'] == 1 else 's'} "
                f"swept, record "
                f"{'journaled' if outcome['journaled'] else 'lost'}",
                flush=True,
            )
    finally:
        worker_stop.set()
        if watchdog_task is not None:
            watchdog_task.cancel()
