"""The asyncio HTTP front end: sockets in, :class:`ServiceApp` out.

Stdlib only, by design: :func:`asyncio.start_server` plus a minimal
HTTP/1.1 reader is all the service needs — one short-lived connection
per request (``Connection: close``), no keep-alive, no chunked bodies.
The interesting logic all lives in :class:`repro.service.app.ServiceApp`;
this module is the ~150 lines that turn bytes on a socket into
``app.handle(method, path, body)`` and back.

Two tasks run in the event loop:

* the **acceptor** — parses requests and dispatches handlers via
  :func:`asyncio.to_thread` (which propagates contextvars, so perfmon
  profiles opened in handlers fold into the right collector);
* the **worker** — drains the job queue through ``app.run_pending``,
  also on a thread, so a long suite never blocks request handling.

``paused=True`` starts the acceptor without the worker: submitted jobs
journal to the spool and stay ``pending``.  The CI service-smoke job
uses it to stage a killed-mid-queue server deterministically, then
restarts without ``paused`` and watches :meth:`ServiceApp.recover`
resume the same job id to the same result digest.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path

from repro.service.app import Response, ServiceApp

__all__ = [
    "MAX_REQUEST_BYTES",
    "WORKER_IDLE_SLEEP_S",
    "read_request",
    "write_response",
    "serve",
]

#: Hard cap on request bodies — a benchmark submission is a few KB.
MAX_REQUEST_BYTES = 1 << 20

#: Worker poll interval when the queue is empty.
WORKER_IDLE_SLEEP_S = 0.05

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


async def read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, bytes] | None:
    """Parse one HTTP/1.1 request; None on EOF or a malformed head."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        return None
    method, target, _version = parts
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                return None
    if content_length < 0 or content_length > MAX_REQUEST_BYTES:
        return None
    body = b""
    if content_length:
        try:
            body = await reader.readexactly(content_length)
        except asyncio.IncompleteReadError:
            return None
    return method.upper(), target, body


def write_response(writer: asyncio.StreamWriter, response: Response) -> None:
    reason = _REASONS.get(response.status, "Unknown")
    head = (
        f"HTTP/1.1 {response.status} {reason}\r\n"
        f"Content-Type: {response.content_type}\r\n"
        f"Content-Length: {len(response.body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    writer.write(head.encode("latin-1") + response.body)


async def _handle_connection(
    app: ServiceApp, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    try:
        parsed = await read_request(reader)
        if parsed is None:
            response = Response(
                status=400, body=json.dumps({"error": "malformed request"}).encode()
            )
        else:
            method, target, body = parsed
            # to_thread keeps the loop responsive during long handlers
            # and carries contextvars, so perfmon stays attached.
            response = await asyncio.to_thread(app.handle, method, target, body)
        write_response(writer, response)
        await writer.drain()
    except ConnectionError:
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def _worker(app: ServiceApp) -> None:
    while True:
        ran = await asyncio.to_thread(app.run_pending, 1)
        if not ran:
            await asyncio.sleep(WORKER_IDLE_SLEEP_S)


async def serve(
    app: ServiceApp,
    host: str = "127.0.0.1",
    port: int = 8750,
    paused: bool = False,
    ready_file: str | Path | None = None,
) -> None:
    """Run the service until cancelled.

    Recovery happens before the socket opens: unfinished spool records
    re-enter the queue first, so a client polling a pre-restart job id
    never observes a 404 window.  ``ready_file``, when given, is
    written with the bound address once the socket is listening —
    scripts (and the CI smoke job) wait on it instead of sleeping.
    """
    resumed = app.recover()
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(app, r, w), host=host, port=port
    )
    bound = server.sockets[0].getsockname()
    print(
        f"repro.service: listening on http://{bound[0]}:{bound[1]} "
        f"(root={app.root}, resumed={len(resumed)} job"
        f"{'' if len(resumed) == 1 else 's'}"
        f"{', paused' if paused else ''})",
        flush=True,
    )
    if ready_file is not None:
        # Atomic: pollers wait on the path appearing, so it must never
        # be observable half-written.
        target = Path(ready_file)
        staging = target.with_name(target.name + ".tmp")
        staging.write_text(
            json.dumps({"host": bound[0], "port": bound[1]}), encoding="utf-8"
        )
        os.replace(staging, target)
    worker = None if paused else asyncio.ensure_future(_worker(app))
    try:
        async with server:
            await server.serve_forever()
    finally:
        if worker is not None:
            worker.cancel()
