"""Durable job spool: every job journaled to the content-addressed store.

Job records are JSON chunks in the engine's
:class:`~repro.engine.store.ChunkStore` (namespace ``svcjob-<tenant>``,
key = the job id, which is already a sha256 over the canonical request
body).  That buys the service the store's whole discipline for free:
atomic ``tmp/`` + ``os.replace`` writes (a crash mid-update leaves the
previous complete record, never a torn one), payload checksums verified
on read, and quarantine-instead-of-silent-loss for damaged entries.

State machine::

    pending -> running -> done
                      \\-> failed

Every transition rewrites the record atomically.  On startup the
server calls :meth:`JobSpool.recover`: ``running`` records are demoted
to ``pending`` (the previous process died mid-job) and everything
unfinished is handed back to the queue — same job ids, same request
bytes, so the resumed run recomputes the same digests and lands the
same results.

Finished records carry ``expires_at`` (completion time plus the
tenant's TTL); :meth:`JobSpool.sweep_expired` drops the expired ones —
``python -m repro.service gc`` and ``python -m repro.engine gc`` both
run it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.engine.store import DEFAULT_STORE_ROOT, ChunkStore
from repro.service.tenants import TENANT_NAME_RE

__all__ = [
    "SPOOL_SCHEMA",
    "SPOOL_NAMESPACE_PREFIX",
    "PENDING",
    "RUNNING",
    "DONE",
    "FAILED",
    "JOB_STATES",
    "JobRecord",
    "JobSpool",
]

SPOOL_SCHEMA = 1

SPOOL_NAMESPACE_PREFIX = "svcjob-"

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

JOB_STATES = (PENDING, RUNNING, DONE, FAILED)


@dataclass(frozen=True)
class JobRecord:
    """One journaled job: identity, state, and (eventually) its result.

    ``result`` is the deterministic payload the result endpoint serves
    byte-for-byte; everything run-dependent (timings, cache counts,
    worker attempts) lives in ``meta`` so identical requests always
    produce identical result bytes.
    """

    job_id: str
    tenant: str
    request: dict
    state: str = PENDING
    submitted_at: float = 0.0
    finished_at: float | None = None
    expires_at: float | None = None
    attempts: int = 0
    result: dict | None = None
    error: str | None = None
    meta: dict = field(default_factory=dict)
    #: Optional execution budget in seconds, measured from submission.
    #: Deliberately *not* part of the request digest: the same work with
    #: a different deadline is the same content-addressed job.
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ValueError(f"unknown job state {self.state!r}; know {JOB_STATES}")

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED)

    @property
    def kind(self) -> str:
        return str(self.request.get("kind", ""))

    @property
    def deadline_at(self) -> float | None:
        """Absolute deadline (submission + budget); restart-stable."""
        if self.deadline_s is None:
            return None
        return self.submitted_at + self.deadline_s

    def deadline_remaining_s(self, now: float) -> float | None:
        if self.deadline_at is None:
            return None
        return self.deadline_at - now

    def to_dict(self) -> dict:
        return {
            "schema": SPOOL_SCHEMA,
            "job_id": self.job_id,
            "tenant": self.tenant,
            "request": self.request,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "expires_at": self.expires_at,
            "attempts": self.attempts,
            "result": self.result,
            "error": self.error,
            "meta": self.meta,
            "deadline_s": self.deadline_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> JobRecord:
        return cls(
            job_id=str(payload["job_id"]),
            tenant=str(payload["tenant"]),
            request=dict(payload["request"]),
            state=str(payload["state"]),
            submitted_at=float(payload.get("submitted_at", 0.0)),
            finished_at=(
                None
                if payload.get("finished_at") is None
                else float(payload["finished_at"])
            ),
            expires_at=(
                None
                if payload.get("expires_at") is None
                else float(payload["expires_at"])
            ),
            attempts=int(payload.get("attempts", 0)),
            result=payload.get("result"),
            error=payload.get("error"),
            meta=dict(payload.get("meta", {})),
            deadline_s=(
                None
                if payload.get("deadline_s") is None
                else float(payload["deadline_s"])
            ),
        )


class JobSpool:
    """The durable queue: job records keyed by deterministic job id."""

    def __init__(self, root: str | Path = DEFAULT_STORE_ROOT) -> None:
        self.root = Path(root)
        self.chunks = ChunkStore(self.root)

    # ------------------------------------------------------------ naming
    @staticmethod
    def namespace(tenant: str) -> str:
        if not TENANT_NAME_RE.match(tenant):
            raise ValueError(f"invalid tenant name {tenant!r}")
        return f"{SPOOL_NAMESPACE_PREFIX}{tenant}"

    @staticmethod
    def _tenant_of(namespace: str) -> str | None:
        if not namespace.startswith(SPOOL_NAMESPACE_PREFIX):
            return None
        return namespace[len(SPOOL_NAMESPACE_PREFIX):]

    # ------------------------------------------------------------ access
    def put(self, record: JobRecord) -> Path:
        """Journal one record atomically (create or state transition)."""
        payload = record.to_dict()
        return self.chunks.put(self.namespace(record.tenant), record.job_id, payload)

    def get(self, tenant: str, job_id: str) -> JobRecord | None:
        payload = self.chunks.get(self.namespace(tenant), job_id)
        if payload is None:
            return None
        try:
            return JobRecord.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            return None  # pre-schema record: treat as absent, never crash

    def records(self, tenant: str | None = None) -> list[JobRecord]:
        """Every journaled record, oldest submission first."""
        found: list[JobRecord] = []
        for entry in self.chunks.entries():
            entry_tenant = self._tenant_of(entry.exp_id)
            if entry_tenant is None:
                continue
            if tenant is not None and entry_tenant != tenant:
                continue
            record = self.get(entry_tenant, entry.key)
            if record is not None:
                found.append(record)
        found.sort(key=lambda r: (r.submitted_at, r.job_id))
        return found

    def counts(self, tenant: str) -> dict[str, int]:
        """Records per state for one tenant (quota accounting)."""
        counts = {state: 0 for state in JOB_STATES}
        for record in self.records(tenant):
            counts[record.state] += 1
        counts["total"] = sum(counts[state] for state in JOB_STATES)
        return counts

    # ------------------------------------------------------- transitions
    def mark_running(self, record: JobRecord) -> JobRecord:
        updated = replace(record, state=RUNNING, attempts=record.attempts + 1)
        self.put(updated)
        return updated

    def mark_pending(self, record: JobRecord) -> JobRecord:
        """Demote a claimed job back to the queue (checkpoint/watchdog).

        The journaled request bytes are untouched, so the demoted job
        re-executes under the same id to the same result — the property
        the drain-and-restart byte-identity tests pin down.
        """
        updated = replace(record, state=PENDING)
        self.put(updated)
        return updated

    def refresh_ttl(self, record: JobRecord, now: float, ttl_s: float | None) -> JobRecord:
        """Extend a finished record's expiry from ``now`` (touch-on-hit).

        Closes the TTL race: a cache hit served moments before a sweep
        would otherwise hand the client a handle the sweep immediately
        deletes.  Touching on every hit makes the sweep-after-hit
        ordering harmless.
        """
        if not record.finished:
            return record
        updated = replace(
            record, expires_at=None if ttl_s is None else now + ttl_s
        )
        self.put(updated)
        return updated

    def mark_done(
        self,
        record: JobRecord,
        result: dict,
        meta: dict,
        now: float,
        ttl_s: float | None,
    ) -> JobRecord:
        updated = replace(
            record,
            state=DONE,
            result=result,
            error=None,
            meta=meta,
            finished_at=now,
            expires_at=None if ttl_s is None else now + ttl_s,
        )
        self.put(updated)
        return updated

    def mark_failed(
        self,
        record: JobRecord,
        error: str,
        meta: dict,
        now: float,
        ttl_s: float | None,
    ) -> JobRecord:
        updated = replace(
            record,
            state=FAILED,
            error=error,
            meta=meta,
            finished_at=now,
            expires_at=None if ttl_s is None else now + ttl_s,
        )
        self.put(updated)
        return updated

    # ---------------------------------------------------------- recovery
    def recover(self) -> list[JobRecord]:
        """Unfinished jobs, ``running`` demoted to ``pending``.

        Called at server startup: a ``running`` record means the
        previous process was killed mid-job, so the work goes back in
        the queue under the same id.  Completed digests are still in
        the tenant's result store, so the resumed run re-executes only
        what never finished.
        """
        resumed: list[JobRecord] = []
        for record in self.records():
            if record.finished:
                continue
            if record.state == RUNNING:
                record = self.mark_pending(record)
            resumed.append(record)
        return resumed

    # ------------------------------------------------------------ sweeping
    def sweep_expired(
        self, now: float | None = None, dry_run: bool = False
    ) -> list[JobRecord]:
        """Drop finished records whose TTL has lapsed; returns them.

        Unfinished jobs are never swept — a queue that garbage-collects
        its own backlog is not a queue.
        """
        now = time.time() if now is None else now
        swept: list[JobRecord] = []
        for record in self.records():
            if not record.finished:
                continue
            if record.expires_at is None or record.expires_at > now:
                continue
            if not dry_run:
                path = self.chunks.entry_path(
                    self.namespace(record.tenant), record.job_id
                )
                path.unlink(missing_ok=True)
            swept.append(record)
        return swept

    def clear(self) -> int:
        """Remove every job record (all tenants); returns how many."""
        removed = 0
        for entry in self.chunks.entries():
            if self._tenant_of(entry.exp_id) is None:
                continue
            entry.path.unlink(missing_ok=True)
            removed += 1
        return removed
