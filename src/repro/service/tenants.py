"""Multi-tenant namespaces: quotas, cache isolation, result TTLs.

A :class:`Tenant` is a named namespace with three knobs:

* ``max_pending`` — how many unfinished jobs it may hold (admission
  control: the submit handler answers 429 past it);
* ``max_records`` — how many job records total its spool namespace may
  hold (finished jobs count until the TTL sweeper drops them);
* ``result_ttl_s`` — how long a finished job record lives before
  ``service gc`` / ``engine gc`` sweeps it (``None`` = forever).

Cache isolation is by construction, not by filtering: every tenant's
engine :class:`~repro.engine.store.ResultStore` lives under its own
root (``<cache>/tenants/<name>/``) and its spool records live in a
per-tenant :class:`~repro.engine.store.ChunkStore` namespace
(``svcjob-<name>``), so one tenant's digests are simply not addressable
from another's requests.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "TENANT_NAME_RE",
    "Tenant",
    "TenantRegistry",
    "tenant_store_root",
]

#: Tenant names double as ChunkStore-namespace and directory fragments,
#: so the charset is deliberately narrow.
TENANT_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9_-]{0,31}$")


@dataclass(frozen=True)
class Tenant:
    """One namespace's quotas and retention policy."""

    name: str
    max_pending: int = 32
    max_records: int = 4096
    result_ttl_s: float | None = 7 * 24 * 3600.0

    def __post_init__(self) -> None:
        if not TENANT_NAME_RE.match(self.name):
            raise ValueError(
                f"invalid tenant name {self.name!r}; need {TENANT_NAME_RE.pattern}"
            )
        if self.max_pending < 1 or self.max_records < 1:
            raise ValueError("tenant quotas must be >= 1")
        if self.result_ttl_s is not None and self.result_ttl_s <= 0:
            raise ValueError("result_ttl_s must be positive (or None for no TTL)")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "max_pending": self.max_pending,
            "max_records": self.max_records,
            "result_ttl_s": self.result_ttl_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> Tenant:
        return cls(
            name=str(payload["name"]),
            max_pending=int(payload.get("max_pending", 32)),
            max_records=int(payload.get("max_records", 4096)),
            result_ttl_s=(
                None
                if payload.get("result_ttl_s") is None
                else float(payload["result_ttl_s"])
            ),
        )


class TenantRegistry:
    """The tenants a server instance admits.

    Always contains the default ``public`` tenant unless a configured
    tenant list explicitly redefines it; unknown tenants are rejected
    at submission (HTTP 403) — a namespace must be provisioned before
    it can hold work.
    """

    def __init__(self, tenants: tuple[Tenant, ...] = ()) -> None:
        self._tenants: dict[str, Tenant] = {}
        from repro.service.requests import DEFAULT_TENANT

        self._tenants[DEFAULT_TENANT] = Tenant(name=DEFAULT_TENANT)
        for tenant in tenants:
            self._tenants[tenant.name] = tenant

    def get(self, name: str) -> Tenant | None:
        return self._tenants.get(name)

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._tenants))

    def to_dict(self) -> dict:
        return {
            "tenants": [self._tenants[name].to_dict() for name in self.names()]
        }

    @classmethod
    def from_dict(cls, payload: dict) -> TenantRegistry:
        return cls(
            tenants=tuple(
                Tenant.from_dict(entry) for entry in payload.get("tenants", [])
            )
        )

    @classmethod
    def load(cls, path: str | Path) -> TenantRegistry:
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def tenant_store_root(root: str | Path, tenant: str) -> Path:
    """The engine store root a tenant's results live under.

    A subdirectory per tenant is the whole isolation mechanism: digest
    hits can only come from the tenant's own directory, so identical
    work submitted by two tenants is computed (and cached) once *each*
    — cache contents never leak across the namespace boundary.
    """
    if not TENANT_NAME_RE.match(tenant):
        raise ValueError(f"invalid tenant name {tenant!r}")
    return Path(root) / "tenants" / tenant
