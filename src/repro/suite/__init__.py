"""The NCAR Benchmark Suite harness: experiments, rendering, runner.

``experiments``
    One function per paper table/figure (and per untabulated headline
    result), each returning an :class:`~repro.suite.results.Experiment`
    carrying the regenerated rows/series, the paper's reference values
    where the text gives them, and the shape checks that define a
    successful reproduction.
``tables`` / ``figures``
    ASCII rendering of tables and line charts (plus CSV export) — the
    harness prints "the same rows/series the paper reports".
``runner``
    ``run_suite()`` executes every experiment and produces a summary
    report; ``python -m repro.suite.runner`` is the command-line entry.
"""

from repro.suite.results import Experiment, ShapeCheck
from repro.suite.tables import render_table
from repro.suite.figures import render_ascii_chart, series_to_csv
from repro.suite import experiments
from repro.suite.runner import run_suite

__all__ = [
    "Experiment",
    "ShapeCheck",
    "render_table",
    "render_ascii_chart",
    "series_to_csv",
    "experiments",
    "run_suite",
]
