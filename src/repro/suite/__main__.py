"""``python -m repro.suite`` entry point (same CLI as repro.suite.runner)."""

from repro.suite.runner import main

__all__ = ["main"]

if __name__ == "__main__":
    raise SystemExit(main())
