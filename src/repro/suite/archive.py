"""Result archiving and run-to-run comparison.

A suite run produces numbers; an archived run lets the next one answer
"did anything drift?" — the regression-tracking half of a benchmark
harness.  Experiments serialise to JSON (rows, series, checks, notes);
:func:`compare_runs` reports per-experiment check regressions and
numeric drifts beyond a tolerance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.suite.results import Experiment, ShapeCheck

__all__ = ["experiment_to_dict", "experiment_from_dict", "save_run", "load_run",
           "compare_runs", "Drift"]

_SCHEMA_VERSION = 1


def experiment_to_dict(exp: Experiment) -> dict:
    """JSON-serialisable form of one experiment."""
    return {
        "exp_id": exp.exp_id,
        "title": exp.title,
        "headers": list(exp.headers),
        "rows": [[_plain(cell) for cell in row] for row in exp.rows],
        "series": {k: [[float(x), float(y)] for x, y in v] for k, v in exp.series.items()},
        # Keys coerced to str: JSON object keys are strings, so this keeps
        # to_dict idempotent across a save/load round-trip (the store's
        # byte-identity contract depends on it).
        "paper_values": {str(k): _plain(v) for k, v in exp.paper_values.items()},
        "checks": [
            {"description": c.description, "passed": c.passed, "detail": c.detail}
            for c in exp.checks
        ],
        "notes": exp.notes,
    }


def _plain(value):
    """Coerce numpy scalars and other oddities to JSON-native types."""
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    return str(value)


def experiment_from_dict(data: dict) -> Experiment:
    """Inverse of :func:`experiment_to_dict`."""
    exp = Experiment(
        exp_id=data["exp_id"],
        title=data["title"],
        headers=list(data.get("headers", [])),
        rows=[list(row) for row in data.get("rows", [])],
        series={k: [(x, y) for x, y in v] for k, v in data.get("series", {}).items()},
        paper_values=dict(data.get("paper_values", {})),
        notes=data.get("notes", ""),
    )
    for c in data.get("checks", []):
        exp.checks.append(ShapeCheck(c["description"], c["passed"], c.get("detail", "")))
    return exp


def save_run(experiments: list[Experiment], path: str | Path) -> Path:
    """Write a suite run to a JSON archive file."""
    if not experiments:
        raise ValueError("nothing to archive")
    path = Path(path)
    payload = {
        "schema": _SCHEMA_VERSION,
        "experiments": [experiment_to_dict(e) for e in experiments],
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return path


def load_run(path: str | Path) -> list[Experiment]:
    """Read a suite run archive."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != _SCHEMA_VERSION:
        raise ValueError(f"unsupported archive schema {payload.get('schema')!r}")
    return [experiment_from_dict(d) for d in payload["experiments"]]


@dataclass
class Drift:
    """One difference between two archived runs."""

    exp_id: str
    kind: str  # "check", "value", "missing"
    description: str


def compare_runs(
    baseline: list[Experiment],
    current: list[Experiment],
    rel_tolerance: float = 0.02,
) -> list[Drift]:
    """Differences between two runs: lost/failed checks and numeric
    series drifts beyond ``rel_tolerance``."""
    if rel_tolerance < 0:
        raise ValueError("tolerance cannot be negative")
    drifts: list[Drift] = []
    base_by_id = {e.exp_id: e for e in baseline}
    for exp in current:
        base = base_by_id.get(exp.exp_id)
        if base is None:
            drifts.append(Drift(exp.exp_id, "missing", "no baseline for this experiment"))
            continue
        base_checks = {c.description: c.passed for c in base.checks}
        for check in exp.checks:
            was = base_checks.get(check.description)
            if was is True and not check.passed:
                drifts.append(
                    Drift(exp.exp_id, "check", f"regressed: {check.description}")
                )
        for label, pts in exp.series.items():
            base_pts = dict((x, y) for x, y in base.series.get(label, []))
            for x, y in pts:
                if x not in base_pts:
                    continue
                ref = base_pts[x]
                if ref == 0:
                    continue
                if abs(y - ref) > rel_tolerance * abs(ref):
                    drifts.append(
                        Drift(
                            exp.exp_id,
                            "value",
                            f"{label} at x={x:g}: {ref:g} -> {y:g}",
                        )
                    )
    for exp in baseline:
        if exp.exp_id not in {e.exp_id for e in current}:
            drifts.append(Drift(exp.exp_id, "missing", "experiment dropped from the run"))
    return drifts
