"""One function per paper table/figure: regenerate, compare, shape-check.

Each ``table*`` / ``figure*`` / ``sec*`` function builds the experiment's
rows or series from the library, attaches the paper's stated reference
values, and records :class:`~repro.suite.results.ShapeCheck` verdicts for
the claims the paper's text makes about that result.  ``EXPERIMENTS`` is
the registry the runner and the benchmark harness iterate.
"""

from __future__ import annotations

from typing import Callable

from repro.apps.ccm2 import costmodel as ccm2_cost
from repro.apps.mom import costmodel as mom_cost
from repro.apps.pop import costmodel as pop_cost
from repro.kernels import copy as kcopy
from repro.kernels import (
    elefunt,
    hint,
    ia,
    linpack,
    nas,
    paranoia,
    radabs,
    rfft,
    stream,
    vfft,
    xpose,
)
from repro.machine import floatformats
from repro.machine.ixs import MultiNodeSystem
from repro.machine.node import Node
from repro.machine.presets import sx4_node, sx4_processor, table1_machines
from repro.machine.processor import Processor
from repro.machine.specs import sx4_32_benchmark_specs
from repro.scheduler import prodload
from repro.iosim import hippi, history, network
from repro.suite.results import Experiment
from repro.units import GB, GIGA, MB, MEGA, TB, fmt_time

__all__ = [
    "table1_hint_vs_radabs",
    "table2_specs",
    "table3_elefunt",
    "table4_resolutions",
    "table5_one_year",
    "table6_ensemble",
    "table7_mom",
    "figure5_memory_bandwidth",
    "figure6_rfft",
    "figure7_vfft",
    "figure8_ccm2_scaling",
    "sec41_correctness",
    "sec44_radabs",
    "sec45_io",
    "sec46_prodload",
    "sec473_pop",
    "sec2_architecture",
    "sec3_other_benchmarks",
    "EXPERIMENTS",
]


def _sx4() -> Processor:
    return sx4_processor()


def _node() -> Node:
    return sx4_node()


# ---------------------------------------------------------------- Table 1
PAPER_TABLE1 = {
    "SUN SPARC20": (3.5, 12.8),
    "IBM RS6K 590": (5.2, 16.5),
    "CRI J90": (1.7, 60.8),
    "CRI YMP": (3.1, 178.1),
}


def table1_hint_vs_radabs() -> Experiment:
    """Table 1: HINT MQUIPS vs RADABS Mflops on four systems."""
    exp = Experiment(
        exp_id="table1",
        title="HINT (MQUIPS) vs RADABS (MFLOPS), single processors",
        headers=["Benchmark", "SUN SPARC20", "IBM RS6K 590", "CRI J90", "CRI YMP"],
        paper_values={name: v for name, v in PAPER_TABLE1.items()},
    )
    machines = table1_machines()
    quips = {n: hint.model_mquips(p) for n, p in machines.items()}
    flops = {n: radabs.model_mflops(p) for n, p in machines.items()}
    order = list(PAPER_TABLE1)
    exp.rows = [
        ["HINT (MQUIPS)"] + [round(quips[n], 1) for n in order],
        ["RADABS (MFLOPS)"] + [round(flops[n], 1) for n in order],
    ]
    exp.check(
        "RADABS ranks the vector machines first (YMP > J90 > RS6K > SPARC)",
        flops["CRI YMP"] > flops["CRI J90"] > flops["IBM RS6K 590"] > flops["SUN SPARC20"],
    )
    exp.check(
        "HINT inverts the ranking (workstations above the vector machines)",
        quips["SUN SPARC20"] > quips["CRI YMP"]
        and quips["IBM RS6K 590"] > quips["CRI YMP"]
        and quips["CRI J90"] == min(quips.values()),
    )
    for name, (paper_q, paper_f) in PAPER_TABLE1.items():
        exp.check(
            f"{name} within 20% of paper (HINT {paper_q}, RADABS {paper_f})",
            abs(quips[name] - paper_q) <= 0.2 * paper_q
            and abs(flops[name] - paper_f) <= 0.2 * paper_f,
            detail=f"model {quips[name]:.1f} MQUIPS / {flops[name]:.1f} Mflops",
        )
    return exp


# ---------------------------------------------------------------- Table 2
def table2_specs() -> Experiment:
    """Table 2: the benchmarked SX-4/32's specification sheet."""
    specs = sx4_32_benchmark_specs()
    exp = Experiment(
        exp_id="table2",
        title="Specifications of the benchmarked NEC SX-4/32",
        headers=["Item", "Value"],
        rows=[list(row) for row in specs.rows()],
        paper_values={
            "Clock Rate": "9.2 ns",
            "Peak FLOP Rate Per Processor": "2 GFLOPS",
            "Peak Memory Bandwidth": "16 GB/sec/proc",
            "Power Consumption": "122.8 KVA",
        },
    )
    rows = dict(specs.rows())
    for key, value in exp.paper_values.items():
        exp.check(f"{key} = {value}", rows[key] == value, detail=f"model: {rows[key]}")
    return exp


# ---------------------------------------------------------------- Table 3
def table3_elefunt() -> Experiment:
    """Table 3: intrinsic throughput in millions of calls per second.

    The paper's numeric values survive only as an image; the shape
    criteria are the vectorised-library magnitude and ordering.
    """
    table = elefunt.model_table3(_sx4())
    exp = Experiment(
        exp_id="table3",
        title="SX-4/1 intrinsic functions, millions of calls/second (64-bit)",
        headers=["EXP", "LOG", "PWR", "SIN", "SQRT"],
        rows=[[round(table[f], 1) for f in ("exp", "log", "pwr", "sin", "sqrt")]],
        notes="Paper values unavailable (image); shape criteria applied.",
    )
    exp.check(
        "all intrinsics run at vectorised-library rates (10..500 Mcalls/s)",
        all(10.0 < v < 500.0 for v in table.values()),
        detail=str({k: round(v, 1) for k, v in table.items()}),
    )
    exp.check("PWR (log+exp) is the slowest intrinsic", table["pwr"] == min(table.values()))
    exp.check("SQRT (divide pipes) is the fastest", table["sqrt"] == max(table.values()))
    return exp


# ---------------------------------------------------------------- Table 4
def table4_resolutions() -> Experiment:
    """Table 4: CCM2 resolutions, grids, spacings, timesteps (verbatim)."""
    from repro.apps.ccm2.resolutions import RESOLUTIONS

    exp = Experiment(
        exp_id="table4",
        title="Typical CCM2 resolutions, grid spacings, and time steps",
        headers=["Model Resolution", "Horizontal Grid Size", "Nominal Grid Spacing", "Time Step"],
    )
    paper = {
        "T42L18": ("64 x 128", "2.8 degrees", "20.0 min."),
        "T63L18": ("96 x 192", "2.1 degrees", "12.0 min."),
        "T85L18": ("128 x 256", "1.4 degrees", "10.0 min."),
        "T106L18": ("160 x 320", "1.1 degrees", "7.5 min."),
        "T170L18": ("256 x 512", "0.7 degrees", "5.0 min."),
    }
    exp.paper_values = paper
    for name, res in RESOLUTIONS.items():
        exp.rows.append(
            [
                name,
                res.horizontal_grid_label,
                f"{res.grid_spacing_degrees:.1f} degrees",
                f"{res.timestep_minutes:g} min.",
            ]
        )
        grid_ok = res.horizontal_grid_label == paper[name][0]
        step_ok = f"{res.timestep_minutes:g} min." == paper[name][2].replace("20.0", "20").replace(
            "12.0", "12"
        ) or f"{res.timestep_minutes:.1f} min." == paper[name][2]
        exp.check(f"{name} grid and timestep match Table 4", grid_ok and step_ok)
    # T63's paper spacing (2.1) is the great-circle latitude spacing; the
    # longitude formula gives 1.9 — check the others match on rounding.
    for name in ("T42L18", "T85L18", "T106L18", "T170L18"):
        res = RESOLUTIONS[name]
        exp.check(
            f"{name} nominal spacing rounds to the paper's value",
            f"{res.grid_spacing_degrees:.1f}" == paper[name][1].split()[0],
        )
    return exp


# ---------------------------------------------------------------- Table 5
def table5_one_year() -> Experiment:
    """Table 5: one-year simulations at T42L18 and T63L18."""
    node = _node()
    y42 = ccm2_cost.year_simulation_seconds(node, "T42L18")
    y63 = ccm2_cost.year_simulation_seconds(node, "T63L18")
    exp = Experiment(
        exp_id="table5",
        title="Time to simulate one year of climate (seconds)",
        headers=["Resolution", "Model time (s)", "Paper time (s)", "of which I/O (s)"],
        rows=[
            ["T42L18", round(y42["total_seconds"], 2), 1327.53, round(y42["io_seconds"], 1)],
            ["T63L18", round(y63["total_seconds"], 2), 3452.48, round(y63["io_seconds"], 1)],
        ],
        paper_values={"T42L18": 1327.53, "T63L18": 3452.48, "T63 history GB": 15.0},
        notes=(
            "Model times are dedicated-mode; the paper's production runs "
            "(unknown CPU allocation, shared machine) are ~2.8x slower in "
            "absolute terms.  The T63/T42 ratio — the shape — matches."
        ),
    )
    ratio = y63["total_seconds"] / y42["total_seconds"]
    exp.check(
        "T63/T42 cost ratio matches the paper's 2.60 within 15%",
        abs(ratio - 3452.48 / 1327.53) <= 0.15 * (3452.48 / 1327.53),
        detail=f"model ratio {ratio:.2f}",
    )
    exp.check(
        "T63 year writes approximately 15 GB",
        abs(y63["io_bytes"] - 15e9) <= 0.15 * 15e9,
        detail=f"model {y63['io_bytes'] / GB:.1f} GB",
    )
    exp.check(
        "both runs complete in minutes-to-an-hour, not hours",
        y42["total_seconds"] < 3600 and y63["total_seconds"] < 2 * 3600,
    )
    return exp


# ---------------------------------------------------------------- Table 6
def table6_ensemble() -> Experiment:
    """Table 6: the ensemble test — 1 vs 8 concurrent 4-CPU CCM2 jobs."""
    result = ccm2_cost.ensemble_degradation(_node())
    degradation_pct = 100.0 * result["degradation"]
    exp = Experiment(
        exp_id="table6",
        title="Ensemble test: single vs eight concurrent 4-processor jobs",
        headers=["Quantity", "Model", "Paper"],
        rows=[
            ["per-step wall, single job (s)", result["single_seconds"], "(image)"],
            ["per-step wall, 8 concurrent (s)", result["loaded_seconds"], "(image)"],
            ["relative degradation (%)", round(degradation_pct, 2), 1.89],
        ],
        paper_values={"degradation_pct": 1.89},
        notes="Raw times in the paper's Table 6 survive only as an image.",
    )
    exp.check(
        "degradation is 'very little' (< 5%)",
        result["degradation"] < 0.05,
        detail=f"{degradation_pct:.2f}%",
    )
    exp.check(
        "degradation within 35% of the paper's 1.89%",
        abs(degradation_pct - 1.89) <= 0.35 * 1.89,
        detail=f"{degradation_pct:.2f}%",
    )
    return exp


# ---------------------------------------------------------------- Table 7
def table7_mom() -> Experiment:
    """Table 7: MOM 350-step times and speedups."""
    table = mom_cost.speedup_table(_node())
    exp = Experiment(
        exp_id="table7",
        title="MOM: time for 350 steps and speedup vs one processor",
        headers=["CPUs", "Model time (s)", "Paper time (s)", "Model speedup", "Paper speedup"],
        paper_values={p: v for p, v in mom_cost.PAPER_TABLE7.items()},
    )
    for cpus, (t, s) in table.items():
        paper_t, paper_s = mom_cost.PAPER_TABLE7[cpus]
        exp.rows.append([cpus, round(t, 2), paper_t, round(s, 2), paper_s])
    exp.check(
        "single-CPU time matches the paper's 1861.25 s within 5%",
        abs(table[1][0] - 1861.25) <= 0.05 * 1861.25,
        detail=f"model {table[1][0]:.1f} s",
    )
    for cpus, (paper_t, _) in mom_cost.PAPER_TABLE7.items():
        exp.check(
            f"{cpus}-CPU time within 15% of the paper's {paper_t} s",
            abs(table[cpus][0] - paper_t) <= 0.15 * paper_t,
            detail=f"model {table[cpus][0]:.1f} s",
        )
    speedups = [table[p][1] for p in (1, 4, 8, 16, 32)]
    exp.check("speedup is monotone and sublinear ('modest scalability')",
              speedups == sorted(speedups) and all(s <= p for s, p in zip(speedups, (1, 4, 8, 16, 32))))
    exp.notes = (
        "The paper's printed speedups are inconsistent with its own times "
        "(1861.25/226.62 = 8.21, printed as 9.06); the model matches the times."
    )
    return exp


# ---------------------------------------------------------------- Figure 5
def figure5_memory_bandwidth() -> Experiment:
    """Figure 5: COPY / IA / XPOSE bandwidth vs axis length, SX-4/1."""
    proc = _sx4()
    curves = {
        "COPY": kcopy.model_curve(proc),
        "IA": ia.model_curve(proc),
        "XPOSE": xpose.model_curve(proc),
    }
    exp = Experiment(
        exp_id="figure5",
        title="Memory bandwidth (MB/s) vs axis length, SX-4/1",
        notes="Paper axis values unavailable (image); shape criteria applied.",
    )
    for name, curve in curves.items():
        ns, bws = curve.series()
        exp.series[name] = list(zip(map(float, ns), bws))
    copy_bw = curves["COPY"].asymptote_mb_per_s
    ia_bw = curves["IA"].asymptote_mb_per_s
    xpose_bw = curves["XPOSE"].asymptote_mb_per_s
    exp.check(
        "COPY far exceeds XPOSE and IA (>2x both)",
        copy_bw > 2 * ia_bw and copy_bw > 2 * xpose_bw,
        detail=f"COPY {copy_bw:.0f}, XPOSE {xpose_bw:.0f}, IA {ia_bw:.0f} MB/s",
    )
    exp.check(
        "COPY approaches the one-way port rate (4-7 GB/s at 9.2 ns)",
        4000 < copy_bw < 7000,
        detail=f"{copy_bw:.0f} MB/s",
    )
    for name, curve in curves.items():
        ns, bws = curve.series()
        exp.check(
            f"{name} bandwidth rises strongly with axis length",
            bws[-1] > 20 * bws[0],
            detail=f"{bws[0]:.1f} -> {bws[-1]:.0f} MB/s",
        )
    return exp


# ---------------------------------------------------------------- Figure 6
def figure6_rfft() -> Experiment:
    """Figure 6: RFFT Mflops vs transform length, three factor families."""
    fam = rfft.model_family(_sx4())
    exp = Experiment(
        exp_id="figure6",
        title="RFFT ('scalar' style) Mflops vs transform length, SX-4/1",
        notes="Paper axis values unavailable (image); shape criteria applied.",
    )
    for family, pts in fam.items():
        exp.series[family] = [(float(n), mf) for n, mf in pts]
    pow2 = dict(fam["2^n"])
    exp.check(
        "performance rises with transform length",
        pow2[1024] > pow2[16] > pow2[2],
        detail=f"N=2: {pow2[2]:.0f}, N=16: {pow2[16]:.0f}, N=1024: {pow2[1024]:.0f} Mflops",
    )
    exp.check(
        "scalar-style code stays far below vector rates (< 200 Mflops)",
        all(mf < 200 for pts in fam.values() for _, mf in pts),
    )
    return exp


# ---------------------------------------------------------------- Figure 7
def figure7_vfft() -> Experiment:
    """Figure 7: VFFT Mflops vs instance count (vector length)."""
    proc = _sx4()
    fam = vfft.model_family(proc)
    exp = Experiment(
        exp_id="figure7",
        title="VFFT ('vector' style) Mflops vs vector length, SX-4/1",
        notes="Paper axis values unavailable (image); shape criteria applied.",
    )
    # Series per family at N=256-class lengths: plot Mflops vs M.
    for family, pts in fam.items():
        biggest_n = max(n for n, _, _ in pts)
        exp.series[f"{family} (N={biggest_n})"] = [
            (float(m), mf) for n, m, mf in pts if n == biggest_n
        ]
    v256 = vfft.model_mflops(proc, 256, 500)
    r256 = rfft.model_mflops(proc, 256)
    exp.check(
        "VFFT is approximately an order of magnitude faster than RFFT",
        v256 > 7 * r256,
        detail=f"VFFT(256,500) {v256:.0f} vs RFFT(256) {r256:.0f} Mflops",
    )
    exp.check(
        "performance climbs with vector length toward Gflops rates",
        vfft.model_mflops(proc, 256, 500) > 1000 > vfft.model_mflops(proc, 256, 10),
    )
    exp.check(
        "vector length 1 forfeits the vector advantage",
        vfft.model_mflops(proc, 256, 1) < r256,
    )
    return exp


# ---------------------------------------------------------------- Figure 8
def figure8_ccm2_scaling() -> Experiment:
    """Figure 8: CCM2 Gflops vs processors for T42/T106/T170."""
    node = _node()
    curves = ccm2_cost.figure8_curves(node)
    exp = Experiment(
        exp_id="figure8",
        title="CCM2 sustained Cray-equivalent Gflops vs processors",
        paper_values={"T170L18 @ 32 CPUs": 24.0},
    )
    for name, pts in curves.items():
        exp.series[name] = [(float(p), gf) for p, gf in pts]
    t170_32 = dict(curves["T170L18"])[32]
    exp.check(
        "T170L18 sustains ~24 Gflops on 32 processors",
        abs(t170_32 - 24.0) <= 0.12 * 24.0,
        detail=f"model {t170_32:.1f} Gflops",
    )
    for cpus in (1, 8, 32):
        g = {name: dict(pts)[cpus] for name, pts in curves.items()}
        exp.check(
            f"longer-vector resolutions are faster at {cpus} CPUs",
            g["T42L18"] < g["T106L18"] < g["T170L18"],
        )

    def efficiency(name):
        pts = dict(curves[name])
        return pts[32] / (32 * pts[1])

    exp.check(
        "medium and large problems scale best (T42 efficiency lowest)",
        efficiency("T42L18") < efficiency("T106L18"),
        detail=f"eff T42 {efficiency('T42L18'):.2f}, T106 {efficiency('T106L18'):.2f}, "
        f"T170 {efficiency('T170L18'):.2f}",
    )
    return exp


# ---------------------------------------------------------------- Section 4.1
def sec41_correctness() -> Experiment:
    """PARANOIA and ELEFUNT accuracy: the pass/fail gate."""
    import numpy as np

    exp = Experiment(
        exp_id="sec4.1",
        title="Floating-point correctness: PARANOIA + ELEFUNT accuracy",
        headers=["Test", "Verdict", "Detail"],
    )
    for dtype in (np.float64, np.float32):
        report = paranoia.run_paranoia(dtype)
        exp.rows.append(
            [f"PARANOIA {report.dtype}", "pass" if report.passed else "FAIL",
             f"{len(report.checks)} probes"]
        )
        exp.check(f"PARANOIA passes on {report.dtype}", report.passed,
                  detail=", ".join(c.name for c in report.failures) or "clean")
    for result in elefunt.run_accuracy_suite():
        exp.rows.append(
            [f"ELEFUNT {result.function}", "pass" if result.passed else "FAIL",
             f"max {result.max_ulp:.1f} ULP ({result.identity})"]
        )
        exp.check(f"ELEFUNT {result.function} within {result.threshold:g} ULP",
                  result.passed, detail=f"max {result.max_ulp:.1f} ULP")
    return exp


# ---------------------------------------------------------------- Section 4.4
def sec44_radabs() -> Experiment:
    """The RADABS headline: 865.9 Y-MP-equivalent Mflops on the SX-4/1."""
    mflops = radabs.model_mflops(_sx4())
    exp = Experiment(
        exp_id="sec4.4",
        title="RADABS single-processor performance",
        headers=["Machine", "Model Mflops", "Paper Mflops"],
        rows=[["NEC SX-4/1", round(mflops, 1), 865.9]],
        paper_values={"SX-4/1": 865.9},
    )
    exp.check(
        "SX-4/1 sustains ~865.9 Y-MP-equivalent Mflops (within 10%)",
        abs(mflops - 865.9) <= 0.10 * 865.9,
        detail=f"model {mflops:.1f}",
    )
    ymp = radabs.model_mflops(table1_machines()["CRI YMP"])
    exp.check(
        "the SX-4/1 outruns a Y-MP processor by ~4-5x on RADABS",
        4.0 < mflops / ymp < 5.5,
        detail=f"ratio {mflops / ymp:.2f}",
    )
    return exp


# ---------------------------------------------------------------- Section 4.5
def sec45_io() -> Experiment:
    """The untabulated I/O benchmarks: machinery + representative rates."""
    exp = Experiment(
        exp_id="sec4.5",
        title="I/O benchmarks: disk history tape, HIPPI, FDDI network",
        headers=["Benchmark", "Quantity", "Value"],
        notes="The paper reports no numbers ('voluminous'); representative "
        "rates from period hardware models are shown.",
    )
    t63 = history.history_io_benchmark("T63L18")
    hip = hippi.hippi_benchmark(channels=1)
    net = network.network_benchmark()
    exp.rows = [
        ["I/O (disk)", "T63 history write rate", f"{t63['write_rate_bytes_per_s'] / MB:.1f} MB/s"],
        ["I/O (disk)", "T63 tape size", f"{t63['tape_bytes'] / MB:.1f} MB"],
        ["HIPPI", "best single-transfer rate", f"{hip['single_curve'][-1][1] / MB:.1f} MB/s"],
        ["HIPPI", "4-channel aggregate", f"{hippi.hippi_benchmark(channels=4)['aggregate_rate_bytes_per_s'] / MB:.1f} MB/s"],
        ["NETWORK", "ftp put 100MB", f"{net['ftp put 100MB']['rate_bytes_per_s'] / MB:.2f} MB/s"],
    ]
    disk_rate = t63["write_rate_bytes_per_s"]
    hippi_rate = hip["single_curve"][-1][1]
    fddi_rate = net["ftp put 100MB"]["rate_bytes_per_s"]
    exp.check(
        "the hierarchy holds: FDDI < disk < HIPPI < memory",
        fddi_rate < disk_rate < hippi_rate < 16e9,
        detail=f"{fddi_rate / MB:.1f} < {disk_rate / MB:.1f} < {hippi_rate / MB:.1f} MB/s",
    )
    exp.check(
        "HIPPI approaches its 100 MB/s line rate on large packets",
        90e6 < hippi_rate < 100e6,
    )
    return exp


# ---------------------------------------------------------------- Section 4.6
def sec46_prodload() -> Experiment:
    """PRODLOAD: the 93m28s production-workload run."""
    result = prodload.run_prodload()
    exp = Experiment(
        exp_id="sec4.6",
        title="PRODLOAD production workload",
        headers=["Test", "Wall clock"],
        rows=[[name, fmt_time(seconds)] for name, seconds in result.test_seconds.items()]
        + [["TOTAL", fmt_time(result.total_seconds)]],
        paper_values={"total": "93m28s (5608 s)"},
    )
    exp.check(
        "total wall clock within 10% of the paper's 93m28s",
        abs(result.total_seconds - prodload.PAPER_TOTAL_SECONDS)
        <= 0.10 * prodload.PAPER_TOTAL_SECONDS,
        detail=f"model {fmt_time(result.total_seconds)}",
    )
    t1, t3 = result.test_seconds["test1"], result.test_seconds["test3"]
    exp.check(
        "4x the concurrent load stretches wall clock by < 15% (tests 1 vs 3)",
        t3 < 1.15 * t1,
        detail=f"test1 {fmt_time(t1)}, test3 {fmt_time(t3)}",
    )
    return exp


# ---------------------------------------------------------------- Section 4.7.3
def sec473_pop() -> Experiment:
    """POP: 537 Mflops with the unvectorised-CSHIFT pre-release compiler."""
    scalar = pop_cost.model_mflops(cshift_vectorized=False)
    vector = pop_cost.model_mflops(cshift_vectorized=True)
    exp = Experiment(
        exp_id="sec4.7.3",
        title="POP 2-degree benchmark, one SX-4 processor",
        headers=["Configuration", "Model Mflops", "Paper Mflops"],
        rows=[
            ["pre-release F90 (CSHIFT scalar)", round(scalar, 1), 537.0],
            ["production F90 (CSHIFT vectorised)", round(vector, 1), "(not measured)"],
        ],
        paper_values={"CSHIFT scalar": 537.0},
    )
    exp.check(
        "unvectorised-CSHIFT rate matches the paper's 537 Mflops (10%)",
        abs(scalar - 537.0) <= 0.10 * 537.0,
        detail=f"model {scalar:.1f}",
    )
    exp.check(
        "vectorising CSHIFT is worth a substantial speedup (>1.3x)",
        vector > 1.3 * scalar,
        detail=f"{vector:.0f} vs {scalar:.0f} Mflops",
    )
    return exp


# ---------------------------------------------------------------- Section 2
def sec2_architecture() -> Experiment:
    """Section 2's architecture claims, derived from the machine model."""
    node = sx4_node(cpus=32, period_ns=8.0)  # claims quote the 8.0 ns part
    full = MultiNodeSystem(node=node, node_count=16)
    exp = Experiment(
        exp_id="sec2",
        title="SX-4 architecture numbers (Section 2), derived from the model",
        headers=["Claim", "Model value", "Paper value"],
    )
    rows = [
        ("peak per processor", f"{node.processor.peak_flops / GIGA:g} GFLOPS", "2 GFLOPS"),
        ("peak per node", f"{node.peak_flops / GIGA:g} GFLOPS", "64 GFLOPS"),
        ("full system CPUs", f"{full.cpu_count}", "512"),
        ("memory bandwidth, full system",
         f"{full.aggregate_memory_bandwidth_bytes_per_s / TB:.1f} TB/s", "> 8 TB/s"),
        ("IXS bisection, 16 nodes",
         f"{full.ixs.bisection_bytes_per_s(16) / GB:g} GB/s", "128 GB/s"),
        ("node memory bandwidth",
         f"{node.node_bandwidth_bytes_per_s / GB:g} GB/s", "512 GB/s"),
    ]
    exp.rows = [list(r) for r in rows]
    exp.check("peak per processor is 2 GFLOPS at 8.0 ns",
              abs(node.processor.peak_flops - 2e9) < 1e6)
    exp.check("a full SX-4/512 exceeds 8 TB/s of memory bandwidth",
              full.aggregate_memory_bandwidth_bytes_per_s > 8e12)
    exp.check("IXS bisection is 128 GB/s at 16 nodes",
              abs(full.ixs.bisection_bytes_per_s(16) - 128e9) < 1e6)
    # The three hardware float formats (probed through emulated arithmetic).
    for fmt in floatformats.ALL_FORMATS:
        exp.check(
            f"{fmt.name}: probes detect radix {fmt.radix}, precision {fmt.precision}",
            floatformats.detect_radix(fmt) == fmt.radix
            and floatformats.detect_precision(fmt) == fmt.precision,
        )
    exp.check(
        "Cray compatibility mode chops; IEEE and IBM modes round to nearest",
        not floatformats.rounds_to_nearest(floatformats.CRAY_SINGLE)
        and floatformats.rounds_to_nearest(floatformats.IEEE_DOUBLE),
    )
    return exp


# ---------------------------------------------------------------- Section 3
def sec3_other_benchmarks() -> Experiment:
    """Section 3: why LINPACK, NAS and STREAM were rejected — quantified."""
    proc = sx4_processor()
    exp = Experiment(
        exp_id="sec3",
        title="Rejected benchmark suites: LINPACK, NAS EP, STREAM on the SX-4 model",
        headers=["Benchmark", "Result", "The paper's criticism, measured"],
    )
    linpack_mflops = linpack.model_mflops(proc, 1000)
    linpack_eff = linpack_mflops * MEGA / proc.peak_flops
    radabs_raw_eff = proc.execute(radabs.build_trace(8192)).raw_mflops * MEGA / proc.peak_flops
    stream_bws = stream.model_bandwidths(proc)
    ncar_copy = kcopy.model_curve(proc)
    ns, bws = ncar_copy.series()
    exp.rows = [
        ["LINPACK n=1000", f"{linpack_mflops:.0f} Mflops ({100 * linpack_eff:.0f}% of peak)",
         f"climate workload runs at {100 * radabs_raw_eff:.0f}% of peak"],
        ["STREAM COPY", f"{stream_bws['COPY']:.0f} MB/s (one size)",
         f"NCAR sweep spans {bws[0]:.0f}..{bws[-1]:.0f} MB/s over N=1..1e6"],
        ["STREAM TRIAD", f"{stream_bws['TRIAD']:.0f} MB/s", "no irregular-access measurement"],
    ]
    # NAS EP: pure arithmetic, blind to the memory system.
    ep_mflops = nas.ep_model_mflops(proc)
    strangled = sx4_processor()
    strangled.memory.port_words_per_cycle /= 8.0
    ep_strangled = nas.ep_model_mflops(strangled)
    exp.rows.append(
        ["NAS EP", f"{ep_mflops:.0f} Mflops",
         f"unchanged ({ep_strangled:.0f}) with 1/8 the memory port"]
    )
    exp.check(
        "NAS EP cannot see memory bandwidth (a 1/8 port changes it <5%)",
        abs(ep_strangled - ep_mflops) < 0.05 * ep_mflops,
    )
    exp.check(
        "'LINPACK tends to measure peak performance': efficiency exceeds "
        "the climate workload's raw efficiency by >1.3x",
        linpack_eff > 1.3 * radabs_raw_eff,
        detail=f"{100 * linpack_eff:.0f}% vs {100 * radabs_raw_eff:.0f}%",
    )
    exp.check(
        "STREAM's single measurement misses the short-vector regime "
        "(NCAR sweep varies by >50x)",
        bws[-1] > 50 * bws[0],
    )
    exp.check(
        "STREAM measures no gather bandwidth, which is ~3x lower",
        stream_bws["COPY"] > 2 * ia.model_curve(proc).asymptote_mb_per_s,
    )
    return exp


#: Registry: experiment id -> builder, in paper order.
EXPERIMENTS: dict[str, Callable[[], Experiment]] = {
    "sec2": sec2_architecture,
    "sec3": sec3_other_benchmarks,
    "table1": table1_hint_vs_radabs,
    "table2": table2_specs,
    "sec4.1": sec41_correctness,
    "figure5": figure5_memory_bandwidth,
    "figure6": figure6_rfft,
    "figure7": figure7_vfft,
    "table3": table3_elefunt,
    "sec4.4": sec44_radabs,
    "sec4.5": sec45_io,
    "sec4.6": sec46_prodload,
    "table4": table4_resolutions,
    "figure8": figure8_ccm2_scaling,
    "table5": table5_one_year,
    "table6": table6_ensemble,
    "table7": table7_mom,
    "sec4.7.3": sec473_pop,
}
