"""ASCII line charts and CSV export for figure-type experiments.

The paper's Figures 5-8 are log-x performance curves.  Since the harness
runs in a terminal, figures render as ASCII charts (one mark per series)
with optional logarithmic axes, and every series also exports as CSV so
the curves can be replotted elsewhere.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["render_ascii_chart", "series_to_csv"]

_MARKS = "*o+x#@%&"


def _scale(value: float, lo: float, hi: float, log: bool) -> float:
    if log:
        if value <= 0 or lo <= 0:
            raise ValueError("log axes need positive values")
        return (math.log10(value) - math.log10(lo)) / max(
            math.log10(hi) - math.log10(lo), 1e-12
        )
    return (value - lo) / max(hi - lo, 1e-12)


def render_ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    log_x: bool = True,
    log_y: bool = False,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render labelled (x, y) series as an ASCII chart.

    Each series gets a distinct mark; a legend and axis ranges are
    appended.  Points outside a degenerate range collapse to the border.
    """
    if not series:
        raise ValueError("chart needs at least one series")
    if width < 10 or height < 4:
        raise ValueError(f"chart too small: {width}x{height}")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("chart needs at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    for (label, pts), mark in zip(series.items(), _MARKS * 10):
        for x, y in pts:
            col = round(_scale(x, x_lo, x_hi, log_x) * (width - 1))
            row = round(_scale(y, y_lo, y_hi, log_y) * (height - 1))
            grid[height - 1 - row][col] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label}  [{y_lo:g} .. {y_hi:g}]" + (" (log)" if log_y else ""))
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}  [{x_lo:g} .. {x_hi:g}]" + (" (log)" if log_x else ""))
    legend = "   ".join(
        f"{mark} {label}" for (label, _), mark in zip(series.items(), _MARKS * 10)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def series_to_csv(series: Mapping[str, Sequence[tuple[float, float]]]) -> str:
    """Export series as CSV: ``series,x,y`` rows."""
    if not series:
        raise ValueError("no series to export")
    lines = ["series,x,y"]
    for label, pts in series.items():
        for x, y in pts:
            lines.append(f"{label},{x:g},{y:g}")
    return "\n".join(lines)
