"""Result containers for suite experiments.

Every experiment produces an :class:`Experiment`: a table (rows of
cells) and/or figure series, the paper's reference values where its text
states them, and a list of :class:`ShapeCheck` verdicts — the explicit,
machine-checkable statements of "the shape the paper reports holds"
(who wins, by roughly what factor, where the curve bends).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ShapeCheck", "Experiment"]


@dataclass(frozen=True)
class ShapeCheck:
    """One verifiable claim about the regenerated result."""

    description: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{mark}] {self.description}{suffix}"


@dataclass
class Experiment:
    """The regenerated form of one paper table/figure/headline."""

    exp_id: str  # e.g. "table7", "figure5", "sec4.4"
    title: str
    headers: list[str] = field(default_factory=list)
    rows: list[list[Any]] = field(default_factory=list)
    #: figure series: label -> [(x, y), ...]
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    #: paper-stated reference values, keyed by a short label.
    paper_values: dict[str, Any] = field(default_factory=dict)
    checks: list[ShapeCheck] = field(default_factory=list)
    notes: str = ""

    def check(self, description: str, passed: bool, detail: str = "") -> None:
        """Record one shape check."""
        self.checks.append(ShapeCheck(description, bool(passed), detail))

    @property
    def passed(self) -> bool:
        """All recorded shape checks hold."""
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> list[ShapeCheck]:
        return [check for check in self.checks if not check.passed]

    def summary_line(self) -> str:
        verdict = "OK " if self.passed else "FAIL"
        n_pass = sum(c.passed for c in self.checks)
        return f"{verdict} {self.exp_id:<10} {self.title} [{n_pass}/{len(self.checks)} checks]"
