"""Suite runner: execute every experiment and summarise the verdicts.

``python -m repro.suite [exp_id ...]`` prints each experiment's
regenerated table/figure, its shape-check verdicts, and a final summary —
the command-line face of the reproduction.  ``--json`` emits the same
report machine-readably (for CI); ``--engine`` routes execution through
:mod:`repro.engine` — parallel fan-out (``--jobs N``) and the
content-addressed result cache (disable with ``--no-cache``).
``--fault-plan PATH`` replays a saved :mod:`repro.faults` plan against
the run (implying ``--engine``): the planned faults fire at the
engine's hook sites and the retry policy absorbs them — the command
should still exit 0 with byte-identical outputs.

``--perfmon`` activates the observability subsystem for the run: the
machine components populate their emulated SX hardware counters, every
experiment gets a host span, and afterwards the 13 kernel traces are
profiled individually so the run ends with their PROGINF sections (and,
with ``--perfmon-out``, a saved profile document for
``python -m repro.perfmon export``/``diff``).  Counter capture is
in-process: combine ``--perfmon`` with ``--jobs`` > 1 and the workers'
counters stay in the workers (spans and the kernel PROGINF sections are
still collected here).

``--costing {compiled,legacy,suitebatch}`` selects the machine-model
costing engine for the whole run: ``compiled`` (the default) costs
traces through the columnar fast path of :mod:`repro.machine.compiled`;
``legacy`` walks every trace per-op — the reference the compiled engine
is verified against, useful when bisecting a suspected engine
discrepancy; ``suitebatch`` serves member traces of a registered
:class:`~repro.machine.suitebatch.SuiteColumns` stack from one fused
pass over the whole suite (falling back to ``compiled`` for traces
outside the stack).  All three produce bit-identical reports.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field

from repro.analysis.traces import experiment_summaries
from repro.machine.compiled import ENGINES, set_default_engine
from repro.perfmon.collector import profile as perfmon_profile
from repro.perfmon.collector import span as perfmon_span
from repro.suite.experiments import EXPERIMENTS
from repro.suite.figures import render_ascii_chart
from repro.suite.results import Experiment
from repro.suite.tables import render_table

__all__ = ["SuiteReport", "run_suite", "render_experiment",
           "suite_report_to_dict", "main"]


@dataclass
class SuiteReport:
    """Outcome of a full (or filtered) suite run."""

    experiments: list[Experiment] = field(default_factory=list)
    #: wall seconds to build each experiment, keyed by exp_id.
    timings: dict[str, float] = field(default_factory=dict)
    #: host wall seconds *this* run spent per experiment — differs from
    #: ``timings`` under the engine, where a cache hit replays an old
    #: build time but costs only a store read here.
    host_timings: dict[str, float] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(exp.passed for exp in self.experiments)

    @property
    def check_counts(self) -> tuple[int, int]:
        """(passed, total) across all experiments."""
        total = sum(len(exp.checks) for exp in self.experiments)
        good = sum(sum(c.passed for c in exp.checks) for exp in self.experiments)
        return good, total

    def summary(self) -> str:
        lines = [exp.summary_line() for exp in self.experiments]
        good, total = self.check_counts
        verdict = "ALL SHAPE CHECKS PASS" if self.passed else "SHAPE CHECK FAILURES"
        lines.append(f"-- {verdict}: {good}/{total} checks over "
                     f"{len(self.experiments)} experiments --")
        return "\n".join(lines)


def run_suite(exp_ids: list[str] | None = None) -> SuiteReport:
    """Run the requested experiments (default: all, in paper order)."""
    ids = list(EXPERIMENTS) if not exp_ids else exp_ids
    report = SuiteReport()
    for exp_id in ids:
        if exp_id not in EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
            )
        start = time.perf_counter()
        with perfmon_span(f"experiment:{exp_id}", exp_id=exp_id):
            report.experiments.append(EXPERIMENTS[exp_id]())
        elapsed = time.perf_counter() - start
        report.timings[exp_id] = elapsed
        report.host_timings[exp_id] = elapsed
    return report


def render_experiment(exp: Experiment, diagnostics: bool = True) -> str:
    """Full text rendering: table, chart, notes, checks, diagnostics.

    The trailing ``vectorization:`` lines summarise what the static
    analyzer says about each trace behind the experiment — the coding
    styles that *produced* the numbers above them (Section 4.4).
    """
    parts = [f"=== {exp.exp_id}: {exp.title} ==="]
    if exp.rows:
        parts.append(render_table(exp.headers, exp.rows))
    if exp.series:
        parts.append(render_ascii_chart(exp.series, title=None))
    if exp.notes:
        parts.append(f"note: {exp.notes}")
    parts.extend(str(check) for check in exp.checks)
    if diagnostics:
        for trace_id, report in experiment_summaries(exp.exp_id):
            parts.append(f"vectorization: {trace_id}: {report.summary_line()}")
    return "\n".join(parts)


def suite_report_to_dict(report: SuiteReport) -> dict:
    """Machine-readable SuiteReport: ids, verdicts, timings (for CI).

    ``schema`` stays at 1 for existing consumers; ``schema_version``
    carries the actual document revision (2 added ``schema_version``
    itself and per-experiment ``host_elapsed_s``).
    """
    good, total = report.check_counts
    return {
        "schema": 1,
        "schema_version": 2,
        "passed": report.passed,
        "checks": {"passed": good, "total": total},
        "experiments": [
            {
                "exp_id": exp.exp_id,
                "title": exp.title,
                "passed": exp.passed,
                "elapsed_s": report.timings.get(exp.exp_id),
                "host_elapsed_s": report.host_timings.get(exp.exp_id),
                "checks": [
                    {
                        "description": c.description,
                        "passed": c.passed,
                        "detail": c.detail,
                    }
                    for c in exp.checks
                ],
            }
            for exp in report.experiments
        ],
    }


def _run_through_engine(args: argparse.Namespace) -> tuple[SuiteReport, int]:
    """Execute via repro.engine; returns (report, n_failed_jobs)."""
    from repro.engine import run_engine

    retry = injector = None
    if args.fault_plan:
        from repro.faults.plan import FaultPlan
        from repro.faults.retry import chaos_retry_policy

        plan = FaultPlan.load(args.fault_plan)
        injector = plan.injector()
        retry = chaos_retry_policy()
        print(plan.summary(), file=sys.stderr)
    engine_report = run_engine(
        args.ids or None,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        retry=retry,
        injector=injector,
    )
    report = SuiteReport(
        experiments=engine_report.experiments,
        timings={r.exp_id: r.elapsed_s for r in engine_report.successes},
        host_timings={
            r.exp_id: r.host_elapsed_s
            for r in engine_report.successes
            if r.host_elapsed_s is not None
        },
    )
    for failure in engine_report.failures:
        print(failure.summary_line(), file=sys.stderr)
    if not args.json:
        print(engine_report.summary(), file=sys.stderr)
    return report, len(engine_report.failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.suite",
        description="Regenerate the paper's tables and figures and check them.",
    )
    parser.add_argument("ids", nargs="*", metavar="exp_id",
                        help="experiment ids (default: the whole suite)")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable SuiteReport")
    parser.add_argument("--engine", action="store_true",
                        help="execute through repro.engine (cache + fan-out)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes when --engine is given")
    parser.add_argument("--no-cache", action="store_true",
                        help="with --engine: bypass the result store")
    parser.add_argument("--fault-plan", metavar="PATH", default=None,
                        help="run under the saved fault plan (JSON from "
                             "'python -m repro.faults plan'); implies "
                             "--engine and enables retry with backoff")
    parser.add_argument("--perfmon", action="store_true",
                        help="profile the run: emulated hardware counters, "
                             "spans, and per-kernel PROGINF sections")
    parser.add_argument("--perfmon-out", metavar="PATH",
                        help="write the perfmon profile document (JSON) to "
                             "PATH (implies --perfmon)")
    parser.add_argument("--costing", choices=ENGINES, default=None,
                        metavar="{compiled,legacy,suitebatch}",
                        help="costing engine for Processor.execute "
                             "(default: compiled, the columnar fast path; "
                             "legacy is the per-op reference; suitebatch "
                             "fuses the registered suite into one pass)")
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    if args.perfmon_out:
        args.perfmon = True
    if args.fault_plan:
        args.engine = True
    if args.costing is not None:
        set_default_engine(args.costing)

    unknown = [exp_id for exp_id in args.ids if exp_id not in EXPERIMENTS]
    if unknown:
        print(
            f"error: unknown experiment id(s): {', '.join(sorted(unknown))}\n"
            f"valid ids: {', '.join(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2

    def execute() -> tuple[SuiteReport, int]:
        if args.engine:
            return _run_through_engine(args)
        return run_suite(args.ids or None), 0

    perfmon_payload = None
    perfmon_text = None
    if args.perfmon:
        from repro.perfmon.cli import collect_kernel_profiles
        from repro.perfmon.export import profile_to_dict, save_profile
        from repro.perfmon.ftrace import render_ftrace
        from repro.perfmon.proginf import proginf_report

        with perfmon_profile(role="suite", ids=list(args.ids)) as prof:
            with perfmon_span("suite:run"):
                report, failed_jobs = execute()
            # Profile each of the 13 kernel traces separately so the run
            # ends with per-kernel PROGINF sections.
            with perfmon_span("suite:kernels"):
                _, kernels = collect_kernel_profiles()
        perfmon_payload = profile_to_dict(prof, kernels)
        perfmon_text = proginf_report(kernels) + "\n\n" + render_ftrace(prof)
        if args.perfmon_out:
            path = save_profile(args.perfmon_out, prof, kernels)
            print(f"perfmon: saved profile to {path}", file=sys.stderr)
    else:
        report, failed_jobs = execute()

    if args.json:
        payload = suite_report_to_dict(report)
        if perfmon_payload is not None:
            payload["perfmon"] = perfmon_payload
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        for exp in report.experiments:
            print(render_experiment(exp))
            print()
        print(report.summary())
        if perfmon_text is not None:
            print()
            print(perfmon_text)
    return 0 if (report.passed and failed_jobs == 0) else 1


if __name__ == "__main__":
    raise SystemExit(main())
