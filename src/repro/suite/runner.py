"""Suite runner: execute every experiment and summarise the verdicts.

``python -m repro.suite.runner [exp_id ...]`` prints each experiment's
regenerated table/figure, its shape-check verdicts, and a final summary —
the command-line face of the reproduction.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.analysis.traces import experiment_summaries
from repro.suite.experiments import EXPERIMENTS
from repro.suite.figures import render_ascii_chart
from repro.suite.results import Experiment
from repro.suite.tables import render_table

__all__ = ["SuiteReport", "run_suite", "render_experiment", "main"]


@dataclass
class SuiteReport:
    """Outcome of a full (or filtered) suite run."""

    experiments: list[Experiment] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(exp.passed for exp in self.experiments)

    @property
    def check_counts(self) -> tuple[int, int]:
        """(passed, total) across all experiments."""
        total = sum(len(exp.checks) for exp in self.experiments)
        good = sum(sum(c.passed for c in exp.checks) for exp in self.experiments)
        return good, total

    def summary(self) -> str:
        lines = [exp.summary_line() for exp in self.experiments]
        good, total = self.check_counts
        verdict = "ALL SHAPE CHECKS PASS" if self.passed else "SHAPE CHECK FAILURES"
        lines.append(f"-- {verdict}: {good}/{total} checks over "
                     f"{len(self.experiments)} experiments --")
        return "\n".join(lines)


def run_suite(exp_ids: list[str] | None = None) -> SuiteReport:
    """Run the requested experiments (default: all, in paper order)."""
    ids = list(EXPERIMENTS) if not exp_ids else exp_ids
    report = SuiteReport()
    for exp_id in ids:
        if exp_id not in EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
            )
        report.experiments.append(EXPERIMENTS[exp_id]())
    return report


def render_experiment(exp: Experiment, diagnostics: bool = True) -> str:
    """Full text rendering: table, chart, notes, checks, diagnostics.

    The trailing ``vectorization:`` lines summarise what the static
    analyzer says about each trace behind the experiment — the coding
    styles that *produced* the numbers above them (Section 4.4).
    """
    parts = [f"=== {exp.exp_id}: {exp.title} ==="]
    if exp.rows:
        parts.append(render_table(exp.headers, exp.rows))
    if exp.series:
        parts.append(render_ascii_chart(exp.series, title=None))
    if exp.notes:
        parts.append(f"note: {exp.notes}")
    parts.extend(str(check) for check in exp.checks)
    if diagnostics:
        for trace_id, report in experiment_summaries(exp.exp_id):
            parts.append(f"vectorization: {trace_id}: {report.summary_line()}")
    return "\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    report = run_suite(argv or None)
    for exp in report.experiments:
        print(render_experiment(exp))
        print()
    print(report.summary())
    return 0 if report.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
