"""ASCII table rendering for suite output."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: Any) -> str:
    """Human formatting: floats get sensible precision, rest str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:,.1f}"
        if magnitude >= 1:
            return f"{value:.2f}"
        if magnitude >= 0.01:
            return f"{value:.3f}"
        return f"{value:.3e}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+-----
    1 | 2.50
    """
    if not headers:
        raise ValueError("a table needs headers")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells; expected {len(headers)}"
            )
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
