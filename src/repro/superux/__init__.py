"""SUPER-UX operating-software models (Section 2.6).

The paper devotes a section to the SX-4's operating system because the
procurement cared about running a *production environment*, not just
kernels.  This package models the three OS features the benchmarks
touch:

``checkpoint``
    Section 2.6.2: "NQS batch jobs can be checkpointed by either the
    owner, operator, or NQS administrator.  No special programming is
    required" — a state-capture/restore protocol the application models
    implement, with bit-identical continuation (tested).
``nqs``
    Section 2.6.3: the enhanced NQS batch subsystem — queues, queue
    complexes, per-queue limits, and the ``qcat`` command that copies a
    running job's stdout.
``sfs``
    Section 2.6.5: the SFS native file system with its XMU-backed cache
    ("flexible file system level caching scheme utilizing XMU space"),
    write-back policy, staging unit and allocation cluster size, and
    files beyond 2 TB.
"""

from repro.superux.checkpoint import Checkpoint, restore_model, take_checkpoint
from repro.superux.nqs import BatchJob, NQSQueue, QueueComplex
from repro.superux.sfs import SFSFile, SFSFileSystem

__all__ = [
    "Checkpoint",
    "take_checkpoint",
    "restore_model",
    "NQSQueue",
    "QueueComplex",
    "BatchJob",
    "SFSFile",
    "SFSFileSystem",
]
