"""Checkpoint/restart (Section 2.6.2).

"Checkpoint/restart by user or operator commands ... No special
programming is required for checkpointing."

The OS-level guarantee modelled here: capture a running model's complete
prognostic state into a self-describing byte blob, and restore it into a
fresh model instance such that the continued integration is
*bit-identical* to the uninterrupted one (the test suite asserts this
for CCM2, MOM and POP).

Any object exposing ``checkpoint_state() -> dict[str, np.ndarray | float
| int]`` and ``restore_state(dict)`` participates; the blob format is
``numpy.savez`` (portable, no pickled code).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

import numpy as np

__all__ = ["Checkpointable", "Checkpoint", "take_checkpoint", "restore_model"]

_FORMAT_VERSION = 1


@runtime_checkable
class Checkpointable(Protocol):
    """The 'no special programming' contract a model fulfils."""

    def checkpoint_state(self) -> dict[str, Any]: ...

    def restore_state(self, state: dict[str, Any]) -> None: ...


@dataclass(frozen=True)
class Checkpoint:
    """A captured state blob plus its metadata."""

    data: bytes
    model_kind: str

    @property
    def nbytes(self) -> int:
        return len(self.data)


def take_checkpoint(model: Checkpointable) -> Checkpoint:
    """Capture a model's state into a portable blob."""
    if not isinstance(model, Checkpointable):
        raise TypeError(
            f"{type(model).__name__} does not implement the checkpoint protocol"
        )
    state = model.checkpoint_state()
    if not isinstance(state, dict) or not state:
        raise ValueError("checkpoint_state() must return a non-empty dict")
    arrays: dict[str, np.ndarray] = {
        "__version__": np.array(_FORMAT_VERSION),
        "__kind__": np.array(type(model).__name__),
    }
    for key, value in state.items():
        if key.startswith("__"):
            raise ValueError(f"state key {key!r} collides with metadata namespace")
        arrays[key] = np.asarray(value)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return Checkpoint(data=buffer.getvalue(), model_kind=type(model).__name__)


def restore_model(model: Checkpointable, checkpoint: Checkpoint) -> None:
    """Restore a checkpoint into a compatible model instance."""
    if not isinstance(model, Checkpointable):
        raise TypeError(
            f"{type(model).__name__} does not implement the checkpoint protocol"
        )
    if checkpoint.model_kind != type(model).__name__:
        raise ValueError(
            f"checkpoint is for {checkpoint.model_kind}, not {type(model).__name__}"
        )
    with np.load(io.BytesIO(checkpoint.data), allow_pickle=False) as blob:
        version = int(blob["__version__"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        state = {
            key: blob[key]
            for key in blob.files
            if not key.startswith("__")
        }
    # Unwrap 0-d arrays back to scalars for convenience.
    unwrapped: dict[str, Any] = {}
    for key, value in state.items():
        if value.ndim == 0:
            item = value.item()
            unwrapped[key] = item
        else:
            unwrapped[key] = value
    model.restore_state(unwrapped)
