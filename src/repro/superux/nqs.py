"""The NQS batch subsystem (Section 2.6.3).

"SUPER-UX NQS is enhanced to add substantial user control over work.
Recently added commands include qcat which will copy the stdout or
stderr file from an executing batch script and present it to the user.
NQS queues, queue complexes, and the full range of individual queue
parameters and accounting facilities are supported."

The model: queues with CPU/memory/time limits and priorities, grouped
into a queue complex with a global run limit; jobs are admitted against
the limits, scheduled priority-then-FIFO onto the node's CPUs via the
discrete-event engine, produce accounting records, and expose ``qcat``
(the portion of a running job's output written so far).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.events import Acquire, Release, Resource, Simulator
from repro.perfmon.collector import record as perfmon_record
from repro.perfmon.collector import sim_tracer
from repro.perfmon.counters import declare_counters

__all__ = ["BatchJob", "NQSQueue", "QueueComplex", "AccountingRecord"]

declare_counters("fault", ("requeues",))


@dataclass
class BatchJob:
    """One batch request: resources, duration, and the output it emits."""

    name: str
    cpus: int
    memory_gb: float
    duration_s: float
    #: (fraction_of_duration, line) pairs: output appears as time passes.
    output_script: tuple[tuple[float, str], ...] = ()
    submit_time: float = 0.0
    #: Section 2.6.2's checkpointing, applied to batch work: with an
    #: interval set, a node fault only loses progress since the last
    #: checkpoint; without one, the requeued job restarts from scratch.
    checkpoint_interval_s: float | None = None
    start_time: float | None = None
    finish_time: float | None = None
    requeues: int = 0

    def __post_init__(self) -> None:
        if self.cpus < 1:
            raise ValueError(f"job {self.name!r} needs at least one CPU")
        if self.memory_gb < 0 or self.duration_s <= 0:
            raise ValueError(f"job {self.name!r} has invalid resources")
        if self.checkpoint_interval_s is not None and self.checkpoint_interval_s <= 0:
            raise ValueError(
                f"job {self.name!r}: checkpoint interval must be positive"
            )
        for frac, _ in self.output_script:
            if not 0.0 <= frac <= 1.0:
                raise ValueError("output fractions must be in [0, 1]")

    @property
    def state(self) -> str:
        if self.finish_time is not None:
            return "done"
        if self.start_time is not None:
            return "running"
        return "queued"

    def qcat(self, now: float) -> list[str]:
        """Section 2.6.3's qcat: the stdout written so far.

        Before the job starts, nothing; while running, the lines whose
        scripted fraction of the duration has elapsed; after completion,
        everything.
        """
        if self.start_time is None:
            return []
        elapsed = (self.finish_time if self.finish_time is not None else now) - self.start_time
        fraction = min(1.0, elapsed / self.duration_s)
        return [line for frac, line in self.output_script if frac <= fraction + 1e-12]


@dataclass(frozen=True)
class AccountingRecord:
    """NQS accounting: what ran where, for how long."""

    job: str
    queue: str
    cpus: int
    queued_s: float
    ran_s: float
    cpu_seconds: float
    requeues: int = 0


@dataclass
class NQSQueue:
    """One NQS queue with its individual parameters."""

    name: str
    priority: int = 0
    max_cpus_per_job: int = 32
    max_memory_gb: float = 8.0
    max_run_seconds: float = 86400.0
    run_limit: int = 8  # concurrently running jobs from this queue

    def __post_init__(self) -> None:
        if self.max_cpus_per_job < 1 or self.run_limit < 1:
            raise ValueError(f"queue {self.name!r}: limits must be >= 1")
        if self.max_memory_gb <= 0 or self.max_run_seconds <= 0:
            raise ValueError(f"queue {self.name!r}: limits must be positive")

    def admits(self, job: BatchJob) -> bool:
        """Whether the job's request fits this queue's limits."""
        return (
            job.cpus <= self.max_cpus_per_job
            and job.memory_gb <= self.max_memory_gb
            and job.duration_s <= self.max_run_seconds
        )


@dataclass
class QueueComplex:
    """A set of queues sharing one machine (Section 2.6.3's complexes)."""

    queues: list[NQSQueue]
    node_cpus: int = 32

    submitted: list[tuple[BatchJob, NQSQueue]] = field(default_factory=list)
    accounting: list[AccountingRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.queues:
            raise ValueError("a queue complex needs at least one queue")
        names = [q.name for q in self.queues]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate queue names: {names}")
        if self.node_cpus < 1:
            raise ValueError("node must have at least one CPU")

    def queue(self, name: str) -> NQSQueue:
        for q in self.queues:
            if q.name == name:
                return q
        raise KeyError(f"no queue named {name!r}")

    def submit(self, job: BatchJob, queue_name: str) -> None:
        """Validate against the queue's limits and enqueue."""
        q = self.queue(queue_name)
        if not q.admits(job):
            raise ValueError(
                f"job {job.name!r} exceeds queue {q.name!r} limits "
                f"({job.cpus} CPUs, {job.memory_gb} GB, {job.duration_s} s)"
            )
        self.submitted.append((job, q))

    def run(
        self,
        node_faults: Sequence[float] = (),
        fault_downtime_s: float = 0.0,
    ) -> float:
        """Schedule all submitted jobs to completion; returns makespan.

        Jobs start in priority order (high first), FIFO within a
        priority, each holding its CPUs for its duration; per-queue run
        limits are enforced with counted resources.

        ``node_faults`` are simulated-time instants at which the node
        drops its running work (Section 2.6.3: NQS requeues, it does
        not lose jobs).  Every job executing across a fault instant is
        interrupted, keeps only the progress its checkpoint interval
        protects (all of it is lost without one), waits out
        ``fault_downtime_s``, and goes back through admission.  Fault
        times come from the caller — this module stays free of
        randomness (the simulator determinism invariant).
        """
        if not self.submitted:
            raise ValueError("nothing submitted")
        if any(f < 0 for f in node_faults):
            raise ValueError("fault times must be non-negative")
        if fault_downtime_s < 0:
            raise ValueError("fault downtime must be non-negative")
        faults = tuple(sorted(node_faults))
        sim = Simulator(tracer=sim_tracer(prefix="nqs"))
        cpus = Resource(self.node_cpus, "cpus")
        slots = {q.name: Resource(q.run_limit, f"runlimit:{q.name}") for q in self.queues}
        ordered = sorted(
            self.submitted, key=lambda item: (-item[1].priority, item[0].submit_time)
        )

        def job_proc(job: BatchJob, q: NQSQueue):
            remaining = job.duration_s
            occupied_s = 0.0
            while True:
                yield Acquire(slots[q.name])
                yield Acquire(cpus, job.cpus)
                if job.start_time is None:
                    job.start_time = sim.now
                segment_start = sim.now
                fault = next(
                    (f for f in faults
                     if segment_start < f < segment_start + remaining),
                    None,
                )
                if fault is None:
                    yield remaining
                    occupied_s += remaining
                    job.finish_time = sim.now
                    yield Release(cpus, job.cpus)
                    yield Release(slots[q.name])
                    break
                # The node drops at `fault`: run up to it, keep only the
                # checkpointed prefix of this segment, and requeue.
                ran = fault - segment_start
                yield ran
                occupied_s += ran
                kept = 0.0
                if job.checkpoint_interval_s is not None:
                    kept = (
                        math.floor(ran / job.checkpoint_interval_s)
                        * job.checkpoint_interval_s
                    )
                remaining -= kept
                job.requeues += 1
                perfmon_record("fault", {"requeues": 1.0})
                yield Release(cpus, job.cpus)
                yield Release(slots[q.name])
                if fault_downtime_s > 0:
                    yield fault_downtime_s
            self.accounting.append(
                AccountingRecord(
                    job=job.name,
                    queue=q.name,
                    cpus=job.cpus,
                    queued_s=job.start_time - job.submit_time,
                    ran_s=job.finish_time - job.start_time,
                    cpu_seconds=job.cpus * occupied_s,
                    requeues=job.requeues,
                )
            )
            return job.name

        procs = [
            sim.spawn(job_proc(job, q), name=job.name, delay=job.submit_time)
            for job, q in ordered
        ]
        sim.run()
        return max(p.finish_time for p in procs)
