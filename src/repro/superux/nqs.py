"""The NQS batch subsystem (Section 2.6.3).

"SUPER-UX NQS is enhanced to add substantial user control over work.
Recently added commands include qcat which will copy the stdout or
stderr file from an executing batch script and present it to the user.
NQS queues, queue complexes, and the full range of individual queue
parameters and accounting facilities are supported."

The model: queues with CPU/memory/time limits and priorities, grouped
into a queue complex with a global run limit; jobs are admitted against
the limits, scheduled priority-then-FIFO onto the node's CPUs via the
discrete-event engine, produce accounting records, and expose ``qcat``
(the portion of a running job's output written so far).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.events import Acquire, Release, Resource, Simulator
from repro.perfmon.collector import sim_tracer

__all__ = ["BatchJob", "NQSQueue", "QueueComplex", "AccountingRecord"]


@dataclass
class BatchJob:
    """One batch request: resources, duration, and the output it emits."""

    name: str
    cpus: int
    memory_gb: float
    duration_s: float
    #: (fraction_of_duration, line) pairs: output appears as time passes.
    output_script: tuple[tuple[float, str], ...] = ()
    submit_time: float = 0.0
    start_time: float | None = None
    finish_time: float | None = None

    def __post_init__(self) -> None:
        if self.cpus < 1:
            raise ValueError(f"job {self.name!r} needs at least one CPU")
        if self.memory_gb < 0 or self.duration_s <= 0:
            raise ValueError(f"job {self.name!r} has invalid resources")
        for frac, _ in self.output_script:
            if not 0.0 <= frac <= 1.0:
                raise ValueError("output fractions must be in [0, 1]")

    @property
    def state(self) -> str:
        if self.finish_time is not None:
            return "done"
        if self.start_time is not None:
            return "running"
        return "queued"

    def qcat(self, now: float) -> list[str]:
        """Section 2.6.3's qcat: the stdout written so far.

        Before the job starts, nothing; while running, the lines whose
        scripted fraction of the duration has elapsed; after completion,
        everything.
        """
        if self.start_time is None:
            return []
        elapsed = (self.finish_time if self.finish_time is not None else now) - self.start_time
        fraction = min(1.0, elapsed / self.duration_s)
        return [line for frac, line in self.output_script if frac <= fraction + 1e-12]


@dataclass(frozen=True)
class AccountingRecord:
    """NQS accounting: what ran where, for how long."""

    job: str
    queue: str
    cpus: int
    queued_s: float
    ran_s: float
    cpu_seconds: float


@dataclass
class NQSQueue:
    """One NQS queue with its individual parameters."""

    name: str
    priority: int = 0
    max_cpus_per_job: int = 32
    max_memory_gb: float = 8.0
    max_run_seconds: float = 86400.0
    run_limit: int = 8  # concurrently running jobs from this queue

    def __post_init__(self) -> None:
        if self.max_cpus_per_job < 1 or self.run_limit < 1:
            raise ValueError(f"queue {self.name!r}: limits must be >= 1")
        if self.max_memory_gb <= 0 or self.max_run_seconds <= 0:
            raise ValueError(f"queue {self.name!r}: limits must be positive")

    def admits(self, job: BatchJob) -> bool:
        """Whether the job's request fits this queue's limits."""
        return (
            job.cpus <= self.max_cpus_per_job
            and job.memory_gb <= self.max_memory_gb
            and job.duration_s <= self.max_run_seconds
        )


@dataclass
class QueueComplex:
    """A set of queues sharing one machine (Section 2.6.3's complexes)."""

    queues: list[NQSQueue]
    node_cpus: int = 32

    submitted: list[tuple[BatchJob, NQSQueue]] = field(default_factory=list)
    accounting: list[AccountingRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.queues:
            raise ValueError("a queue complex needs at least one queue")
        names = [q.name for q in self.queues]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate queue names: {names}")
        if self.node_cpus < 1:
            raise ValueError("node must have at least one CPU")

    def queue(self, name: str) -> NQSQueue:
        for q in self.queues:
            if q.name == name:
                return q
        raise KeyError(f"no queue named {name!r}")

    def submit(self, job: BatchJob, queue_name: str) -> None:
        """Validate against the queue's limits and enqueue."""
        q = self.queue(queue_name)
        if not q.admits(job):
            raise ValueError(
                f"job {job.name!r} exceeds queue {q.name!r} limits "
                f"({job.cpus} CPUs, {job.memory_gb} GB, {job.duration_s} s)"
            )
        self.submitted.append((job, q))

    def run(self) -> float:
        """Schedule all submitted jobs to completion; returns makespan.

        Jobs start in priority order (high first), FIFO within a
        priority, each holding its CPUs for its duration; per-queue run
        limits are enforced with counted resources.
        """
        if not self.submitted:
            raise ValueError("nothing submitted")
        sim = Simulator(tracer=sim_tracer(prefix="nqs"))
        cpus = Resource(self.node_cpus, "cpus")
        slots = {q.name: Resource(q.run_limit, f"runlimit:{q.name}") for q in self.queues}
        ordered = sorted(
            self.submitted, key=lambda item: (-item[1].priority, item[0].submit_time)
        )

        def job_proc(job: BatchJob, q: NQSQueue):
            yield Acquire(slots[q.name])
            yield Acquire(cpus, job.cpus)
            job.start_time = sim.now
            yield job.duration_s
            job.finish_time = sim.now
            yield Release(cpus, job.cpus)
            yield Release(slots[q.name])
            self.accounting.append(
                AccountingRecord(
                    job=job.name,
                    queue=q.name,
                    cpus=job.cpus,
                    queued_s=job.start_time - job.submit_time,
                    ran_s=job.finish_time - job.start_time,
                    cpu_seconds=job.cpus * (job.finish_time - job.start_time),
                )
            )
            return job.name

        procs = [
            sim.spawn(job_proc(job, q), name=job.name, delay=job.submit_time)
            for job, q in ordered
        ]
        sim.run()
        return max(p.finish_time for p in procs)
