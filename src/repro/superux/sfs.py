"""SFS: the SUPER-UX native file system with XMU caching (Section 2.6.5).

"The SUPER-UX native file system is called SFS.  It has a flexible file
system level caching scheme utilizing XMU space; numerous parameters can
be set including write back method, staging unit, and allocation cluster
size.  Individual files can exceed 2 terabytes in size."

The model: files are allocated in clusters on a :class:`DiskArray`;
reads and writes move through an XMU-resident cache in staging units.
Write-back mode acknowledges writes at XMU speed and drains dirty
staging units to disk on flush (or when the cache fills); write-through
pays disk time immediately.  The timing difference is what makes the
history-tape benchmark (Section 4.5.1) sensitive to the file system, and
the test suite checks both the ordering (write-back ≪ write-through for
bursts) and the conservation of bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.iop import DiskArray
from repro.machine.xmu import ExtendedMemoryUnit
from repro.units import MB, TB

__all__ = ["SFSFile", "SFSFileSystem"]

#: "Individual files can exceed 2 terabytes in size."
MAX_FILE_BYTES = 8 * TB


@dataclass
class SFSFile:
    """One SFS file: a size and its dirty (not yet on disk) extent."""

    name: str
    size_bytes: float = 0.0
    dirty_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.size_bytes < 0 or self.dirty_bytes < 0:
            raise ValueError(f"file {self.name!r} has negative sizes")


@dataclass
class SFSFileSystem:
    """An SFS instance: disk + XMU cache + tunable policy.

    Parameters mirror the paper's list: ``write_back`` (vs through),
    ``staging_unit_bytes`` (the cache transfer granularity) and
    ``cluster_bytes`` (allocation granularity).  All I/O calls return
    the wall-clock seconds the operation costs; the file-system state
    tracks sizes and dirty data so flush accounting is exact.
    """

    disk: DiskArray = field(default_factory=DiskArray)
    xmu: ExtendedMemoryUnit = field(default_factory=ExtendedMemoryUnit)
    write_back: bool = True
    staging_unit_bytes: float = 4 * MB
    cluster_bytes: float = 1 * MB
    cache_limit_bytes: float | None = None

    files: dict[str, SFSFile] = field(default_factory=dict)
    cached_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.staging_unit_bytes <= 0 or self.cluster_bytes <= 0:
            raise ValueError("staging unit and cluster size must be positive")
        if self.cache_limit_bytes is None:
            self.cache_limit_bytes = 0.5 * self.xmu.capacity_bytes
        if self.cache_limit_bytes <= 0:
            raise ValueError("cache limit must be positive")

    # -- namespace ----------------------------------------------------------------
    def create(self, name: str) -> SFSFile:
        if name in self.files:
            raise FileExistsError(f"SFS file {name!r} already exists")
        self.files[name] = SFSFile(name=name)
        return self.files[name]

    def _file(self, name: str) -> SFSFile:
        if name not in self.files:
            raise FileNotFoundError(f"no SFS file named {name!r}")
        return self.files[name]

    def allocated_bytes(self, name: str) -> float:
        """On-disk allocation: size rounded up to whole clusters."""
        size = self._file(name).size_bytes
        clusters = -(-size // self.cluster_bytes) if size > 0 else 0
        return clusters * self.cluster_bytes

    # -- data path ------------------------------------------------------------------
    def _staging_units(self, nbytes: float) -> int:
        return max(1, int(-(-nbytes // self.staging_unit_bytes)))

    def write(self, name: str, nbytes: float) -> float:
        """Append ``nbytes``; returns the seconds the caller waits.

        Write-back: data lands in the XMU cache (fast) and is drained
        later; if the cache would overflow, the overflow drains to disk
        synchronously first.  Write-through: disk time up front.
        """
        if nbytes < 0:
            raise ValueError(f"write size cannot be negative, got {nbytes}")
        f = self._file(name)
        if f.size_bytes + nbytes > MAX_FILE_BYTES:
            raise ValueError(
                f"file {name!r} would exceed the SFS maximum ({MAX_FILE_BYTES / TB:g} TB)"
            )
        if nbytes == 0:
            return 0.0
        units = self._staging_units(nbytes)
        if not self.write_back:
            f.size_bytes += nbytes
            return self.disk.access_seconds(nbytes, sequential=True)
        elapsed = 0.0
        overflow = max(0.0, self.cached_bytes + nbytes - self.cache_limit_bytes)
        if overflow > 0:
            elapsed += self._drain(overflow)
        elapsed += units * self.xmu.access_latency_s + nbytes / self.xmu.bandwidth_bytes_per_s
        f.size_bytes += nbytes
        f.dirty_bytes += nbytes
        self.cached_bytes = min(self.cache_limit_bytes, self.cached_bytes + nbytes)
        return elapsed

    def _drain(self, nbytes: float) -> float:
        """Move ``nbytes`` of dirty cache to disk (oldest files first)."""
        remaining = nbytes
        elapsed = 0.0
        for f in self.files.values():
            if remaining <= 0:
                break
            take = min(f.dirty_bytes, remaining)
            if take > 0:
                elapsed += self.disk.access_seconds(take, sequential=True)
                f.dirty_bytes -= take
                remaining -= take
        self.cached_bytes = max(0.0, self.cached_bytes - (nbytes - remaining) - 0.0)
        self.cached_bytes = sum(f.dirty_bytes for f in self.files.values())
        return elapsed

    def read(self, name: str, nbytes: float) -> float:
        """Read ``nbytes``; cache-resident data comes from the XMU."""
        if nbytes < 0:
            raise ValueError(f"read size cannot be negative, got {nbytes}")
        f = self._file(name)
        if nbytes > f.size_bytes:
            raise ValueError(
                f"reading {nbytes:g} B from {name!r} of size {f.size_bytes:g} B"
            )
        if nbytes == 0:
            return 0.0
        from_cache = min(nbytes, f.dirty_bytes)
        from_disk = nbytes - from_cache
        elapsed = 0.0
        if from_cache > 0:
            elapsed += self.xmu.transfer_seconds(from_cache)
        if from_disk > 0:
            elapsed += self.disk.access_seconds(from_disk, sequential=True)
        return elapsed

    def flush(self, name: str | None = None) -> float:
        """Drain dirty data (one file, or everything) to disk."""
        targets = [self._file(name)] if name is not None else list(self.files.values())
        elapsed = 0.0
        for f in targets:
            if f.dirty_bytes > 0:
                elapsed += self.disk.access_seconds(f.dirty_bytes, sequential=True)
                f.dirty_bytes = 0.0
        self.cached_bytes = sum(f.dirty_bytes for f in self.files.values())
        return elapsed

    @property
    def dirty_total(self) -> float:
        return sum(f.dirty_bytes for f in self.files.values())
