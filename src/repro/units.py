"""Unit conversions and human-readable formatting shared across the package.

The paper mixes several unit conventions: clock periods in nanoseconds,
bandwidths in MB/s and GB/s (decimal, as was customary for the SX series
marketing numbers and the STREAM-style benchmarks), performance in Mflops
and Gflops (decimal), and wall-clock results in seconds or "93 minutes and
28 seconds" style strings.  This module centralises those conversions so
every other module agrees on what a "GB" is.

All byte-rate units here are *decimal* (1 MB = 10**6 bytes) to match the
paper's usage; word size is 8 bytes (the SX-4 is a 64-bit machine and "all
performance specifications assume 64 bit data").
"""

from __future__ import annotations

__all__ = [
    "NS",
    "US",
    "MS",
    "KB",
    "MB",
    "GB",
    "TB",
    "KILO",
    "MEGA",
    "GIGA",
    "TERA",
    "WORD_BYTES",
    "ns_to_s",
    "s_to_ns",
    "hz_from_period_ns",
    "period_ns_from_hz",
    "fmt_rate",
    "fmt_bytes",
    "fmt_time",
    "fmt_flops",
    "parse_hms",
]

#: One nanosecond, in seconds.
NS = 1.0e-9
#: One microsecond, in seconds.
US = 1.0e-6
#: One millisecond, in seconds.
MS = 1.0e-3

KILO = 1.0e3
MEGA = 1.0e6
GIGA = 1.0e9
TERA = 1.0e12

#: Decimal byte units, matching the paper's MB/s / GB/s figures.
KB = 1.0e3
MB = 1.0e6
GB = 1.0e9
TB = 1.0e12

#: Size of a 64-bit word in bytes; the SX-4's native operand size.
WORD_BYTES = 8


def ns_to_s(t_ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return t_ns * NS


def s_to_ns(t_s: float) -> float:
    """Convert seconds to nanoseconds."""
    return t_s / NS


def hz_from_period_ns(period_ns: float) -> float:
    """Clock frequency in Hz for a clock period given in nanoseconds.

    >>> round(hz_from_period_ns(9.2) / 1e6, 1)
    108.7
    """
    if period_ns <= 0.0:
        raise ValueError(f"clock period must be positive, got {period_ns} ns")
    return 1.0 / (period_ns * NS)


def period_ns_from_hz(freq_hz: float) -> float:
    """Clock period in nanoseconds for a frequency given in Hz."""
    if freq_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {freq_hz} Hz")
    return 1.0 / (freq_hz * NS)


def _scaled(value: float, units: list[tuple[float, str]]) -> tuple[float, str]:
    """Pick the largest unit whose threshold the value meets."""
    for factor, suffix in units:
        if abs(value) >= factor:
            return value / factor, suffix
    factor, suffix = units[-1]
    return value / factor, suffix


def fmt_rate(bytes_per_s: float) -> str:
    """Format a byte rate, e.g. ``fmt_rate(16e9) == '16.00 GB/s'``."""
    value, suffix = _scaled(
        bytes_per_s, [(TB, "TB/s"), (GB, "GB/s"), (MB, "MB/s"), (KB, "KB/s"), (1.0, "B/s")]
    )
    return f"{value:.2f} {suffix}"


def fmt_bytes(nbytes: float) -> str:
    """Format a byte count, e.g. ``fmt_bytes(15e9) == '15.00 GB'``."""
    value, suffix = _scaled(
        nbytes, [(TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB"), (1.0, "B")]
    )
    return f"{value:.2f} {suffix}"


def fmt_flops(flops_per_s: float) -> str:
    """Format a flop rate the way the paper does (Mflops / Gflops)."""
    value, suffix = _scaled(
        flops_per_s,
        [(TERA, "Tflops"), (GIGA, "Gflops"), (MEGA, "Mflops"), (KILO, "Kflops"), (1.0, "flops")],
    )
    return f"{value:.1f} {suffix}"


def fmt_time(seconds: float) -> str:
    """Format a wall-clock duration.

    Sub-second values use engineering units; longer values use the paper's
    "93 minutes and 28 seconds" style compressed to ``1h33m28s``.

    >>> fmt_time(5608)
    '1h33m28s'
    """
    if seconds < 0:
        raise ValueError(f"durations cannot be negative, got {seconds}")
    if seconds < 1e-6:
        return f"{seconds / NS:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds / US:.1f} us"
    if seconds < 1.0:
        return f"{seconds / MS:.1f} ms"
    if seconds < 60.0:
        return f"{seconds:.2f} s"
    total = int(round(seconds))
    hours, rem = divmod(total, 3600)
    minutes, secs = divmod(rem, 60)
    if hours:
        return f"{hours}h{minutes:02d}m{secs:02d}s"
    return f"{minutes}m{secs:02d}s"


def parse_hms(text: str) -> float:
    """Parse ``1h33m28s`` / ``93m28s`` / ``42s`` style strings to seconds.

    This is the inverse of :func:`fmt_time` for the minute-and-above range
    and is used by tests that anchor against the paper's quoted wall-clock
    results.
    """
    import re

    match = re.fullmatch(
        r"(?:(?P<h>\d+)h)?(?:(?P<m>\d+)m)?(?:(?P<s>\d+(?:\.\d+)?)s)?", text.strip()
    )
    if not match or not any(match.groupdict().values()):
        raise ValueError(f"unparseable duration: {text!r}")
    hours = int(match.group("h") or 0)
    minutes = int(match.group("m") or 0)
    seconds = float(match.group("s") or 0.0)
    return hours * 3600.0 + minutes * 60.0 + seconds
