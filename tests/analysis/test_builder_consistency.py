"""Cross-checks between the two faces of each benchmark.

Every benchmark has a functional implementation and a trace builder; the
trace's accounting must agree with the analytic operation counts the
paper uses.  These checks pin the agreement so drift in either face is a
test failure, not a silently wrong Mflops column.
"""

import pytest

from repro.kernels import copy as kcopy
from repro.kernels import ia, linpack, nas, rfft, stream, vfft, xpose
from repro.kernels.fftpack import real_fft_flops


class TestMembenchWords:
    """COPY/IA/XPOSE move exactly the words their definitions say."""

    def test_copy_moves_two_words_per_element(self):
        n, m = 65536, 16
        assert kcopy.build_trace(n, m).words_moved == 2 * n * m

    def test_ia_moves_the_same_words_half_gathered(self):
        n, m = 65536, 16
        trace = ia.build_trace(n, m)
        assert trace.words_moved == 2 * n * m
        assert trace.gather_fraction == pytest.approx(0.5)

    def test_xpose_moves_two_words_per_matrix_element(self):
        n, m = 512, 512
        # N·M executions of an N-long load/store loop: 2·N²·M words.
        assert xpose.build_trace(n, m).words_moved == 2 * n * n * m


class TestStream:
    @pytest.mark.parametrize("kernel", stream.STREAM_KERNELS, ids=lambda k: k.name)
    def test_trace_matches_the_kernel_definition(self, kernel):
        op = stream.build_trace(kernel.name).ops[0]
        assert op.flops_per_element == kernel.flops_per_element
        assert op.loads_per_element == kernel.loads_per_element
        assert op.stores_per_element == kernel.stores_per_element
        assert op.load_stride == 1 and op.store_stride == 1


class TestLinpack:
    def test_trace_flops_match_the_official_count(self):
        n = 1000
        trace = linpack.build_trace(n)
        # The official 2n³/3 + 2n² count; the trace's exact loop-by-loop
        # sum differs only in lower-order terms.
        assert trace.raw_flops == pytest.approx(linpack.linpack_flops(n), rel=0.02)


class TestFFT:
    def test_rfft_trace_flops_match_the_pass_costs(self):
        n, m = 1024, 64
        trace = rfft.build_trace(n, m)
        assert trace.raw_flops == pytest.approx(m * real_fft_flops(n), rel=1e-9)

    def test_vfft_trace_flops_match_the_pass_costs(self):
        n, m = 1024, 512
        trace = vfft.build_trace(n, m)
        assert trace.raw_flops == pytest.approx(m * real_fft_flops(n), rel=1e-9)

    def test_both_orientations_do_the_same_arithmetic(self):
        # RFFT vs VFFT is a loop-ordering change, not an algorithm change.
        n, m = 256, 100
        assert rfft.build_trace(n, m).raw_flops == pytest.approx(
            vfft.build_trace(n, m).raw_flops, rel=1e-9
        )


class TestNasEP:
    def test_ep_trace_costs_per_pair(self):
        pairs = 1 << 20
        trace = nas.ep_trace(pairs)
        assert trace.raw_flops / pairs == pytest.approx(12.0)
        intrinsics = {
            name: total / pairs
            for name, total in trace.intrinsic_calls_total.items()
        }
        # log+sqrt on every accepted pair (acceptance rate π/4 ≈ 0.79).
        assert intrinsics == {
            "log": pytest.approx(0.79, abs=0.01),
            "sqrt": pytest.approx(0.79, abs=0.01),
        }
