"""Smoke tests for the ``python -m repro.analysis`` CLI."""

import pytest

from repro.analysis.__main__ import main
from repro.analysis.traces import TRACE_BUILDERS


class TestList:
    def test_lists_every_registered_id(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for trace_id in TRACE_BUILDERS:
            assert trace_id in out


class TestTrace:
    def test_clean_benchmark_exits_zero(self, capsys):
        assert main(["trace", "radabs"]) == 0
        out = capsys.readouterr().out
        assert "== radabs:" in out
        assert "no diagnostics" in out
        assert "summary: clean" in out

    def test_diagnosed_benchmark_still_exits_zero(self, capsys):
        # trace is advisory: diagnostics explain performance, not failures
        assert main(["trace", "radabs-scalar"]) == 0
        out = capsys.readouterr().out
        assert "VEC004" in out

    def test_multiple_ids_in_order(self, capsys):
        assert main(["trace", "copy", "xpose"]) == 0
        out = capsys.readouterr().out
        assert out.index("== copy:") < out.index("== xpose:")
        assert "VEC002" in out  # xpose's stride-512 bank conflict

    def test_unknown_id_exits_two(self, capsys):
        assert main(["trace", "no-such-benchmark"]) == 2
        assert "unknown benchmark id" in capsys.readouterr().out

    def test_no_ids_and_no_all_is_a_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["trace"])
        assert exc.value.code == 2


def test_repolint_gate_passes_at_head(capsys):
    assert main(["--repolint"]) == 0
    assert "all repo invariants hold" in capsys.readouterr().out


def test_no_arguments_prints_help_and_exits_two(capsys):
    assert main([]) == 2
    assert "usage:" in capsys.readouterr().out
