"""Smoke tests for the ``python -m repro.analysis`` CLI."""

import json
import textwrap

import pytest

from repro.analysis.__main__ import main
from repro.analysis.traces import TRACE_BUILDERS


class TestList:
    def test_lists_every_registered_id(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for trace_id in TRACE_BUILDERS:
            assert trace_id in out


class TestTrace:
    def test_clean_benchmark_exits_zero(self, capsys):
        assert main(["trace", "radabs"]) == 0
        out = capsys.readouterr().out
        assert "== radabs:" in out
        assert "no diagnostics" in out
        assert "summary: clean" in out

    def test_diagnosed_benchmark_exits_one(self, capsys):
        # Uniform exit convention: advisory findings (warnings) exit 1,
        # so scripts can distinguish "clean" from "explained slowdowns".
        assert main(["trace", "radabs-scalar"]) == 1
        out = capsys.readouterr().out
        assert "VEC004" in out

    def test_multiple_ids_in_order(self, capsys):
        assert main(["trace", "copy", "xpose"]) == 1
        out = capsys.readouterr().out
        assert out.index("== copy:") < out.index("== xpose:")
        assert "VEC002" in out  # xpose's stride-512 bank conflict

    def test_unknown_id_exits_two(self, capsys):
        assert main(["trace", "no-such-benchmark"]) == 2
        assert "unknown benchmark id" in capsys.readouterr().out

    def test_no_ids_and_no_all_is_a_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["trace"])
        assert exc.value.code == 2


def _impure_pkg(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "builders.py").write_text(
        textwrap.dedent(
            """
            import time


            def build_a():
                return time.time()


            EXPERIMENTS = {"a": build_a}
            """
        ),
        encoding="utf-8",
    )
    return pkg


class TestEffects:
    def test_head_tree_is_clean_against_baseline(self, capsys):
        # The acceptance criterion: zero unbaselined DET errors at head.
        assert main(["effects"]) == 0
        out = capsys.readouterr().out
        assert "modules" in out and "analyzed" in out

    def test_impure_builder_exits_two(self, tmp_path, capsys):
        pkg = _impure_pkg(tmp_path)
        assert main(["effects", str(pkg), "--no-baseline"]) == 2
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "time.time()" in out

    def test_json_format_round_trips(self, tmp_path, capsys):
        pkg = _impure_pkg(tmp_path)
        assert main(["effects", str(pkg), "--no-baseline", "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert [f["rule_id"] for f in payload["findings"]] == ["DET001"]
        assert payload["findings"][0]["fingerprint"].startswith("DET001 ")

    def test_sarif_to_file(self, tmp_path, capsys):
        pkg = _impure_pkg(tmp_path)
        out_file = tmp_path / "effects.sarif"
        code = main(
            ["effects", str(pkg), "--no-baseline", "--format", "sarif",
             "--out", str(out_file)]
        )
        assert code == 2
        payload = json.loads(out_file.read_text(encoding="utf-8"))
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["results"][0]["ruleId"] == "DET001"

    def test_write_baseline_then_rerun_is_clean(self, tmp_path, capsys):
        pkg = _impure_pkg(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(
            ["effects", str(pkg), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        assert "wrote 1 fingerprint(s)" in capsys.readouterr().out
        assert main(["effects", str(pkg), "--baseline", str(baseline)]) == 0

    def test_explain_reports_chain(self, tmp_path, capsys):
        pkg = _impure_pkg(tmp_path)
        assert main(["effects", str(pkg), "--explain", "build_a"]) == 0
        out = capsys.readouterr().out
        assert "pkg.builders.build_a" in out
        assert "reads-clock" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["effects", str(tmp_path / "nowhere")]) == 2
        assert "not a directory" in capsys.readouterr().out


def test_repolint_gate_passes_at_head(capsys):
    assert main(["--repolint"]) == 0
    assert "all repo invariants hold" in capsys.readouterr().out


def test_repolint_subcommand_matches_legacy_flag(capsys):
    assert main(["repolint"]) == 0
    assert "all repo invariants hold" in capsys.readouterr().out


def test_no_arguments_prints_help_and_exits_two(capsys):
    assert main([]) == 2
    assert "usage:" in capsys.readouterr().out
