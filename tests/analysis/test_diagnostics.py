"""Tests for the shared diagnostics core."""

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    count_by_rule,
)


def _diag(rule="VEC001", sev=Severity.WARNING, impact=None):
    return Diagnostic(
        rule_id=rule,
        severity=sev,
        location="op[0] 'x'",
        message="finding",
        predicted_impact=impact,
    )


class TestSeverity:
    def test_ordering_picks_worst(self):
        assert max(Severity.INFO, Severity.WARNING, Severity.ERROR) is Severity.ERROR

    def test_renders_lowercase(self):
        assert str(Severity.WARNING) == "warning"


class TestDiagnostic:
    def test_str_carries_rule_severity_location(self):
        text = str(_diag())
        assert text.startswith("VEC001 warning: op[0] 'x':")

    def test_impact_rendered_whenever_set(self):
        assert "[~8.0x]" in str(_diag(impact=8.0))
        assert "[~" not in str(_diag(impact=None))
        # A factor of exactly 1.0 (or below) is still information a rule
        # chose to report — only None suppresses the suffix.
        assert "[~1.0x]" in str(_diag(impact=1.0))
        assert "[~0.5x]" in str(_diag(impact=0.5))


class TestDiagnosticReport:
    def test_clean_report(self):
        report = DiagnosticReport(subject="t")
        assert report.clean
        assert len(report) == 0
        assert report.worst_severity is None
        assert report.summary_line() == "clean"

    def test_worst_severity_and_by_rule(self):
        report = DiagnosticReport(
            subject="t",
            diagnostics=[_diag(), _diag("VEC005", Severity.INFO)],
        )
        assert report.worst_severity is Severity.WARNING
        assert len(report.by_rule("VEC005")) == 1
        assert not report.clean

    def test_summary_line_counts_and_worst_impact(self):
        report = DiagnosticReport(
            subject="t",
            diagnostics=[_diag(impact=2.0), _diag(impact=8.0), _diag("VEC004")],
        )
        line = report.summary_line()
        assert "VEC001 x2" in line
        assert "VEC004 x1" in line
        assert "worst ~8.0x" in line

    def test_summary_line_explicit_zero_impact_participates(self):
        # 0.0 is falsy but not None: it must reach the worst-case max,
        # not be confused with "no impact recorded".
        report = DiagnosticReport(subject="t", diagnostics=[_diag(impact=0.0)])
        assert "worst ~0.0x" in report.summary_line()
        report = DiagnosticReport(
            subject="t", diagnostics=[_diag(impact=0.0), _diag(impact=None)]
        )
        assert "worst ~0.0x" in report.summary_line()


def test_count_by_rule_first_seen_order():
    counts = count_by_rule([_diag("VEC002"), _diag("VEC001"), _diag("VEC002")])
    assert counts == {"VEC002": 2, "VEC001": 1}
    assert list(counts) == ["VEC002", "VEC001"]
