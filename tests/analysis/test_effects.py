"""Tests for the whole-program effect analyzer (DET rule family)."""

import json
import textwrap

import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.effects import (
    Effect,
    EffectContract,
    analyze_and_check,
    analyze_tree,
    check_contracts,
    default_contract,
    effect_chain,
    load_baseline,
    sarif_report,
    write_baseline,
)


def write_tree(root, files):
    """Materialize ``{relative path: source}`` under ``root``."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def make_pkg(tmp_path, files):
    pkg = tmp_path / "pkg"
    base = {"__init__.py": "", "helpers/__init__.py": ""}
    write_tree(pkg, {**base, **files})
    return pkg


#: The acceptance-criteria fixture: a registered builder whose clock
#: read hides two calls deep inside a helper module.
CLOCK_DEEP = {
    "helpers/timing.py": """
        import time


        def now():
            return time.perf_counter()
    """,
    "helpers/mid.py": """
        from pkg.helpers import timing


        def stamp():
            return timing.now()
    """,
    "builders.py": """
        from pkg.helpers import mid


        def build_a():
            return {"t": mid.stamp()}


        EXPERIMENTS = {"a": build_a}
    """,
}


def rule_ids(report):
    return [f.diagnostic.rule_id for f in report.findings]


class TestAcceptanceFixture:
    def test_clock_two_calls_deep_is_det001(self, tmp_path):
        pkg = make_pkg(tmp_path, CLOCK_DEEP)
        report = analyze_and_check(pkg)
        assert rule_ids(report) == ["DET001"]
        message = report.findings[0].diagnostic.message
        assert "pkg.builders.build_a" in message
        assert "pkg.helpers.mid.stamp" in message
        assert "pkg.helpers.timing.now" in message
        assert "time.perf_counter()" in message
        assert report.exit_code() == 2

    def test_chain_is_reconstructible(self, tmp_path):
        pkg = make_pkg(tmp_path, CLOCK_DEEP)
        program = analyze_tree(pkg)
        chain = effect_chain(program, "pkg.builders.build_a", Effect.READS_CLOCK)
        assert chain == [
            "pkg.builders.build_a",
            "pkg.helpers.mid.stamp",
            "pkg.helpers.timing.now",
        ]

    def test_pure_builder_is_clean(self, tmp_path):
        pkg = make_pkg(
            tmp_path,
            {
                "builders.py": """
                    def build_a():
                        return sum(range(10))


                    EXPERIMENTS = {"a": build_a}
                """,
            },
        )
        report = analyze_and_check(pkg)
        assert report.findings == []
        assert report.exit_code() == 0


class TestDeterminismRules:
    def _check(self, tmp_path, builder_body, helper=None):
        files = {
            "builders.py": textwrap.dedent(
                """
                from pkg.helpers import work


                def build_a():
                    return work.go()


                EXPERIMENTS = {"a": build_a}
                """
            ),
            "helpers/work.py": helper or builder_body,
        }
        return analyze_and_check(make_pkg(tmp_path, files))

    def test_entropy_from_import_is_det002(self, tmp_path):
        report = self._check(
            tmp_path,
            """
            from random import random


            def go():
                return random()
            """,
        )
        assert rule_ids(report) == ["DET002"]

    def test_unseeded_rng_factory_is_det002(self, tmp_path):
        report = self._check(
            tmp_path,
            """
            import random


            def go():
                rng = random.Random()
                return rng.random()
            """,
        )
        assert rule_ids(report) == ["DET002"]

    def test_seeded_rng_factory_is_clean(self, tmp_path):
        report = self._check(
            tmp_path,
            """
            import random


            def go():
                rng = random.Random(1234)
                return rng.random()
            """,
        )
        assert "DET002" not in rule_ids(report)

    def test_environment_read_is_det003(self, tmp_path):
        report = self._check(
            tmp_path,
            """
            import os


            def go():
                return os.environ.get("HOME", "")
            """,
        )
        assert rule_ids(report) == ["DET003"]

    def test_unsorted_listdir_is_det004(self, tmp_path):
        report = self._check(
            tmp_path,
            """
            import os


            def go():
                return [name for name in os.listdir(".")]
            """,
        )
        assert rule_ids(report) == ["DET004"]

    def test_sorted_listdir_is_clean(self, tmp_path):
        report = self._check(
            tmp_path,
            """
            import os


            def go():
                return sorted(os.listdir("."))
            """,
        )
        assert "DET004" not in rule_ids(report)

    def test_worker_global_mutation_is_det005(self, tmp_path):
        report = self._check(
            tmp_path,
            """
            SEEN = []


            def go():
                SEEN.append(1)
                return len(SEEN)
            """,
        )
        assert "DET005" in rule_ids(report)

    def test_local_shadows_module_name(self, tmp_path):
        # A function-local ``SEEN`` is not the module-level one: Python
        # scoping, not name matching, decides what is a global mutation.
        report = self._check(
            tmp_path,
            """
            SEEN = []


            def go():
                SEEN = []
                SEEN.append(1)
                return len(SEEN)
            """,
        )
        assert "DET005" not in rule_ids(report)

    def test_global_declared_rebind_is_det005(self, tmp_path):
        report = self._check(
            tmp_path,
            """
            COUNT = 0


            def go():
                global COUNT
                COUNT = COUNT + 1
                return COUNT
            """,
        )
        assert "DET005" in rule_ids(report)

    def test_digest_over_unsorted_dir_is_det006(self, tmp_path):
        pkg = make_pkg(
            tmp_path,
            {
                "keys.py": """
                    import hashlib
                    import os


                    def tree_key(path):
                        h = hashlib.sha256()
                        for name in os.listdir(path):
                            h.update(name.encode())
                        return h.hexdigest()
                """,
            },
        )
        report = analyze_and_check(pkg)
        assert "DET006" in rule_ids(report)

    def test_digest_over_sorted_dir_is_clean(self, tmp_path):
        pkg = make_pkg(
            tmp_path,
            {
                "keys.py": """
                    import hashlib
                    import os


                    def tree_key(path):
                        h = hashlib.sha256()
                        for name in sorted(os.listdir(path)):
                            h.update(name.encode())
                        return h.hexdigest()
                """,
            },
        )
        report = analyze_and_check(pkg)
        assert "DET006" not in rule_ids(report)

    def test_parse_failure_is_det000_error(self, tmp_path):
        pkg = make_pkg(tmp_path, {"broken.py": "def oops(:\n"})
        report = analyze_and_check(pkg)
        assert rule_ids(report) == ["DET000"]
        assert report.exit_code() == 2


class TestExemptions:
    def test_sink_line_skip_pragma_suppresses(self, tmp_path):
        files = dict(CLOCK_DEEP)
        files["helpers/timing.py"] = """
            import time


            def now():
                return time.perf_counter()  # repolint: skip
        """
        report = analyze_and_check(make_pkg(tmp_path, files))
        assert report.findings == []

    def test_module_exempt_pragma_suppresses_only_that_rule(self, tmp_path):
        files = dict(CLOCK_DEEP)
        files["helpers/timing.py"] = """
            # repolint: exempt=DET001 -- wall-clock stamps are advisory here
            import os
            import time


            def now():
                return time.perf_counter()


            def whoami():
                return os.environ["USER"]
        """
        files["builders.py"] = """
            from pkg.helpers import mid, timing


            def build_a():
                return {"t": mid.stamp(), "u": timing.whoami()}


            EXPERIMENTS = {"a": build_a}
        """
        report = analyze_and_check(make_pkg(tmp_path, files))
        assert rule_ids(report) == ["DET003"]  # DET001 exempted, DET003 not


class TestBaseline:
    def test_baseline_suppresses_known_findings(self, tmp_path):
        pkg = make_pkg(tmp_path, CLOCK_DEEP)
        first = analyze_and_check(pkg)
        assert first.exit_code() == 2
        baseline_path = tmp_path / "baseline.json"
        assert write_baseline(baseline_path, first) == 1
        baseline = load_baseline(baseline_path)
        second = analyze_and_check(pkg, baseline=baseline)
        assert second.findings == []
        assert second.suppressed == 1
        assert second.exit_code() == 0

    def test_stale_entry_is_det000_warning(self, tmp_path):
        pkg = make_pkg(
            tmp_path,
            {"builders.py": "def build_a():\n    return 1\n\n\nEXPERIMENTS = {'a': build_a}\n"},
        )
        report = analyze_and_check(pkg, baseline={"DET001 gone.function detail"})
        assert rule_ids(report) == ["DET000"]
        assert report.findings[0].diagnostic.severity is Severity.WARNING
        assert report.stale_baseline == ["DET001 gone.function detail"]
        assert report.exit_code() == 1

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 99, "findings": []}', encoding="utf-8")
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)

    def test_fingerprints_stable_across_line_shifts(self, tmp_path):
        pkg = make_pkg(tmp_path, CLOCK_DEEP)
        first = analyze_and_check(pkg)
        shifted = dict(CLOCK_DEEP)
        shifted["helpers/timing.py"] = "# a new leading comment\n" + textwrap.dedent(
            CLOCK_DEEP["helpers/timing.py"]
        )
        pkg2 = make_pkg(tmp_path / "two", shifted)
        second = analyze_and_check(pkg2)
        assert first.findings[0].fingerprint == second.findings[0].fingerprint


class TestContracts:
    def test_default_contract_discovers_registry(self, tmp_path):
        pkg = make_pkg(tmp_path, CLOCK_DEEP)
        program = analyze_tree(pkg)
        contract = default_contract(program)
        assert "pkg.builders.build_a" in contract.deterministic_roots
        assert "pkg.builders.build_a" in contract.worker_roots

    def test_explicit_contract_overrides_discovery(self, tmp_path):
        pkg = make_pkg(tmp_path, CLOCK_DEEP)
        program = analyze_tree(pkg)
        report = check_contracts(
            program, contract=EffectContract(deterministic_roots=(), worker_roots=())
        )
        assert report.findings == []

    def test_effects_do_not_leak_between_siblings(self, tmp_path):
        pkg = make_pkg(
            tmp_path,
            {
                **CLOCK_DEEP,
                "builders.py": """
                    from pkg.helpers import mid


                    def build_a():
                        return {"t": mid.stamp()}


                    def build_b():
                        return 42


                    EXPERIMENTS = {"a": build_a, "b": build_b}
                """,
            },
        )
        program = analyze_tree(pkg)
        assert Effect.READS_CLOCK in program.effects_of("pkg.builders.build_a")
        assert program.effects_of("pkg.builders.build_b") == set()


class TestRepoTree:
    def test_head_tree_has_no_unbaselined_det_errors(self):
        # The ISSUE acceptance criterion: the real tree analyzes clean
        # against the checked-in baseline.
        from repro.analysis.repolint import repo_root

        root = repo_root()
        baseline = load_baseline(root / ".repro-effects-baseline.json")
        report = analyze_and_check(root / "src" / "repro", baseline=baseline)
        assert report.errors == [], [str(f.diagnostic) for f in report.errors]

    def test_builder_entry_points_are_in_default_contract(self):
        from repro.analysis.repolint import repo_root
        from repro.engine.deps import builder_entry_points

        program = analyze_tree(repo_root() / "src" / "repro")
        contract = default_contract(program)
        for _exp_id, module, func in builder_entry_points():
            assert f"{module}.{func}" in contract.deterministic_roots
            assert f"{module}.{func}" in contract.worker_roots

    def test_worker_entry_is_a_worker_root(self):
        from repro.analysis.repolint import repo_root

        program = analyze_tree(repo_root() / "src" / "repro")
        contract = default_contract(program)
        assert "repro.engine.executor._execute_job" in contract.worker_roots


class TestSarif:
    def test_sarif_shape_and_rules(self, tmp_path):
        pkg = make_pkg(tmp_path, CLOCK_DEEP)
        report = analyze_and_check(pkg)
        payload = sarif_report(report)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        results = run["results"]
        assert len(results) == 1
        assert results[0]["ruleId"] == "DET001"
        assert results[0]["level"] == "error"
        declared = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert "DET001" in declared
