"""Property tests: the effect analyzer has no false negatives on a
generated corpus.

Each example builds a synthetic package whose registered builder calls
through a chain of helper modules of random depth; exactly one link —
at a random depth — commits a known impurity, written in a randomly
chosen call style (plain import, aliased import, or from-import).  The
analyzer must always surface the matching DET rule at the root, no
matter how deep the sink hides or how the import is spelled.
"""

import tempfile
import textwrap
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.effects import analyze_and_check

#: (rule id, {call style: (import lines, impure expression)})
IMPURITIES = {
    "DET001": {
        "plain": ("import time", "time.perf_counter()"),
        "aliased": ("import time as clock", "clock.monotonic()"),
        "from": ("from time import time", "time()"),
    },
    "DET002": {
        "plain": ("import random", "random.random()"),
        "aliased": ("import random as rng", "rng.gauss(0.0, 1.0)"),
        "from": ("from random import randint", "randint(0, 9)"),
    },
    "DET003": {
        "plain": ("import os", 'os.environ.get("HOME", "")'),
        "aliased": ("import os", 'os.getenv("HOME", "")'),
        "from": ("from os import getenv", 'getenv("HOME", "")'),
    },
    "DET004": {
        "plain": ("import os", 'os.listdir(".")'),
        "aliased": ("import glob", 'glob.glob("*.py")'),
        "from": ("from os import listdir", 'listdir(".")'),
    },
}

GLOBAL_MUTATIONS = [
    "SEEN.append(depth)",
    "SEEN.extend([depth])",
    "STATE['k'] = depth",
    "STATE.update(k=depth)",
]


def _link_source(index, depth, impure_at, rule, style):
    """Source for helper module ``m{index}``: pure pass-through, or the
    single impure link when ``index == impure_at``."""
    if index < depth - 1:
        call, imports = f"pkg.m{index + 1}.step({index})", f"from pkg import m{index + 1}"
    else:
        call, imports = "0", ""
    if index == impure_at:
        impure_import, expression = IMPURITIES[rule][style]
        imports = f"{imports}\n{impure_import}" if imports else impure_import
        body = f"    return ({expression}, {call})"
    else:
        body = f"    return (x, {call})"
    return f"{imports}\n\n\ndef step(x):\n{body}\n"


def _build_and_check(files):
    with tempfile.TemporaryDirectory() as tmp:
        pkg = Path(tmp) / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        for name, source in files.items():
            (pkg / name).write_text(source, encoding="utf-8")
        return analyze_and_check(pkg)


@settings(max_examples=25, deadline=None)
@given(
    depth=st.integers(min_value=1, max_value=5),
    offset=st.integers(min_value=0, max_value=4),
    rule=st.sampled_from(sorted(IMPURITIES)),
    style=st.sampled_from(["plain", "aliased", "from"]),
)
def test_injected_impurity_always_surfaces(depth, offset, rule, style):
    impure_at = offset % depth
    files = {
        "builders.py": textwrap.dedent(
            """
            from pkg import m0


            def build_a():
                return m0.step(0)


            EXPERIMENTS = {"a": build_a}
            """
        ),
    }
    for index in range(depth):
        files[f"m{index}.py"] = _link_source(index, depth, impure_at, rule, style)
    report = _build_and_check(files)
    found = {f.diagnostic.rule_id for f in report.findings}
    assert rule in found, (
        f"{rule} injected at depth {impure_at}/{depth} (style {style!r}) "
        f"was not reported; findings: {[str(f.diagnostic) for f in report.findings]}"
    )
    # And the root is named, so the report is actionable.
    flagged = [f for f in report.findings if f.diagnostic.rule_id == rule]
    assert any("pkg.builders.build_a" in f.diagnostic.message for f in flagged)


@settings(max_examples=25, deadline=None)
@given(
    depth=st.integers(min_value=1, max_value=5),
    offset=st.integers(min_value=0, max_value=4),
    mutation=st.sampled_from(GLOBAL_MUTATIONS),
)
def test_injected_global_mutation_always_surfaces(depth, offset, mutation):
    impure_at = offset % depth
    files = {
        "builders.py": textwrap.dedent(
            """
            from pkg import m0


            def build_a():
                return m0.step(0)


            EXPERIMENTS = {"a": build_a}
            """
        ),
    }
    for index in range(depth):
        if index < depth - 1:
            call = f"pkg.m{index + 1}.step(depth)"
            imports = f"from pkg import m{index + 1}\n"
        else:
            call, imports = "0", ""
        if index == impure_at:
            body = f"    {mutation}\n    return {call}"
        else:
            body = f"    return {call}"
        files[f"m{index}.py"] = (
            f"{imports}SEEN = []\nSTATE = {{}}\n\n\ndef step(depth):\n{body}\n"
        )
    report = _build_and_check(files)
    found = {f.diagnostic.rule_id for f in report.findings}
    assert "DET005" in found, (
        f"mutation {mutation!r} at depth {impure_at}/{depth} was not reported; "
        f"findings: {[str(f.diagnostic) for f in report.findings]}"
    )


@settings(max_examples=15, deadline=None)
@given(
    depth=st.integers(min_value=1, max_value=4),
    data=st.data(),
)
def test_pure_chains_never_flagged(depth, data):
    # The dual property: chains with no injected impurity stay clean —
    # the analyzer does not invent effects.
    files = {
        "builders.py": textwrap.dedent(
            """
            from pkg import m0


            def build_a():
                return m0.step(0)


            EXPERIMENTS = {"a": build_a}
            """
        ),
    }
    for index in range(depth):
        files[f"m{index}.py"] = _link_source(index, depth, impure_at=-1,
                                             rule="DET001", style="plain")
    report = _build_and_check(files)
    assert report.findings == [], [str(f.diagnostic) for f in report.findings]
