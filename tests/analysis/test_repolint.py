"""Repolint tests: each REPO rule against synthetic modules, and the
repo itself, which must be clean at head (the CI gate)."""

import textwrap

from repro.analysis.repolint import lint_file, lint_repo, repo_root


def write_module(root, rel, source):
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def rule_ids(diagnostics):
    return [d.rule_id for d in diagnostics]


class TestKernelContract:
    def test_missing_both_faces(self, tmp_path):
        path = write_module(
            tmp_path, "src/repro/kernels/bad.py", "def helper():\n    pass\n"
        )
        found = lint_file(path, tmp_path)
        assert rule_ids(found) == ["REPO001"]
        assert "functional entry point" in found[0].message
        assert "trace builder" in found[0].message

    def test_both_faces_satisfy_the_contract(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/kernels/good.py",
            """
            def good_kernel(a):
                return a

            def build_trace(n):
                return None
            """,
        )
        assert lint_file(path, tmp_path) == []

    def test_alternate_entry_and_suffixed_builder(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/kernels/alt.py",
            """
            def solve(a, b):
                return b

            def throughput_trace(name):
                return None
            """,
        )
        assert lint_file(path, tmp_path) == []

    def test_module_exempt_pragma(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/kernels/shared.py",
            """
            # repolint: exempt=REPO001 -- shared machinery, no benchmark face
            def helper():
                pass
            """,
        )
        assert lint_file(path, tmp_path) == []

    def test_non_kernel_module_is_out_of_scope(self, tmp_path):
        path = write_module(
            tmp_path, "src/repro/suite/misc.py", "def helper():\n    pass\n"
        )
        assert lint_file(path, tmp_path) == []


class TestAllExports:
    def test_phantom_export_and_missing_public_def(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/suite/exports.py",
            """
            __all__ = ["phantom"]


            def public_fn():
                pass
            """,
        )
        found = lint_file(path, tmp_path)
        assert rule_ids(found) == ["REPO002", "REPO002"]
        messages = " ".join(d.message for d in found)
        assert "phantom" in messages
        assert "public_fn" in messages

    def test_matching_all_is_clean(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/suite/ok.py",
            """
            __all__ = ["public_fn"]


            def public_fn():
                pass


            def _private():
                pass
            """,
        )
        assert lint_file(path, tmp_path) == []

    def test_module_without_all_is_not_checked(self, tmp_path):
        path = write_module(
            tmp_path, "src/repro/suite/no_all.py", "def public_fn():\n    pass\n"
        )
        assert lint_file(path, tmp_path) == []


class TestIntrinsicNames:
    def test_unknown_intrinsic_in_call_kwarg(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/suite/mix.py",
            'op = VectorOp.make("v", 8, intrinsics={"tanh": 1.0})\n',
        )
        found = lint_file(path, tmp_path)
        assert rule_ids(found) == ["REPO003"]
        assert "tanh" in found[0].message

    def test_unknown_key_in_intrinsic_table(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/suite/table.py",
            'MY_INTRINSIC_RATES = {"exp": 1.0, "cosh": 2.0}\n',
        )
        assert rule_ids(lint_file(path, tmp_path)) == ["REPO003"]

    def test_known_names_are_clean(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/suite/okmix.py",
            'op = VectorOp.make("v", 8, intrinsics={"exp": 1.0, "sqrt": 0.5})\n',
        )
        assert lint_file(path, tmp_path) == []

    def test_line_skip_pragma(self, tmp_path):
        path = write_module(
            tmp_path,
            "tests/test_neg.py",
            'op = VectorOp.make("v", 8, intrinsics={"tanh": 1.0})  # repolint: skip\n',
        )
        assert lint_file(path, tmp_path) == []


class TestDeterminism:
    SOURCE = """
    import time
    import numpy as np


    def now():
        return time.perf_counter() + np.random.rand()
    """

    def test_clock_and_entropy_in_simulator_path(self, tmp_path):
        path = write_module(tmp_path, "src/repro/machine/clocky.py", self.SOURCE)
        ids = rule_ids(lint_file(path, tmp_path))
        assert ids.count("REPO004") == 3  # import, time.perf_counter, np.random

    def test_same_code_outside_simulator_paths_is_allowed(self, tmp_path):
        path = write_module(tmp_path, "src/repro/kernels/hosty.py", self.SOURCE)
        assert "REPO004" not in rule_ids(lint_file(path, tmp_path))

    def test_event_time_is_clean(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/scheduler/fine.py",
            "def advance(queue):\n    return queue.pop()\n",
        )
        assert lint_file(path, tmp_path) == []

    def test_from_import_of_clock_is_flagged(self, tmp_path):
        # Regression: ``from time import time`` used to dodge the
        # attribute-style usage check entirely.
        path = write_module(
            tmp_path,
            "src/repro/machine/sneaky.py",
            """
            from time import time


            def now():
                return time()
            """,
        )
        found = lint_file(path, tmp_path)
        assert rule_ids(found) == ["REPO004", "REPO004"]  # import + usage
        assert any("time.time()" in d.message for d in found)

    def test_aliased_from_import_usage_is_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/machine/renamed.py",
            """
            from time import perf_counter as wall
            from random import random as draw


            def sample():
                return wall() + draw()
            """,
        )
        found = lint_file(path, tmp_path)
        usage = [d for d in found if "as " in d.message]
        assert len(usage) == 2
        assert any("time.perf_counter() (as 'wall')" in d.message for d in usage)
        assert any("random.random (as 'draw')" in d.message for d in usage)

    def test_aliased_module_import_usage_is_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/iosim/clocked.py",
            """
            import time as clock


            def now():
                return clock.monotonic()
            """,
        )
        found = lint_file(path, tmp_path)
        assert rule_ids(found) == ["REPO004", "REPO004"]
        assert any("time.monotonic()" in d.message for d in found)

    def test_numpy_random_from_import_is_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/superux/entropy.py",
            """
            from numpy.random import rand


            def noise(n):
                return rand(n)
            """,
        )
        found = lint_file(path, tmp_path)
        assert rule_ids(found) == ["REPO004", "REPO004"]
        assert any("numpy.random.rand" in d.message for d in found)

    def test_unrelated_from_imports_stay_clean(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/machine/fine2.py",
            """
            from math import sqrt
            from itertools import count


            def grow(x):
                return sqrt(x) + next(iter(count()))
            """,
        )
        assert lint_file(path, tmp_path) == []


class TestMagicUnits:
    def test_literal_scale_factor_in_src(self, tmp_path):
        path = write_module(
            tmp_path, "src/repro/suite/scales.py", "mflops = flops / 1e6\n"
        )
        found = lint_file(path, tmp_path)
        assert rule_ids(found) == ["REPO005"]
        assert "MEGA" in found[0].message

    def test_units_module_itself_is_exempt(self, tmp_path):
        path = write_module(tmp_path, "src/repro/units.py", "MEGA = 1.0 * 1e6\n")
        assert lint_file(path, tmp_path) == []

    def test_tests_are_out_of_scope(self, tmp_path):
        path = write_module(tmp_path, "tests/test_scales.py", "x = 3.0 * 1e9\n")
        assert lint_file(path, tmp_path) == []

    def test_non_unit_literals_are_fine(self, tmp_path):
        path = write_module(
            tmp_path, "src/repro/suite/maths.py", "y = x * 2.5e6\n"
        )
        assert lint_file(path, tmp_path) == []


class TestPerfmonRegistration:
    CONSUMER = """
    from repro.machine.operations import VectorOp


    def time_op(op: VectorOp) -> float:
        return op.length * 1e-9  # repolint: skip
    """

    def test_component_without_declaration_is_flagged(self, tmp_path):
        path = write_module(tmp_path, "src/repro/machine/widget.py", self.CONSUMER)
        found = lint_file(path, tmp_path)
        assert rule_ids(found) == ["REPO006"]
        assert "declare_counters" in found[0].message
        assert "PROGINF" in found[0].message

    DECLARES = """
    from repro.perfmon.counters import declare_counters

    declare_counters("widget", ("ops",))
    """

    DECLARES_VIA_ATTRIBUTE = """
    from repro.perfmon import counters

    counters.declare_counters("widget", ("ops",))
    """

    def test_component_with_declaration_is_clean(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/machine/widget.py",
            self.CONSUMER + self.DECLARES,
        )
        assert lint_file(path, tmp_path) == []

    def test_attribute_call_form_counts(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/machine/widget.py",
            self.CONSUMER + self.DECLARES_VIA_ATTRIBUTE,
        )
        assert lint_file(path, tmp_path) == []

    def test_scalar_op_reference_also_triggers(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/machine/scalarish.py",
            "def cost(op):\n    return operations.ScalarOp is type(op)\n",
        )
        assert rule_ids(lint_file(path, tmp_path)) == ["REPO006"]

    def test_outside_machine_package_is_out_of_scope(self, tmp_path):
        path = write_module(tmp_path, "src/repro/analysis/widget.py", self.CONSUMER)
        assert "REPO006" not in rule_ids(lint_file(path, tmp_path))

    def test_operations_module_itself_is_exempt(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/machine/operations.py",
            "class VectorOp:\n    pass\n",
        )
        assert "REPO006" not in rule_ids(lint_file(path, tmp_path))

    def test_module_exempt_pragma(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/machine/widget.py",
            """
            # repolint: exempt=REPO006 -- pass-through, counters live elsewhere
            from repro.machine.operations import VectorOp


            def time_op(op: VectorOp) -> float:
                return 0.0
            """,
        )
        assert lint_file(path, tmp_path) == []

    def test_component_not_touching_ops_is_clean(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/machine/inert.py",
            "def helper(x):\n    return x + 1\n",
        )
        assert lint_file(path, tmp_path) == []


class TestBatchSiblingContract:
    """REPO007: every ``<name>_batch`` method needs a per-op ``<name>``."""

    ORPHAN = """
    class Widget:
        def transfer_cycles_batch(self, columns):
            return columns
    """

    PAIRED = """
    class Widget:
        def transfer_cycles(self, op):
            return 0.0

        def transfer_cycles_batch(self, columns):
            return columns
    """

    def test_orphan_batched_method_flagged(self, tmp_path):
        path = write_module(tmp_path, "src/repro/machine/widget.py", self.ORPHAN)
        found = [d for d in lint_file(path, tmp_path) if d.rule_id == "REPO007"]
        assert len(found) == 1
        assert "transfer_cycles_batch" in found[0].message
        assert "'transfer_cycles'" in found[0].message

    def test_paired_batched_method_is_clean(self, tmp_path):
        path = write_module(tmp_path, "src/repro/machine/widget.py", self.PAIRED)
        assert "REPO007" not in rule_ids(lint_file(path, tmp_path))

    def test_sibling_must_be_on_the_same_class(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/machine/widget.py",
            """
            class Reference:
                def transfer_cycles(self, op):
                    return 0.0

            class Widget:
                def transfer_cycles_batch(self, columns):
                    return columns
            """,
        )
        assert "REPO007" in rule_ids(lint_file(path, tmp_path))

    def test_private_batched_helpers_exempt(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/machine/widget.py",
            """
            class Widget:
                def _combine_batch(self, columns):
                    return columns
            """,
        )
        assert "REPO007" not in rule_ids(lint_file(path, tmp_path))

    def test_applies_across_src_not_just_machine(self, tmp_path):
        path = write_module(tmp_path, "src/repro/analysis/widget.py", self.ORPHAN)
        assert "REPO007" in rule_ids(lint_file(path, tmp_path))

    def test_module_level_functions_out_of_scope(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/analysis/widget.py",
            "def helper_batch(columns):\n    return columns\n",
        )
        assert "REPO007" not in rule_ids(lint_file(path, tmp_path))


class TestGridSiblingContract:
    """REPO009: every ``<name>_cycles_grid`` needs a ``<name>_cycles_batch``."""

    ORPHAN = """
    class Widget:
        def transfer_cycles_grid(self, columns):
            return columns
    """

    PAIRED = """
    class Widget:
        def transfer_cycles(self, op):
            return 0.0

        def transfer_cycles_batch(self, columns):
            return columns

        def transfer_cycles_grid(self, columns):
            return columns
    """

    def test_orphan_grid_method_flagged(self, tmp_path):
        path = write_module(tmp_path, "src/repro/machine/widget.py", self.ORPHAN)
        found = [d for d in lint_file(path, tmp_path) if d.rule_id == "REPO009"]
        assert len(found) == 1
        assert "transfer_cycles_grid" in found[0].message
        assert "'transfer_cycles_batch'" in found[0].message

    def test_paired_grid_method_is_clean(self, tmp_path):
        path = write_module(tmp_path, "src/repro/machine/widget.py", self.PAIRED)
        assert "REPO009" not in rule_ids(lint_file(path, tmp_path))

    def test_batch_sibling_without_per_op_still_trips_repo007(self, tmp_path):
        # The chain is grid -> batch (REPO009) -> per-op (REPO007):
        # pairing the grid method only moves the violation down a level.
        path = write_module(
            tmp_path,
            "src/repro/machine/widget.py",
            """
            class Widget:
                def transfer_cycles_batch(self, columns):
                    return columns

                def transfer_cycles_grid(self, columns):
                    return columns
            """,
        )
        ids = rule_ids(lint_file(path, tmp_path))
        assert "REPO009" not in ids
        assert "REPO007" in ids

    def test_sibling_must_be_on_the_same_class(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/machine/widget.py",
            """
            class Reference:
                def transfer_cycles(self, op):
                    return 0.0

                def transfer_cycles_batch(self, columns):
                    return columns

            class Widget:
                def transfer_cycles_grid(self, columns):
                    return columns
            """,
        )
        assert "REPO009" in rule_ids(lint_file(path, tmp_path))

    def test_private_grid_kernels_exempt(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/machine/widget.py",
            """
            class Widget:
                def _transfer_cycles_grid(self, columns):
                    return columns
            """,
        )
        assert "REPO009" not in rule_ids(lint_file(path, tmp_path))

    def test_non_cycles_grid_methods_out_of_scope(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/machine/widget.py",
            """
            class Widget:
                def build_grid(self, columns):
                    return columns
            """,
        )
        assert "REPO009" not in rule_ids(lint_file(path, tmp_path))

    def test_applies_across_src_not_just_machine(self, tmp_path):
        path = write_module(tmp_path, "src/repro/explore/widget.py", self.ORPHAN)
        assert "REPO009" in rule_ids(lint_file(path, tmp_path))

    def test_module_level_functions_out_of_scope(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/explore/widget.py",
            "def helper_cycles_grid(columns):\n    return columns\n",
        )
        assert "REPO009" not in rule_ids(lint_file(path, tmp_path))


class TestFaultSiteRegistry:
    """REPO008: fault_point call sites name a registered site, literally."""

    def test_registered_literal_site_is_clean(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/engine/hooks.py",
            'action = fault_point("executor_job", injector, exp_id)\n',
        )
        assert lint_file(path, tmp_path) == []

    def test_unregistered_site_is_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/engine/hooks.py",
            'action = fault_point("warp_core", injector, exp_id)\n',
        )
        found = lint_file(path, tmp_path)
        assert rule_ids(found) == ["REPO008"]
        assert "warp_core" in found[0].message
        assert "FAULT_SITES" in found[0].message

    def test_non_literal_site_is_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/engine/hooks.py",
            "action = fault_point(site_variable, injector, exp_id)\n",
        )
        found = lint_file(path, tmp_path)
        assert rule_ids(found) == ["REPO008"]
        assert "string literal" in found[0].message

    def test_site_keyword_form_is_checked_too(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/engine/hooks.py",
            'action = fault_point(site="warp_core", injector=i, exp_id=e)\n',
        )
        assert rule_ids(lint_file(path, tmp_path)) == ["REPO008"]

    def test_attribute_call_form_counts(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/engine/hooks.py",
            'action = inject.fault_point("warp_core", injector, exp_id)\n',
        )
        assert rule_ids(lint_file(path, tmp_path)) == ["REPO008"]

    def test_tests_are_out_of_scope(self, tmp_path):
        path = write_module(
            tmp_path,
            "tests/test_hooks.py",
            'action = fault_point("warp_core", injector, exp_id)\n',
        )
        assert lint_file(path, tmp_path) == []


class TestExitCodeContract:
    """REPO010: CLI entry modules keep to the 0/1/2 exit contract."""

    def test_literal_code_outside_contract_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/widget/cli.py",
            """
            import sys

            def main():
                sys.exit(7)
            """,
        )
        found = lint_file(path, tmp_path)
        assert rule_ids(found) == ["REPO010"]
        assert "literal code 7" in found[0].message

    def test_contract_codes_pass(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/widget/cli.py",
            """
            import sys

            def main(ok):
                if ok:
                    sys.exit(0)
                sys.exit(1)
            """,
        )
        assert lint_file(path, tmp_path) == []

    def test_raise_systemexit_literal_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/widget/__main__.py",
            "raise SystemExit(9)\n",
        )
        assert rule_ids(lint_file(path, tmp_path)) == ["REPO010"]

    def test_named_code_map_is_the_sanctioned_escape(self, tmp_path):
        # engine run's 3/4/5 failure kinds flow through a named map —
        # non-literal exit arguments are out of scope by design.
        path = write_module(
            tmp_path,
            "src/repro/widget/cli.py",
            """
            import sys

            FAILURE_EXIT_CODES = {"error": 3, "crash": 4}

            def main(kind):
                sys.exit(FAILURE_EXIT_CODES[kind])
            """,
        )
        assert lint_file(path, tmp_path) == []

    def test_main_defining_module_is_in_scope(self, tmp_path):
        # Not named cli.py, but it exposes main(): still an entry point.
        path = write_module(
            tmp_path,
            "src/repro/widget/tool.py",
            """
            import sys

            def main():
                sys.exit(42)
            """,
        )
        assert rule_ids(lint_file(path, tmp_path)) == ["REPO010"]

    def test_non_cli_module_out_of_scope(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/widget/lib.py",
            """
            import sys

            def helper():
                sys.exit(42)
            """,
        )
        assert lint_file(path, tmp_path) == []

    def test_tests_are_out_of_scope(self, tmp_path):
        path = write_module(
            tmp_path,
            "tests/cli.py",
            "import sys\n\n\ndef main():\n    sys.exit(42)\n",
        )
        assert lint_file(path, tmp_path) == []

    def test_raise_systemexit_main_result_passes(self, tmp_path):
        # The ubiquitous __main__ idiom: the code is main's return
        # value, not a literal — out of scope.
        path = write_module(
            tmp_path,
            "src/repro/widget/__main__.py",
            """
            from repro.widget.cli import main

            raise SystemExit(main())
            """,
        )
        assert lint_file(path, tmp_path) == []

    def test_skip_pragma_suppresses(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/widget/cli.py",
            """
            import sys

            def main():
                sys.exit(77)  # repolint: skip
            """,
        )
        assert lint_file(path, tmp_path) == []


class TestSegmentSafety:
    """REPO011: public ``*_cycles_batch`` kernels are segment-safe."""

    def lint(self, tmp_path, body):
        path = write_module(tmp_path, "src/repro/machine/widget.py", body)
        return [d for d in lint_file(path, tmp_path) if d.rule_id == "REPO011"]

    ELEMENTWISE = """
    class Widget:
        def transfer_cycles(self, op):
            return 0.0

        def transfer_cycles_batch(self, v):
            return v.loads * v.length / self.width
    """

    def test_elementwise_kernel_is_clean(self, tmp_path):
        assert self.lint(tmp_path, self.ELEMENTWISE) == []

    def test_while_loop_flagged(self, tmp_path):
        found = self.lint(
            tmp_path,
            """
            class Widget:
                def transfer_cycles(self, op):
                    return 0.0

                def transfer_cycles_batch(self, v):
                    i = 0
                    while i < 10:
                        i += 1
                    return v.loads
            """,
        )
        assert len(found) == 1
        assert "while loop" in found[0].message

    def test_loop_over_a_column_argument_flagged(self, tmp_path):
        found = self.lint(
            tmp_path,
            """
            class Widget:
                def transfer_cycles(self, op):
                    return 0.0

                def transfer_cycles_batch(self, v):
                    total = 0.0
                    for row in v.length:
                        total += row
                    return total
            """,
        )
        assert len(found) == 1
        assert "loops over data rows" in found[0].message

    def test_intrinsic_vocabulary_loop_allowed(self, tmp_path):
        assert self.lint(
            tmp_path,
            """
            INTRINSICS = frozenset({"exp", "sqrt"})

            class Widget:
                def transfer_cycles(self, op):
                    return 0.0

                def transfer_cycles_batch(self, v):
                    cycles = v.length * 0.0
                    for column, name in enumerate(sorted(INTRINSICS)):
                        cycles = cycles + v.intrinsics[:, column]
                    return cycles
            """,
        ) == []

    def test_np_unique_loop_allowed(self, tmp_path):
        assert self.lint(
            tmp_path,
            """
            import numpy as np

            class Widget:
                def transfer_cycles(self, op):
                    return 0.0

                def transfer_cycles_batch(self, v):
                    unique, inverse = np.unique(v.load_stride, return_inverse=True)
                    factors = np.array([float(s) for s in unique])
                    return factors[inverse]
            """,
        ) == []

    def test_comprehension_over_column_flagged(self, tmp_path):
        found = self.lint(
            tmp_path,
            """
            class Widget:
                def transfer_cycles(self, op):
                    return 0.0

                def transfer_cycles_batch(self, v):
                    return sum(x for x in v.length)
            """,
        )
        assert len(found) == 1
        assert "comprehension" in found[0].message

    def test_item_and_tolist_scalarisation_flagged(self, tmp_path):
        found = self.lint(
            tmp_path,
            """
            class Widget:
                def transfer_cycles(self, op):
                    return 0.0

                def transfer_cycles_batch(self, v):
                    first = v.length.item()
                    rest = v.loads.tolist()
                    return first + rest[0]
            """,
        )
        assert len(found) == 2
        assert ".item()" in found[0].message
        assert ".tolist()" in found[1].message

    def test_float_of_column_argument_flagged(self, tmp_path):
        found = self.lint(
            tmp_path,
            """
            class Widget:
                def transfer_cycles(self, op):
                    return 0.0

                def transfer_cycles_batch(self, v):
                    return float(v.length) * self.width
            """,
        )
        assert len(found) == 1
        assert "float()" in found[0].message

    def test_float_of_machine_scalar_allowed(self, tmp_path):
        # float(self.<attr>) scalarises machine configuration, not
        # stacked columns — the vector_unit kernel relies on this.
        assert self.lint(
            tmp_path,
            """
            import numpy as np

            class Widget:
                def transfer_cycles(self, op):
                    return 0.0

                def transfer_cycles_batch(self, v):
                    sets = np.minimum(float(self.concurrent_sets), v.flops)
                    return v.length * sets
            """,
        ) == []

    def test_private_batch_helpers_out_of_scope(self, tmp_path):
        # stride_factor_batch-style helpers (not *_cycles_batch) and
        # private methods may loop; they are plumbing behind the API.
        assert self.lint(
            tmp_path,
            """
            class Widget:
                def stride_factor_batch(self, strides):
                    return [int(s) for s in strides]

                def _transfer_cycles_batch(self, v):
                    return [row for row in v.length]
            """,
        ) == []

    def test_skip_pragma_suppresses(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/machine/widget.py",
            """
            class Widget:
                def transfer_cycles(self, op):
                    return 0.0

                def transfer_cycles_batch(self, v):
                    return float(v.length)  # repolint: skip
            """,
        )
        assert "REPO011" not in rule_ids(lint_file(path, tmp_path))

    def test_out_of_src_not_checked(self, tmp_path):
        path = write_module(
            tmp_path,
            "tests/widget.py",
            """
            class Widget:
                def transfer_cycles_batch(self, v):
                    return float(v.length)
            """,
        )
        assert "REPO011" not in rule_ids(lint_file(path, tmp_path))


def test_syntax_error_is_repo000(tmp_path):
    path = write_module(tmp_path, "src/repro/suite/broken.py", "def oops(:\n")
    found = lint_file(path, tmp_path)
    assert rule_ids(found) == ["REPO000"]


def test_lint_repo_walks_and_aggregates(tmp_path):
    write_module(tmp_path, "src/repro/kernels/bad.py", "def helper():\n    pass\n")
    write_module(tmp_path, "tests/test_ok.py", "def test_x():\n    assert True\n")
    report = lint_repo(tmp_path)
    assert rule_ids(report.diagnostics) == ["REPO001"]


class TestSwallowedTimeouts:
    def test_silent_oserror_pass_is_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/service/bad.py",
            """
            def poke(sock):
                try:
                    sock.send(b"x")
                except OSError:
                    pass
            """,
        )
        found = lint_file(path, tmp_path)
        assert rule_ids(found) == ["REPO012"]
        assert "OSError" in found[0].message

    def test_timeout_family_tuple_is_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/service/bad2.py",
            """
            def poke(sock):
                try:
                    sock.send(b"x")
                except (TimeoutError, ConnectionResetError):
                    return None
            """,
        )
        assert rule_ids(lint_file(path, tmp_path)) == ["REPO012"]

    def test_reraise_complies(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/service/good.py",
            """
            def poke(sock, attempts):
                try:
                    sock.send(b"x")
                except OSError:
                    if attempts > 3:
                        raise
            """,
        )
        assert lint_file(path, tmp_path) == []

    def test_logging_or_counting_complies(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/service/good2.py",
            """
            def poke(app, sock):
                try:
                    sock.send(b"x")
                except ConnectionError:
                    app.note_client_disconnect()
                try:
                    sock.recv(1)
                except TimeoutError as exc:
                    print(f"timed out: {exc}")
            """,
        )
        assert lint_file(path, tmp_path) == []

    def test_broad_handlers_are_out_of_scope(self, tmp_path):
        """Bare/Exception handlers are catch-all boundaries, not REPO012."""
        path = write_module(
            tmp_path,
            "src/repro/service/fence.py",
            """
            def handle(app):
                try:
                    app.dispatch()
                except Exception:
                    return None
            """,
        )
        assert lint_file(path, tmp_path) == []

    def test_rule_only_applies_to_service_modules(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/analysis/elsewhere.py",
            """
            def poke(sock):
                try:
                    sock.send(b"x")
                except OSError:
                    pass
            """,
        )
        assert lint_file(path, tmp_path) == []

    def test_exempt_pragma_escapes(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/service/escaped.py",
            """
            # repolint: exempt=REPO012 -- probing a socket that may be gone
            def poke(sock):
                try:
                    sock.send(b"x")
                except OSError:
                    pass
            """,
        )
        assert lint_file(path, tmp_path) == []


def test_repo_is_clean_at_head():
    """The CI gate: the repository's own invariants all hold."""
    report = lint_repo(repo_root())
    assert report.clean, "\n".join(str(d) for d in report)


def test_repo_root_points_at_the_checkout():
    root = repo_root()
    assert (root / "src" / "repro").is_dir()
    assert (root / "tests").is_dir()
