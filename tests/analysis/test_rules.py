"""Per-rule tests: one positive and one negative trace for each VEC rule.

Synthetic traces are built directly from operation descriptors so each
test isolates exactly the coding style its rule is meant to catch, priced
against the calibrated SX-4 model.
"""

import pytest

from repro.analysis import analyze_trace
from repro.analysis.rules import (
    SCALAR_FRACTION_THRESHOLD,
    rule_vec001_short_vectors,
    rule_vec002_bank_conflict_stride,
    rule_vec003_gather_dominated,
    rule_vec004_scalar_dominated,
    rule_vec005_low_intensity,
    rule_vec006_intrinsic_heavy,
)
from repro.machine.operations import ScalarOp, Trace, VectorOp
from repro.machine.presets import sx4_processor


@pytest.fixture(scope="module")
def sx4():
    return sx4_processor()


def _long_vector(flops=4.0, **kwargs):
    """A loop the rules should all accept: long, unit stride, flop-rich."""
    kwargs.setdefault("loads_per_element", 1.0)
    kwargs.setdefault("stores_per_element", 1.0)
    return VectorOp("good loop", length=65536, flops_per_element=flops, **kwargs)


class TestVec001ShortVectors:
    def test_fires_below_half_performance_length(self, sx4):
        n_half = sx4.vector.half_performance_length
        trace = Trace([VectorOp("short", length=n_half - 1, flops_per_element=2.0)])
        found = rule_vec001_short_vectors(trace, sx4)
        assert len(found) == 1
        assert found[0].rule_id == "VEC001"
        assert found[0].predicted_impact > 1.0
        assert str(n_half) in found[0].message

    def test_silent_at_asymptotic_length(self, sx4):
        trace = Trace([_long_vector()])
        assert rule_vec001_short_vectors(trace, sx4) == []


class TestVec002BankConflicts:
    def test_fires_on_power_of_two_stride(self, sx4):
        trace = Trace([_long_vector(load_stride=512)])
        found = rule_vec002_bank_conflict_stride(trace, sx4)
        assert len(found) == 1
        # Stride 512 on 1024 two-cycle banks: the modelled 8x slowdown.
        assert found[0].predicted_impact == pytest.approx(8.0)

    def test_silent_at_unit_and_guaranteed_strides(self, sx4):
        for stride in (1, 2):
            trace = Trace([_long_vector(load_stride=stride, store_stride=stride)])
            assert rule_vec002_bank_conflict_stride(trace, sx4) == []

    def test_ignores_stride_on_idle_path(self, sx4):
        # A bad store stride with zero stores moves nothing: no finding.
        trace = Trace([_long_vector(stores_per_element=0.0, store_stride=512)])
        assert rule_vec002_bank_conflict_stride(trace, sx4) == []


class TestVec003GatherDominated:
    def test_fires_when_indexed_words_dominate(self, sx4):
        trace = Trace(
            [
                _long_vector(
                    loads_per_element=0.0, gather_loads_per_element=1.0
                )
            ]
        )
        found = rule_vec003_gather_dominated(trace, sx4)
        assert len(found) == 1
        assert found[0].predicted_impact > 1.0

    def test_silent_when_sequential_words_dominate(self, sx4):
        trace = Trace([_long_vector(gather_loads_per_element=0.5)])
        assert rule_vec003_gather_dominated(trace, sx4) == []


class TestVec004ScalarDominated:
    def test_fires_past_the_amdahl_threshold(self, sx4):
        trace = Trace(
            [_long_vector(), ScalarOp("bookkeeping", instructions=1e7)]
        )
        found = rule_vec004_scalar_dominated(trace, sx4)
        assert len(found) == 1
        assert found[0].predicted_impact > 1.0 / (1.0 - SCALAR_FRACTION_THRESHOLD)

    def test_all_scalar_trace_has_unquantified_impact(self, sx4):
        trace = Trace([ScalarOp("recursion", instructions=1e6)])
        found = rule_vec004_scalar_dominated(trace, sx4)
        assert len(found) == 1
        assert found[0].predicted_impact is None  # no 'inf' factors

    def test_silent_when_vector_work_dominates(self, sx4):
        trace = Trace([_long_vector(), ScalarOp("loop setup", instructions=8.0)])
        assert rule_vec004_scalar_dominated(trace, sx4) == []


class TestVec005LowIntensity:
    def test_fires_below_machine_balance(self, sx4):
        # 0.5 flops over 2 words = 0.25 flops/word against a 1.0 balance.
        trace = Trace([_long_vector(flops=0.5)])
        found = rule_vec005_low_intensity(trace, sx4)
        assert len(found) == 1
        assert found[0].predicted_impact == pytest.approx(4.0)

    def test_zero_flop_trace_has_unquantified_impact(self, sx4):
        trace = Trace([_long_vector(flops=0.0)])
        found = rule_vec005_low_intensity(trace, sx4)
        assert len(found) == 1
        assert found[0].predicted_impact is None

    def test_silent_at_or_above_balance(self, sx4):
        trace = Trace([_long_vector(flops=8.0)])
        assert rule_vec005_low_intensity(trace, sx4) == []


class TestVec006IntrinsicHeavy:
    def test_fires_on_radabs_style_mix(self, sx4):
        trace = Trace(
            [_long_vector(flops=0.5, intrinsic_calls=(("exp", 1.0),))]
        )
        found = rule_vec006_intrinsic_heavy(trace, sx4)
        assert len(found) == 1
        assert "exp" in found[0].message

    def test_silent_when_genuine_flops_dominate(self, sx4):
        trace = Trace(
            [_long_vector(flops=8.0, intrinsic_calls=(("div", 0.1),))]
        )
        assert rule_vec006_intrinsic_heavy(trace, sx4) == []


def test_well_styled_trace_is_fully_clean(sx4):
    """A long unit-stride flop-rich loop trips none of the six rules."""
    report = analyze_trace(Trace([_long_vector(flops=8.0)]), sx4)
    assert report.clean
