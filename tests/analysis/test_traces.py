"""Tests for the trace-analyzer registry and suite integration."""

import pytest

from repro.analysis.traces import (
    EXPERIMENT_TRACE_IDS,
    MAX_FINDINGS_PER_RULE,
    TRACE_BUILDERS,
    analyze_benchmark,
    analyze_trace,
    build_registered_trace,
    experiment_summaries,
)
from repro.machine.operations import Trace, VectorOp
from repro.machine.presets import sun_sparc20, sx4_processor
from repro.suite.experiments import EXPERIMENTS


@pytest.fixture(scope="module")
def sx4():
    return sx4_processor()


class TestRegistry:
    @pytest.mark.parametrize("trace_id", sorted(TRACE_BUILDERS))
    def test_every_id_builds_and_analyzes(self, trace_id, sx4):
        trace = build_registered_trace(trace_id)
        assert isinstance(trace, Trace)
        assert len(trace) > 0
        report = analyze_benchmark(trace_id, sx4)
        assert report.subject == trace.name

    def test_unknown_id_is_a_key_error(self):
        with pytest.raises(KeyError, match="unknown benchmark id"):
            build_registered_trace("no-such-benchmark")

    def test_descriptions_are_non_empty(self):
        for trace_id, (description, _) in TRACE_BUILDERS.items():
            assert description.strip(), trace_id


class TestRadabsContrast:
    """The PR's acceptance criterion: Section 4.4 before/after, as lint."""

    def test_vectorized_radabs_is_clean(self, sx4):
        assert analyze_benchmark("radabs", sx4).clean

    def test_scalar_radabs_is_diagnosed(self, sx4):
        report = analyze_benchmark("radabs-scalar", sx4)
        rules = {d.rule_id for d in report}
        assert "VEC004" in rules  # scalar-dominated: the paper's rule broken
        assert "VEC001" in rules  # short inner loops
        worst = max(d.predicted_impact or 0.0 for d in report)
        assert worst > 2.0  # the rewrite bought a multiple, not a percent


class TestAggregation:
    def test_rule_floods_collapse_to_one_finding(self, sx4):
        ops = [
            VectorOp(f"short {i}", length=16, flops_per_element=2.0,
                     loads_per_element=1.0)
            for i in range(MAX_FINDINGS_PER_RULE + 2)
        ]
        report = analyze_trace(Trace(ops, name="flood"), sx4)
        vec001 = report.by_rule("VEC001")
        assert len(vec001) == 1
        assert f"[{len(ops)} ops" in vec001[0].message
        assert vec001[0].location == f"ops[0..{len(ops) - 1}]"

    def test_few_findings_stay_individual(self, sx4):
        ops = [
            VectorOp(f"short {i}", length=16, flops_per_element=2.0,
                     loads_per_element=1.0)
            for i in range(MAX_FINDINGS_PER_RULE)
        ]
        report = analyze_trace(Trace(ops, name="sparse"), sx4)
        assert len(report.by_rule("VEC001")) == MAX_FINDINGS_PER_RULE


def test_analysis_requires_a_vector_machine():
    trace = Trace([VectorOp("v", length=1024, flops_per_element=1.0)])
    with pytest.raises(ValueError, match="vector machine"):
        analyze_trace(trace, sun_sparc20())


class TestSuiteIntegration:
    def test_experiment_ids_exist_in_the_suite(self):
        assert set(EXPERIMENT_TRACE_IDS) <= set(EXPERIMENTS)

    def test_experiment_traces_exist_in_the_registry(self):
        for exp_id, trace_ids in EXPERIMENT_TRACE_IDS.items():
            assert set(trace_ids) <= set(TRACE_BUILDERS), exp_id

    def test_sec44_summarises_both_coding_styles(self, sx4):
        pairs = experiment_summaries("sec4.4", sx4)
        assert [trace_id for trace_id, _ in pairs] == ["radabs-scalar", "radabs"]
        scalar_report, vector_report = pairs[0][1], pairs[1][1]
        assert not scalar_report.clean
        assert vector_report.clean

    def test_traceless_experiment_has_no_summaries(self, sx4):
        assert experiment_summaries("sec2", sx4) == []
