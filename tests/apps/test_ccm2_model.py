"""Tests for the coupled CCM2 model loop and its cost model."""

import numpy as np
import pytest

from repro.apps.ccm2 import costmodel
from repro.apps.ccm2.gaussian import GaussianGrid
from repro.apps.ccm2.model import CCM2Model
from repro.apps.ccm2.resolutions import RESOLUTIONS, resolution
from repro.machine.presets import sx4_node


@pytest.fixture(scope="module")
def model():
    return CCM2Model(GaussianGrid(32, 64), trunc=21, nlev=4)


class TestModelLoop:
    def test_steps_produce_healthy_diagnostics(self, model):
        for diag in model.run(6):
            assert diag.healthy, diag

    def test_mass_conserved_without_physics(self):
        m = CCM2Model(GaussianGrid(32, 64), trunc=21, nlev=4,
                      physics_coupling=0.0)
        first = m.step()
        last = m.run(5)[-1]
        assert last.mass == pytest.approx(first.mass, rel=1e-12)

    def test_moisture_stays_nonnegative_and_bounded(self, model):
        lo, hi = model.moisture.min(), model.moisture.max()
        model.run(4)
        # The shape-preserving SLT cannot create new extrema; physics
        # does not touch moisture.
        assert model.moisture.min() >= lo - 1e-10
        assert model.moisture.max() <= hi + 1e-10

    def test_radiation_cycle(self):
        m = CCM2Model(GaussianGrid(32, 64), trunc=21, nlev=4, radiation_every=2)
        m.run(4)
        # Heating was computed (steps 0 and 2) and applied.
        assert m._heating is not None
        assert m.diagnostics[-1].heating_max > 0

    def test_history_accumulation_and_flush(self, model):
        before = model.history_samples
        model.run(3)
        assert model.history_samples == before + 3
        mean = model.flush_history()
        assert mean.shape == model.grid.shape
        assert model.history_samples == 0
        with pytest.raises(ValueError):
            model.flush_history()

    def test_validation(self):
        grid = GaussianGrid(32, 64)
        with pytest.raises(ValueError):
            CCM2Model(grid, trunc=21, nlev=1)
        with pytest.raises(ValueError):
            CCM2Model(grid, trunc=21, dt=-5.0)
        with pytest.raises(ValueError):
            CCM2Model(grid, trunc=21, dt=5000.0)  # beyond the CFL guard
        with pytest.raises(ValueError):
            CCM2Model(grid, trunc=21, radiation_every=0)
        with pytest.raises(ValueError):
            CCM2Model(grid, trunc=21).run(-1)


class TestResolutions:
    def test_table4_contents(self):
        """Table 4 verbatim."""
        expected = {
            "T42L18": ("64 x 128", 2.8125, 20.0),
            "T63L18": ("96 x 192", 1.875, 12.0),
            "T85L18": ("128 x 256", 1.40625, 10.0),
            "T106L18": ("160 x 320", 1.125, 7.5),
            "T170L18": ("256 x 512", 0.703125, 5.0),
        }
        assert set(RESOLUTIONS) == set(expected)
        for name, (grid_label, spacing, step) in expected.items():
            res = RESOLUTIONS[name]
            assert res.horizontal_grid_label == grid_label
            assert res.grid_spacing_degrees == pytest.approx(spacing)
            assert res.timestep_minutes == step

    def test_nominal_spacings_match_paper_rounding(self):
        """The paper rounds to one decimal: 2.8, 2.1(T63: 1.9 vs paper
        2.1 — the paper quotes great-circle spacing), 1.4, 1.1, 0.7."""
        assert round(resolution("T42").grid_spacing_degrees, 1) == 2.8
        assert round(resolution("T85").grid_spacing_degrees, 1) == 1.4
        assert round(resolution("T106").grid_spacing_degrees, 1) == 1.1
        assert round(resolution("T170").grid_spacing_degrees, 1) == 0.7

    def test_steps_per_day(self):
        assert resolution("T42L18").steps_per_day == 72
        assert resolution("T170L18").steps_per_day == 288
        assert resolution("T42L18").steps_for_days(365) == 26280

    def test_lookup_with_and_without_levels(self):
        assert resolution("T42") is resolution("T42L18")
        with pytest.raises(KeyError):
            resolution("T31")

    def test_spectral_count(self):
        assert resolution("T42").nspec == 43 * 44 // 2


class TestCostModel:
    @pytest.fixture(scope="class")
    def node(self):
        return sx4_node()

    def test_figure8_t170_anchor(self, node):
        """T170L18 on 32 CPUs sustains ≈24 Cray-equivalent Gflops."""
        gf = costmodel.figure8_point(node, "T170L18", 32)
        assert gf == pytest.approx(24.0, rel=0.12)

    def test_figure8_resolution_ordering(self, node):
        """Longer vectors run more efficiently at every CPU count."""
        for cpus in (1, 8, 32):
            g42 = costmodel.figure8_point(node, "T42L18", cpus)
            g106 = costmodel.figure8_point(node, "T106L18", cpus)
            g170 = costmodel.figure8_point(node, "T170L18", cpus)
            assert g42 < g106 < g170

    def test_figure8_scaling_sublinear_but_real(self, node):
        for res in ("T42L18", "T170L18"):
            g1 = costmodel.figure8_point(node, res, 1)
            g32 = costmodel.figure8_point(node, res, 32)
            assert 8.0 < g32 / g1 < 32.0

    def test_small_resolution_scales_worst(self, node):
        """T42's 43 wavenumbers on 32 CPUs leave half the machine idle
        part of the time; its parallel efficiency must be the lowest."""

        def efficiency(res):
            g1 = costmodel.figure8_point(node, res, 1)
            g32 = costmodel.figure8_point(node, res, 32)
            return g32 / (32 * g1)

        assert efficiency("T42L18") < efficiency("T106L18") <= efficiency("T170L18") + 0.02

    def test_figure8_curves_structure(self, node):
        curves = costmodel.figure8_curves(node, cpu_counts=(1, 32))
        assert set(curves) == {"T42L18", "T106L18", "T170L18"}
        for pts in curves.values():
            assert len(pts) == 2 and pts[0][1] < pts[1][1]

    def test_year_simulation_ratio(self, node):
        """Table 5's shape: the T63 year costs ≈2.6x the T42 year."""
        y42 = costmodel.year_simulation_seconds(node, "T42L18")
        y63 = costmodel.year_simulation_seconds(node, "T63L18")
        assert y63["total_seconds"] / y42["total_seconds"] == pytest.approx(2.60, rel=0.15)

    def test_year_simulation_history_volume(self, node):
        """'Approximately 15GB of model data and restart information were
        written during the T63L18 test.'"""
        y63 = costmodel.year_simulation_seconds(node, "T63L18")
        assert y63["io_bytes"] == pytest.approx(15e9, rel=0.15)

    def test_ensemble_degradation_anchor(self, node):
        """Table 6: 'The relative degradation of the job is only 1.89%.'"""
        result = costmodel.ensemble_degradation(node)
        assert 0.005 < result["degradation"] < 0.04
        assert result["degradation"] == pytest.approx(0.0189, rel=0.35)

    def test_ensemble_oversubscription_rejected(self, node):
        with pytest.raises(ValueError):
            costmodel.ensemble_degradation(node, cpus_per_job=8, jobs=8)

    def test_parallel_step_conserves_total_flops(self, node):
        """Imbalance affects wall time, never the accounted work."""
        one = costmodel.parallel_step(node, "T42L18", 1)
        many = costmodel.parallel_step(node, "T42L18", 29)  # awkward divisor
        assert many.flop_equivalents == pytest.approx(one.flop_equivalents, rel=0.01)

    def test_step_trace_validation(self, node):
        with pytest.raises(ValueError):
            costmodel.parallel_step(node, "T42L18", 0)
        with pytest.raises(ValueError):
            costmodel.year_simulation_seconds(node, "T42L18", days=0)


class TestMultiNodeExtension:
    """CCM2 across IXS-connected nodes (the Section 2.5 architecture,
    exercised beyond the paper's single-node runs)."""

    @pytest.fixture(scope="class")
    def system(self):
        from repro.machine.ixs import MultiNodeSystem

        return MultiNodeSystem(node=sx4_node(), node_count=16)

    def test_scaling_monotone(self, system):
        points = costmodel.multinode_scaling(system, "T170L18")
        values = [g for _, g in points]
        assert values == sorted(values)

    def test_single_node_matches_figure8(self, system):
        g_multi = costmodel.multinode_gflops(system, "T170L18", nodes=1)
        g_fig8 = costmodel.figure8_point(system.node, "T170L18", 32)
        assert g_multi == pytest.approx(g_fig8, rel=1e-9)

    def test_small_problems_saturate_first(self, system):
        """The IXS latency bound: T42's 16-node efficiency is well below
        T170's — the multi-node machine wants big problems too."""

        def efficiency(res):
            pts = dict(costmodel.multinode_scaling(system, res))
            return pts[16] / (16 * pts[1])

        assert efficiency("T42L18") < efficiency("T170L18") - 0.05

    def test_t170_supercomputer_rates(self, system):
        """A full 16-node SX-4/512 sustains hundreds of Gflops on T170."""
        g16 = costmodel.multinode_gflops(system, "T170L18", nodes=16)
        assert 200.0 < g16 < 16 * 32 * 2.0  # below aggregate peak

    def test_node_count_bounds(self, system):
        with pytest.raises(ValueError):
            costmodel.multinode_gflops(system, "T42L18", nodes=0)
        with pytest.raises(ValueError):
            costmodel.multinode_gflops(system, "T42L18", nodes=17)


class TestMultiLayerDynamics:
    """The 'L' dimension made real: stacked shallow-water layers."""

    def test_layers_run_healthily(self):
        model = CCM2Model(GaussianGrid(32, 64), trunc=21, nlev=4, dyn_layers=3)
        for diag in model.run(4):
            assert diag.healthy, diag
        assert len(model.layer_states) == 3

    def test_layers_start_distinct_and_stay_distinct(self):
        model = CCM2Model(GaussianGrid(32, 64), trunc=21, nlev=4, dyn_layers=3)
        model.run(3)
        phis = [s.phi for s in model.layer_states]
        assert not np.array_equal(phis[0], phis[1])
        assert not np.array_equal(phis[1], phis[2])

    def test_single_layer_is_the_default(self):
        model = CCM2Model(GaussianGrid(32, 64), trunc=21, nlev=4)
        assert model.dyn_layers == 1
        assert model.layer_states[0] is model.state

    def test_mass_conserved_per_layer_without_physics(self):
        model = CCM2Model(GaussianGrid(32, 64), trunc=21, nlev=4,
                          dyn_layers=2, physics_coupling=0.0)
        before = [model.dynamics.total_mass(s) for s in model.layer_states]
        model.run(4)
        after = [model.dynamics.total_mass(s) for s in model.layer_states]
        assert after == pytest.approx(before, rel=1e-12)

    def test_checkpoint_roundtrip_multilayer(self):
        from repro.superux.checkpoint import restore_model, take_checkpoint

        def make():
            return CCM2Model(GaussianGrid(32, 64), trunc=21, nlev=4, dyn_layers=3)

        reference = make()
        reference.run(3)
        blob = take_checkpoint(reference)
        reference.run(3)
        restored = make()
        restore_model(restored, blob)
        restored.run(3)
        for a, b in zip(reference.layer_states, restored.layer_states):
            assert np.array_equal(a.phi, b.phi)

    def test_layer_count_mismatch_rejected_on_restore(self):
        from repro.superux.checkpoint import restore_model, take_checkpoint

        three = CCM2Model(GaussianGrid(32, 64), trunc=21, nlev=4, dyn_layers=3)
        blob = take_checkpoint(three)
        two = CCM2Model(GaussianGrid(32, 64), trunc=21, nlev=4, dyn_layers=2)
        with pytest.raises(ValueError):
            restore_model(two, blob)

    def test_validation(self):
        with pytest.raises(ValueError):
            CCM2Model(GaussianGrid(32, 64), trunc=21, nlev=4, dyn_layers=0)
