"""Tests for the spectral shallow-water dynamical core."""

import numpy as np
import pytest

from repro.apps.ccm2.dynamics import (
    GRAVITY,
    ShallowWaterLayer,
    initial_rh_wave,
    initial_solid_body,
)
from repro.apps.ccm2.gaussian import GaussianGrid
from repro.apps.ccm2.spectral import SpectralTransform


@pytest.fixture(scope="module")
def transform():
    return SpectralTransform(GaussianGrid(32, 64), trunc=21)


@pytest.fixture(scope="module")
def layer(transform):
    return ShallowWaterLayer(transform, nu4=0.0)


class TestSteadyState:
    def test_solid_body_tendencies_vanish(self, layer, transform):
        """Williamson test 2: the geostrophic zonal flow is steady, so
        all spectral tendencies must vanish to roundoff."""
        state = initial_solid_body(transform)
        tend = layer.tendencies(state)
        assert np.max(np.abs(tend.vort)) < 1e-18
        assert np.max(np.abs(tend.div)) < 1e-15
        assert np.max(np.abs(tend.phi)) < 1e-9  # phi is O(1e5), so ~1e-14 rel

    def test_solid_body_held_over_integration(self, layer, transform):
        state = initial_solid_body(transform)
        phi0 = transform.inverse(state.phi)
        out = layer.run(state, dt=600.0, steps=50)
        phi1 = transform.inverse(out.phi)
        assert np.max(np.abs(phi1 - phi0)) < 1e-6 * np.max(np.abs(phi0))


class TestConservation:
    def test_mass_exactly_conserved(self, layer, transform):
        state = initial_rh_wave(transform)
        m0 = layer.total_mass(state)
        out = layer.run(state, dt=600.0, steps=40)
        assert layer.total_mass(out) == pytest.approx(m0, rel=1e-14)

    def test_energy_approximately_conserved(self, layer, transform):
        state = initial_rh_wave(transform)
        e0 = layer.total_energy(state)
        out = layer.run(state, dt=600.0, steps=40)
        # Leapfrog conserves energy to time-truncation error, not exactly.
        assert layer.total_energy(out) == pytest.approx(e0, rel=2e-3)

    def test_hyperdiffusion_dissipates_enstrophy(self, transform):
        damped = ShallowWaterLayer(transform, nu4=1.0e16)
        free = ShallowWaterLayer(transform, nu4=0.0)
        state = initial_rh_wave(transform)

        def enstrophy(s):
            return float(np.sum(np.abs(s.vort) ** 2))

        out_damped = damped.run(state, dt=600.0, steps=20)
        out_free = free.run(state, dt=600.0, steps=20)
        assert enstrophy(out_damped) < enstrophy(out_free)


class TestTimestepping:
    def test_run_zero_steps_is_copy(self, layer, transform):
        state = initial_rh_wave(transform)
        out = layer.run(state, dt=600.0, steps=0)
        assert out is not state
        assert np.array_equal(out.phi, state.phi)

    def test_robert_filter_bounds(self, transform):
        with pytest.raises(ValueError):
            ShallowWaterLayer(transform, robert=0.6)
        with pytest.raises(ValueError):
            ShallowWaterLayer(transform, nu4=-1.0)

    def test_invalid_dt_rejected(self, layer, transform):
        state = initial_solid_body(transform)
        with pytest.raises(ValueError):
            layer.forward_step(state, dt=0.0)
        with pytest.raises(ValueError):
            layer.step(state, state, dt=-1.0)
        with pytest.raises(ValueError):
            layer.run(state, dt=600.0, steps=-1)

    def test_state_algebra(self, transform):
        a = initial_solid_body(transform)
        doubled = a + a
        assert np.allclose(doubled.phi, 2.0 * a.phi)
        assert np.allclose(a.scaled(0.5).phi, 0.5 * a.phi)

    def test_rh_wave_validation(self, transform):
        with pytest.raises(ValueError):
            initial_rh_wave(transform, wavenumber=0)
        with pytest.raises(ValueError):
            initial_rh_wave(transform, wavenumber=transform.trunc)


class TestPhysicalBehaviour:
    def test_rh_wave_propagates(self, layer, transform):
        """The wave pattern must move (Rossby waves propagate) while
        keeping its amplitude roughly constant without diffusion."""
        state = initial_rh_wave(transform, wavenumber=4)
        v0 = transform.inverse(state.vort)
        out = layer.run(state, dt=600.0, steps=60)
        v1 = transform.inverse(out.vort)
        # The field changed noticeably...
        assert np.max(np.abs(v1 - v0)) > 0.05 * np.max(np.abs(v0))
        # ...but its magnitude did not blow up or vanish.
        assert 0.5 < np.max(np.abs(v1)) / np.max(np.abs(v0)) < 2.0

    def test_gravity_wave_radiates_from_bump(self, layer, transform):
        """A geopotential bump on a resting fluid must create divergence."""
        from repro.apps.ccm2.dynamics import ShallowWaterState

        grid = transform.grid
        bump = np.exp(
            -((grid.lats[:, None]) ** 2) / 0.1
            - ((grid.lons[None, :] - np.pi) ** 2) / 0.1
        )
        state = ShallowWaterState(
            vort=transform.zeros_spec(),
            div=transform.zeros_spec(),
            phi=transform.forward(GRAVITY * 8.0e3 + 500.0 * bump),
        )
        out = layer.run(state, dt=300.0, steps=10)
        assert np.max(np.abs(out.div)) > 1e-8

    def test_grid_fields_shapes(self, layer, transform):
        fields = layer.grid_fields(initial_rh_wave(transform))
        assert set(fields) == {"vort", "div", "phi", "U", "V"}
        for field in fields.values():
            assert field.shape == transform.grid.shape
