"""Tests for the Gaussian grid and Legendre basis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.ccm2.gaussian import GaussianGrid, gauss_legendre
from repro.apps.ccm2.legendre import LegendreBasis, epsilon


class TestGaussLegendre:
    def test_nodes_descending_in_open_interval(self):
        x, _ = gauss_legendre(16)
        assert np.all(np.diff(x) < 0)
        assert np.all(np.abs(x) < 1.0)

    def test_weights_positive_sum_two(self):
        _, w = gauss_legendre(16)
        assert np.all(w > 0)
        assert np.sum(w) == pytest.approx(2.0)

    def test_symmetry(self):
        x, w = gauss_legendre(10)
        assert np.allclose(x, -x[::-1])
        assert np.allclose(w, w[::-1])

    def test_single_point(self):
        x, w = gauss_legendre(1)
        assert x[0] == pytest.approx(0.0, abs=1e-14)
        assert w[0] == pytest.approx(2.0)

    def test_rejects_zero_points(self):
        with pytest.raises(ValueError):
            gauss_legendre(0)

    @given(n=st.integers(2, 40), degree=st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_quadrature_exact_for_polynomials(self, n, degree):
        """n-point Gauss quadrature is exact through degree 2n-1."""
        if degree > 2 * n - 1:
            degree = 2 * n - 1
        x, w = gauss_legendre(n)
        got = float(np.sum(w * x**degree))
        exact = 2.0 / (degree + 1) if degree % 2 == 0 else 0.0
        assert got == pytest.approx(exact, abs=1e-11)

    @given(n=st.integers(2, 30))
    @settings(max_examples=20, deadline=None)
    def test_random_polynomial_integration(self, n):
        rng = np.random.default_rng(n)
        coeffs = rng.standard_normal(2 * n)  # degree 2n-1
        x, w = gauss_legendre(n)
        got = float(np.sum(w * np.polyval(coeffs, x)))
        exact = sum(
            c * (2.0 / (d + 1) if d % 2 == 0 else 0.0)
            for d, c in zip(range(len(coeffs) - 1, -1, -1), coeffs)
        )
        assert got == pytest.approx(exact, abs=1e-9 * max(1, abs(exact)))


class TestGaussianGrid:
    def test_t42_grid_dimensions(self):
        grid = GaussianGrid(64, 128)
        assert grid.shape == (64, 128)
        assert grid.columns == 8192

    def test_area_mean_of_constant(self):
        grid = GaussianGrid(32, 64)
        assert grid.area_mean(np.full(grid.shape, 7.5)) == pytest.approx(7.5)

    def test_area_mean_of_odd_function_vanishes(self):
        grid = GaussianGrid(32, 64)
        field = grid.sinlat[:, None] * np.ones((1, 64))
        assert grid.area_mean(field) == pytest.approx(0.0, abs=1e-14)

    def test_truncation_support(self):
        grid = GaussianGrid(64, 128)
        assert grid.supports_truncation(42)
        assert not grid.supports_truncation(43)

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianGrid(31, 64)  # odd nlat
        with pytest.raises(ValueError):
            GaussianGrid(32, 2)
        grid = GaussianGrid(8, 16)
        with pytest.raises(ValueError):
            grid.area_mean(np.zeros((4, 4)))


class TestLegendreBasis:
    @pytest.fixture(scope="class")
    def basis(self):
        grid = GaussianGrid(32, 64)
        return LegendreBasis(21, grid.sinlat), grid

    def test_nspec(self, basis):
        b, _ = basis
        assert b.nspec == 22 * 23 // 2

    def test_orthonormality(self, basis):
        """(1/2) Σ w P̄ₙᵐ P̄ₙ'ᵐ = δₙₙ' on the Gaussian grid."""
        b, grid = basis
        gram = 0.5 * (b.pnm * grid.weights) @ b.pnm.T
        same_m = b.m_values[:, None] == b.m_values[None, :]
        err = np.abs(np.where(same_m, gram - np.eye(b.nspec), 0.0))
        assert err.max() < 1e-12

    def test_known_functions(self, basis):
        b, grid = basis
        mu = grid.sinlat
        assert np.allclose(b.pnm[b.index(0, 0)], 1.0)
        assert np.allclose(b.pnm[b.index(0, 1)], np.sqrt(3.0) * mu)
        p2 = np.sqrt(5.0) * (3.0 * mu**2 - 1.0) / 2.0
        assert np.allclose(b.pnm[b.index(0, 2)], p2)

    def test_derivative_table(self, basis):
        """H₁⁰ = (1-μ²)·dP̄₁⁰/dμ = √3(1-μ²)."""
        b, grid = basis
        expected = np.sqrt(3.0) * (1.0 - grid.sinlat**2)
        assert np.allclose(b.hnm[b.index(0, 1)], expected)

    def test_derivative_consistent_with_finite_difference(self, basis):
        b, _ = basis
        mu = np.linspace(-0.9, 0.9, 500)
        fine = LegendreBasis(10, mu)
        for m, n in [(0, 3), (2, 5), (4, 7)]:
            p = fine.pnm[fine.index(m, n)]
            h = fine.hnm[fine.index(m, n)]
            dp = np.gradient(p, mu)
            assert np.allclose(h[5:-5], ((1 - mu**2) * dp)[5:-5], atol=2e-3)

    def test_index_lookup(self, basis):
        b, _ = basis
        for i, (m, n) in enumerate(zip(b.m_values, b.n_values)):
            assert b.index(int(m), int(n)) == i
        with pytest.raises(ValueError):
            b.index(5, 3)  # n < m
        with pytest.raises(ValueError):
            b.index(0, 22)  # beyond truncation

    def test_laplacian_eigenvalues(self, basis):
        b, _ = basis
        eig = b.laplacian_eigenvalues
        assert eig[b.index(0, 0)] == 0.0
        assert eig[b.index(0, 1)] == pytest.approx(-2.0)
        assert eig[b.index(3, 5)] == pytest.approx(-30.0)

    def test_epsilon_values(self):
        assert epsilon(1, 0) == pytest.approx(np.sqrt(1.0 / 3.0))
        assert epsilon(2, 0) == pytest.approx(np.sqrt(4.0 / 15.0))
        assert float(epsilon(5, 5)) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LegendreBasis(0, np.array([0.5]))
        with pytest.raises(ValueError):
            LegendreBasis(5, np.array([1.0]))  # mu on the boundary
