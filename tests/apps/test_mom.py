"""Tests for the MOM ocean model (functional + Table 7 cost model)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.mom import baroclinic, barotropic, costmodel
from repro.apps.mom.grid import OceanGrid
from repro.apps.mom.model import MOMModel
from repro.apps.mom.state import resting_state, warm_pool_state
from repro.machine.presets import sx4_node


@pytest.fixture(scope="module")
def small_grid():
    return OceanGrid(nlon=24, nlat=16, nlev=4)


class TestGrid:
    def test_benchmark_configurations(self):
        low = OceanGrid.low_resolution()
        high = OceanGrid.benchmark()
        assert low.nlev == 25  # the 3-degree familiarization config
        assert high.nlev == 45  # the 1-degree benchmark config
        assert high.nlon == 360

    def test_metric_quantities(self, small_grid):
        assert small_grid.dy > 0
        assert np.all(small_grid.dx > 0)
        # Zonal spacing shrinks toward the poles.
        assert small_grid.dx[0] < small_grid.dx[small_grid.nlat // 2]

    def test_volume_mean_of_constant(self, small_grid):
        field = np.full(small_grid.shape3d, 4.2)
        assert small_grid.volume_mean(field) == pytest.approx(4.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            OceanGrid(nlon=2, nlat=16, nlev=4)
        with pytest.raises(ValueError):
            OceanGrid(nlon=24, nlat=16, nlev=4, lat_max_deg=95.0)
        with pytest.raises(ValueError):
            OceanGrid(nlon=24, nlat=16, nlev=4, depth_m=-1.0)


class TestBarotropicSolver:
    def test_solves_poisson(self, small_grid):
        rng = np.random.default_rng(0)
        rhs = rng.standard_normal(small_grid.shape2d) * 1e-6
        rhs[0] = rhs[-1] = 0.0
        psi, iterations = barotropic.solve_streamfunction(small_grid, rhs, tol=1e-8)
        assert iterations < 20_000
        residual = barotropic.poisson_residual(small_grid, psi, rhs)
        assert residual <= 1e-8 * np.max(np.abs(rhs)) * 1.01

    def test_zero_rhs_gives_zero(self, small_grid):
        psi, _ = barotropic.solve_streamfunction(
            small_grid, np.zeros(small_grid.shape2d)
        )
        assert np.allclose(psi, 0.0)

    def test_warm_start_converges_faster(self, small_grid):
        rng = np.random.default_rng(1)
        rhs = rng.standard_normal(small_grid.shape2d) * 1e-6
        rhs[0] = rhs[-1] = 0.0
        psi, cold = barotropic.solve_streamfunction(small_grid, rhs, tol=1e-9)
        _, warm = barotropic.solve_streamfunction(small_grid, rhs, psi0=psi, tol=1e-9)
        assert warm < cold

    def test_walls_pinned(self, small_grid):
        rng = np.random.default_rng(2)
        rhs = rng.standard_normal(small_grid.shape2d) * 1e-6
        psi, _ = barotropic.solve_streamfunction(small_grid, rhs)
        assert np.all(psi[0] == 0.0) and np.all(psi[-1] == 0.0)

    def test_validation(self, small_grid):
        rhs = np.zeros(small_grid.shape2d)
        with pytest.raises(ValueError):
            barotropic.solve_streamfunction(small_grid, rhs, omega=2.5)
        with pytest.raises(ValueError):
            barotropic.solve_streamfunction(small_grid, rhs, max_iter=0)
        with pytest.raises(ValueError):
            barotropic.solve_streamfunction(small_grid, np.zeros((3, 3)))


class TestBaroclinic:
    def test_density_linear_eos(self):
        t = np.array([[[10.0]]])
        s = np.array([[[34.7]]])
        assert baroclinic.density(t, s)[0, 0, 0] == pytest.approx(baroclinic.RHO0)
        warm = baroclinic.density(t + 5.0, s)
        salty = baroclinic.density(t, s + 1.0)
        assert warm[0, 0, 0] < baroclinic.RHO0 < salty[0, 0, 0]

    def test_hydrostatic_pressure_increases_downward(self, small_grid):
        state = resting_state(small_grid)
        rho = baroclinic.density(state.temperature, state.salinity)
        p = baroclinic.hydrostatic_pressure(small_grid, rho)
        assert np.all(np.diff(p, axis=0) > 0)

    def test_tracer_conservation(self, small_grid):
        """Flux-form advection+diffusion conserves the volume integral."""
        rng = np.random.default_rng(3)
        tracer = 10.0 + rng.standard_normal(small_grid.shape3d)
        u = 0.5 * rng.standard_normal(small_grid.shape3d)
        v = 0.2 * rng.standard_normal(small_grid.shape3d)
        tend = baroclinic.tracer_tendency(small_grid, tracer, u, v)
        vol = small_grid.cell_volumes()
        integral = float(np.sum(tend * vol))
        scale = float(np.sum(np.abs(tend) * vol))
        assert abs(integral) < 1e-10 * max(scale, 1e-30)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_tracer_conservation_property(self, seed):
        grid = OceanGrid(nlon=12, nlat=8, nlev=3)
        rng = np.random.default_rng(seed)
        tracer = rng.uniform(0, 20, grid.shape3d)
        u = rng.uniform(-1, 1, grid.shape3d)
        v = rng.uniform(-1, 1, grid.shape3d)
        tend = baroclinic.tracer_tendency(grid, tracer, u, v)
        vol = grid.cell_volumes()
        assert abs(np.sum(tend * vol)) < 1e-9 * max(np.sum(np.abs(tend) * vol), 1e-30)

    def test_coriolis_turns_flow(self, small_grid):
        u = np.ones(small_grid.shape3d)
        v = np.zeros(small_grid.shape3d)
        p = np.zeros(small_grid.shape3d)
        du, dv = baroclinic.momentum_tendency(small_grid, u, v, p,
                                              viscosity=0.0, bottom_drag=0.0)
        # Northern-hemisphere eastward flow is deflected southward.
        north = small_grid.lats > 0
        assert np.all(dv[:, north, :] < 0)

    def test_validation(self, small_grid):
        with pytest.raises(ValueError):
            baroclinic.tracer_tendency(
                small_grid, np.zeros(small_grid.shape3d),
                np.zeros(small_grid.shape3d), np.zeros(small_grid.shape3d),
                diffusivity=-1.0,
            )
        with pytest.raises(ValueError):
            baroclinic.hydrostatic_pressure(small_grid, np.zeros((2, 2, 2)))


class TestMOMModel:
    def test_resting_ocean_stays_at_rest(self, small_grid):
        model = MOMModel(small_grid, dt=1800.0)
        model.run(12)
        assert model.state.kinetic_energy < 1e-20
        assert model.state.is_finite()

    def test_warm_pool_spins_up_circulation(self, small_grid):
        model = MOMModel(small_grid, dt=1800.0)
        model.set_state(warm_pool_state(small_grid))
        model.run(12)
        assert model.state.kinetic_energy > 1e-12
        assert model.state.is_finite()

    def test_diagnostics_every_ten_steps(self, small_grid):
        """The cadence the paper blames for scalability loss."""
        model = MOMModel(small_grid, dt=1800.0)
        diags = model.run(25)
        assert [d.step for d in diags] == [10, 20]
        assert all(d.healthy for d in diags)

    def test_tracer_mean_stable(self, small_grid):
        model = MOMModel(small_grid, dt=1800.0)
        model.set_state(warm_pool_state(small_grid))
        t0 = small_grid.volume_mean(model.state.temperature)
        model.run(20)
        t1 = small_grid.volume_mean(model.state.temperature)
        assert t1 == pytest.approx(t0, rel=1e-3)

    def test_cfl_guard(self):
        grid = OceanGrid(nlon=360, nlat=150, nlev=3)
        with pytest.raises(ValueError):
            MOMModel(grid, dt=50_000.0)

    def test_validation(self, small_grid):
        with pytest.raises(ValueError):
            MOMModel(small_grid, dt=-1.0)
        with pytest.raises(ValueError):
            MOMModel(small_grid, diagnostic_interval=0)
        with pytest.raises(ValueError):
            MOMModel(small_grid).run(-1)


class TestTable7:
    @pytest.fixture(scope="class")
    def node(self):
        return sx4_node()

    @pytest.fixture(scope="class")
    def table(self, node):
        return costmodel.speedup_table(node)

    def test_single_cpu_time_anchor(self, table):
        """Table 7: 1861.25 s for 350 steps on one processor."""
        t1, s1 = table[1]
        assert t1 == pytest.approx(1861.25, rel=0.05)
        assert s1 == pytest.approx(1.0)

    def test_times_against_paper(self, table):
        """Every Table 7 time within 15% (the 8-CPU point is the paper's
        own odd one out; see EXPERIMENTS.md)."""
        for cpus, (paper_t, _) in costmodel.PAPER_TABLE7.items():
            model_t, _ = table[cpus]
            assert model_t == pytest.approx(paper_t, rel=0.15), cpus

    def test_speedup_monotone_and_sublinear(self, table):
        speedups = [table[p][1] for p in (1, 4, 8, 16, 32)]
        assert speedups == sorted(speedups)
        for p, s in zip((1, 4, 8, 16, 32), speedups):
            assert s <= p

    def test_modest_scalability(self, table):
        """'The modest level of scalability' — ~8-9x on 32 CPUs, far from
        linear (the paper's own times give 1861.25/226.62 = 8.2)."""
        _, s32 = table[32]
        assert 7.0 < s32 < 10.0

    def test_sor_iterations_grow_with_strips(self):
        assert costmodel.sor_iterations_for(1) == costmodel.SOR_ITERATIONS
        assert costmodel.sor_iterations_for(16) > costmodel.sor_iterations_for(4)

    def test_diagnostics_hurt_scalability(self, node):
        """Removing the every-10-step print improves the 32-CPU step."""
        with_diag = costmodel.parallel_step(node, cpus=32, with_diagnostics=True)
        without = costmodel.parallel_step(node, cpus=32, with_diagnostics=False)
        assert without.seconds < with_diag.seconds

    def test_validation(self, node):
        with pytest.raises(ValueError):
            costmodel.sor_iterations_for(0)
        with pytest.raises(ValueError):
            costmodel.benchmark_time(node, cpus=1, steps=0)
        with pytest.raises(ValueError):
            costmodel.barotropic_trace(OceanGrid.benchmark(), iterations=0)
