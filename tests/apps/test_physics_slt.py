"""Tests for CCM2 column physics and semi-Lagrangian transport."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.ccm2.gaussian import GaussianGrid
from repro.apps.ccm2.physics import ColumnPhysics
from repro.apps.ccm2.slt import SemiLagrangianTransport
from repro.apps.ccm2.spectral import EARTH_RADIUS
from repro.kernels import radabs


class TestColumnPhysics:
    @pytest.fixture(scope="class")
    def physics(self):
        return ColumnPhysics(nlev=12)

    def test_heating_shape_and_bounds(self, physics):
        cols = radabs.make_columns(ncol=20, nlev=12, identical=False)
        rates = physics.heating_rates(cols)
        assert rates.shape == (12, 20)
        assert physics.heating_is_bounded(rates)

    def test_columns_independent(self, physics):
        cols = radabs.make_columns(ncol=6, nlev=12, identical=False)
        full = physics.heating_rates(cols)
        sub = radabs.RadiationColumns(
            pressure=cols.pressure[:, 3:4].copy(),
            dp=cols.dp[:, 3:4].copy(),
            temperature=cols.temperature[:, 3:4].copy(),
            qv=cols.qv[:, 3:4].copy(),
        )
        alone = physics.heating_rates(sub)
        assert np.allclose(full[:, 3], alone[:, 0])

    def test_solar_heats_top_layers(self, physics):
        cols = radabs.make_columns(ncol=4, nlev=12)
        with_sun = physics.heating_rates(cols)
        dark = ColumnPhysics(nlev=12, solar_constant=0.0).heating_rates(cols)
        assert np.all(with_sun[0] > dark[0])

    def test_level_mismatch_rejected(self, physics):
        cols = radabs.make_columns(ncol=4, nlev=10)
        with pytest.raises(ValueError):
            physics.heating_rates(cols)

    def test_columns_from_geopotential(self, physics):
        phi = 1e5 + 100.0 * np.random.default_rng(0).standard_normal((8, 16))
        cols = physics.columns_from_geopotential(phi)
        assert cols.ncol == 128
        assert cols.nlev == 12
        # Warmer where the geopotential is higher.
        hi, lo = np.argmax(phi.ravel()), np.argmin(phi.ravel())
        assert cols.temperature[-1, hi] > cols.temperature[-1, lo]

    def test_validation(self):
        with pytest.raises(ValueError):
            ColumnPhysics(nlev=1)
        with pytest.raises(ValueError):
            ColumnPhysics(relax_days=0.0)
        with pytest.raises(ValueError):
            ColumnPhysics().columns_from_geopotential(np.zeros(5))


class TestSLT:
    @pytest.fixture(scope="class")
    def setup(self):
        grid = GaussianGrid(32, 64)
        slt = SemiLagrangianTransport(grid, radius=EARTH_RADIUS)
        return grid, slt

    def make_blob(self, grid):
        lon = grid.lons[None, :]
        lat = grid.lats[:, None]
        return np.exp(-((lon - np.pi) ** 2) / 0.2 - (lat**2) / 0.1)

    def test_constant_field_preserved(self, setup):
        grid, slt = setup
        field = np.full(grid.shape, 3.7)
        u = 20.0 * np.ones(grid.shape)
        v = 5.0 * np.ones(grid.shape)
        out = slt.advect(field, u, v, dt=1800.0)
        assert np.allclose(out, 3.7, atol=1e-12)

    def test_shape_preservation(self, setup):
        """The monotone limiter creates no new extrema (Williamson &
        Rasch's defining property of the scheme)."""
        grid, slt = setup
        field = self.make_blob(grid)
        rng = np.random.default_rng(0)
        u = 30.0 * (1.0 + 0.3 * rng.standard_normal(grid.shape))
        v = 10.0 * rng.standard_normal(grid.shape)
        out = slt.advect(field, u, v, dt=1800.0)
        assert slt.creates_no_new_extrema(field, out)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_shape_preservation_property(self, setup, seed):
        grid, slt = setup
        rng = np.random.default_rng(seed)
        field = rng.uniform(0.0, 1.0, grid.shape)
        u = rng.uniform(-40.0, 40.0, grid.shape)
        v = rng.uniform(-10.0, 10.0, grid.shape)
        out = slt.advect(field, u, v, dt=1200.0)
        assert out.min() >= field.min() - 1e-12
        assert out.max() <= field.max() + 1e-12

    def test_zonal_advection_moves_blob_west_to_east(self, setup):
        grid, slt = setup
        field = self.make_blob(grid)
        u = 50.0 * np.cos(grid.lats)[:, None] * np.ones(grid.shape)
        v = np.zeros(grid.shape)
        out = field.copy()
        for _ in range(10):
            out = slt.advect(out, u, v, dt=1800.0)
        # Centre of mass in longitude must have moved eastward.
        eq = grid.nlat // 2
        before = np.average(grid.lons, weights=field[eq])
        after = np.average(grid.lons, weights=out[eq])
        assert after > before + 0.02

    def test_mass_approximately_conserved(self, setup):
        grid, slt = setup
        field = 1.0 + self.make_blob(grid)
        u = 30.0 * np.cos(grid.lats)[:, None] * np.ones(grid.shape)
        v = np.zeros(grid.shape)
        m0 = grid.area_mean(field)
        out = field.copy()
        for _ in range(10):
            out = slt.advect(out, u, v, dt=1800.0)
        assert grid.area_mean(out) == pytest.approx(m0, rel=0.02)

    def test_zero_wind_near_identity(self, setup):
        grid, slt = setup
        field = self.make_blob(grid)
        out = slt.advect(field, np.zeros(grid.shape), np.zeros(grid.shape), dt=1800.0)
        assert np.allclose(out, field, atol=1e-12)

    def test_validation(self, setup):
        grid, slt = setup
        with pytest.raises(ValueError):
            SemiLagrangianTransport(grid, radius=-1.0)
        with pytest.raises(ValueError):
            SemiLagrangianTransport(grid, radius=1.0, iterations=0)
        with pytest.raises(ValueError):
            slt.advect(np.zeros((4, 4)), np.zeros(grid.shape), np.zeros(grid.shape), 600.0)
        with pytest.raises(ValueError):
            slt.departure_points(np.zeros(grid.shape), np.zeros(grid.shape), dt=0.0)
