"""Tests for the POP ocean model (operators, CG solver, model, §4.7.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.mom.grid import OceanGrid
from repro.apps.pop import costmodel
from repro.apps.pop.model import POPModel
from repro.apps.pop.operators import NinePointStencil, cshift, nine_point_apply
from repro.apps.pop.solver import conjugate_gradient
from repro.machine.presets import sx4_processor


class TestCshift:
    def test_matches_fortran_semantics(self):
        a = np.array([1, 2, 3, 4, 5])
        # CSHIFT(a, 1) brings element i+1 into position i.
        assert np.array_equal(cshift(a, 1, 0), [2, 3, 4, 5, 1])
        assert np.array_equal(cshift(a, -1, 0), [5, 1, 2, 3, 4])

    def test_matches_numpy_roll(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((6, 9))
        for shift in (-7, -1, 0, 1, 3, 9):
            for axis in (0, 1):
                assert np.array_equal(cshift(a, shift, axis), np.roll(a, -shift, axis))

    def test_full_cycle_is_identity(self):
        a = np.arange(12.0).reshape(3, 4)
        assert np.array_equal(cshift(a, 4, 1), a)
        assert cshift(a, 4, 1) is not a  # still a copy, like the intrinsic

    @given(shift=st.integers(-20, 20), n=st.integers(1, 15))
    @settings(max_examples=25)
    def test_inverse_shift_property(self, shift, n):
        a = np.arange(float(n))
        assert np.array_equal(cshift(cshift(a, shift, 0), -shift, 0), a)

    def test_validation(self):
        with pytest.raises(ValueError):
            cshift(np.float64(3.0), 1, 0)
        with pytest.raises(ValueError):
            cshift(np.zeros(5), 1, 3)
        with pytest.raises(ValueError):
            cshift(np.zeros((0,)), 1, 0)


class TestNinePointStencil:
    def test_helmholtz_matches_dense_laplacian(self):
        """(I - α∇²) applied via cshifts equals the direct computation."""
        nlat, nlon = 8, 12
        dx = np.full(nlat, 1.0e5)
        dy = 1.2e5
        alpha = 1.0e9
        stencil = NinePointStencil.helmholtz(nlat, nlon, dx=dx, dy=dy, alpha=alpha)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((nlat, nlon))
        lap = (
            (np.roll(x, -1, 1) - 2 * x + np.roll(x, 1, 1)) / dx[:, None] ** 2
            + (np.roll(x, -1, 0) - 2 * x + np.roll(x, 1, 0)) / dy**2
        )
        assert np.allclose(stencil.apply(x), x - alpha * lap, atol=1e-10)

    def test_centre_required(self):
        with pytest.raises(ValueError):
            NinePointStencil(coefficients={(0, 1): np.ones((4, 4))})

    def test_offsets_bounded(self):
        with pytest.raises(ValueError):
            NinePointStencil(coefficients={(0, 0): np.ones((4, 4)),
                                           (2, 0): np.ones((4, 4))})

    def test_helmholtz_validation(self):
        with pytest.raises(ValueError):
            NinePointStencil.helmholtz(4, 4, dx=np.ones(4), dy=1.0, alpha=0.0)
        with pytest.raises(ValueError):
            NinePointStencil.helmholtz(4, 4, dx=np.ones(3), dy=1.0, alpha=1.0)

    def test_apply_shape_checked(self):
        stencil = NinePointStencil.helmholtz(4, 6, dx=np.ones(4), dy=1.0, alpha=1.0)
        with pytest.raises(ValueError):
            nine_point_apply(stencil.coefficients, np.zeros((3, 3)))


class TestConjugateGradient:
    def make_system(self, seed=0, nlat=10, nlon=14):
        stencil = NinePointStencil.helmholtz(
            nlat, nlon, dx=np.full(nlat, 1.0e5), dy=1.1e5, alpha=1.0e9
        )
        rng = np.random.default_rng(seed)
        return stencil, rng.standard_normal((nlat, nlon))

    def test_solves_to_tolerance(self):
        stencil, rhs = self.make_system()
        result = conjugate_gradient(stencil, rhs, tol=1e-10)
        assert result.converged
        residual = np.linalg.norm(rhs - stencil.apply(result.solution))
        assert residual <= 1e-10 * np.linalg.norm(rhs) * 1.01

    def test_residual_history_decreases_overall(self):
        stencil, rhs = self.make_system(seed=1)
        result = conjugate_gradient(stencil, rhs, tol=1e-12)
        assert result.residual_history[-1] < 1e-6 * result.residual_history[0]

    def test_warm_start_reduces_iterations(self):
        stencil, rhs = self.make_system(seed=2)
        cold = conjugate_gradient(stencil, rhs, tol=1e-10)
        warm = conjugate_gradient(stencil, rhs, x0=cold.solution, tol=1e-10)
        assert warm.iterations <= 1

    def test_zero_rhs(self):
        stencil, _ = self.make_system()
        result = conjugate_gradient(stencil, np.zeros(stencil.shape))
        assert result.converged and result.iterations == 0
        assert np.all(result.solution == 0.0)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_solution_property(self, seed):
        stencil, rhs = self.make_system(seed=seed, nlat=6, nlon=8)
        result = conjugate_gradient(stencil, rhs, tol=1e-9)
        assert result.converged
        assert np.allclose(stencil.apply(result.solution), rhs,
                           atol=1e-8 * max(1.0, np.abs(rhs).max()))

    def test_non_spd_detected(self):
        coeffs = {(0, 0): -np.ones((4, 6))}
        with pytest.raises(ValueError):
            conjugate_gradient(NinePointStencil(coefficients=coeffs), np.ones((4, 6)))

    def test_validation(self):
        stencil, rhs = self.make_system()
        with pytest.raises(ValueError):
            conjugate_gradient(stencil, np.zeros((2, 2)))
        with pytest.raises(ValueError):
            conjugate_gradient(stencil, rhs, max_iter=0)


class TestPOPModel:
    @pytest.fixture(scope="class")
    def model(self):
        m = POPModel(OceanGrid(nlon=24, nlat=16, nlev=3), dt=600.0, cg_tol=1e-13)
        eta = np.zeros(m.grid.shape2d)
        eta[8, 12] = 0.5
        m.set_surface_anomaly(eta)
        return m

    def test_volume_conserved(self, model):
        """The implicit free surface conserves the mean surface height."""
        mean0 = float(np.mean(model.eta))
        diags = model.run(6)
        # Conservation holds to the CG tolerance (the operator and the
        # divergence both preserve the mean exactly).
        assert diags[-1].mean_eta == pytest.approx(mean0, abs=1e-10)

    def test_anomaly_disperses(self, model):
        """Gravity waves spread the initial bump: its peak must decay."""
        peak0 = model.diagnostics[0].max_eta
        peak_now = model.diagnostics[-1].max_eta
        assert peak_now < peak0

    def test_cg_converges_every_step(self, model):
        assert all(d.cg_converged for d in model.diagnostics)
        assert all(d.healthy for d in model.diagnostics)

    def test_validation(self):
        grid = OceanGrid(nlon=24, nlat=16, nlev=3)
        with pytest.raises(ValueError):
            POPModel(grid, dt=0.0)
        m = POPModel(grid)
        with pytest.raises(ValueError):
            m.set_surface_anomaly(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            m.run(-1)


class TestSection473:
    def test_537_mflops_anchor(self):
        """'we observed 537 Mflops on the 2-degree POP benchmark on one
        processor of the SX-4' — with the unvectorised CSHIFT."""
        mflops = costmodel.model_mflops(sx4_processor())
        assert mflops == pytest.approx(537.0, rel=0.10)

    def test_vectorising_cshift_helps_substantially(self):
        """The ablation: a production compiler that vectorises CSHIFT."""
        scalar = costmodel.model_mflops(cshift_vectorized=False)
        vector = costmodel.model_mflops(cshift_vectorized=True)
        assert vector > 1.3 * scalar

    def test_trace_names_reflect_compiler(self):
        assert "scalar" in costmodel.step_trace(cshift_vectorized=False).name
        assert "vector" in costmodel.step_trace(cshift_vectorized=True).name

    def test_two_degree_grid(self):
        grid = costmodel.two_degree_grid()
        assert grid.nlon == 180  # 2 degrees
