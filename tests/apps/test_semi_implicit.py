"""Tests for the semi-implicit gravity-wave scheme (CCM2's timestepping)."""

import numpy as np
import pytest

from repro.apps.ccm2.dynamics import (
    ShallowWaterLayer,
    ShallowWaterState,
    initial_rh_wave,
    initial_solid_body,
)
from repro.apps.ccm2.gaussian import GaussianGrid
from repro.apps.ccm2.model import CCM2Model
from repro.apps.ccm2.spectral import SpectralTransform


@pytest.fixture(scope="module")
def transform():
    return SpectralTransform(GaussianGrid(32, 64), trunc=21)


class TestSemiImplicitScheme:
    def test_longer_stable_timestep_advertised(self, transform):
        explicit = ShallowWaterLayer(transform, semi_implicit=False)
        implicit = ShallowWaterLayer(transform, semi_implicit=True)
        assert implicit.max_stable_dt() > 2.0 * explicit.max_stable_dt()

    def test_steady_state_preserved(self, transform):
        layer = ShallowWaterLayer(transform, semi_implicit=True)
        state = initial_solid_body(transform)
        out = layer.run(state, dt=1800.0, steps=30)
        phi0 = transform.inverse(state.phi)
        phi1 = transform.inverse(out.phi)
        assert np.max(np.abs(phi1 - phi0)) < 1e-6 * np.max(np.abs(phi0))

    def test_stable_beyond_explicit_cfl(self, transform):
        """The scheme's purpose: 2x the explicit gravity-wave limit runs
        stably where the explicit core diverges."""
        explicit_limit = ShallowWaterLayer(transform).max_stable_dt()
        dt = 2.0 * explicit_limit
        state = initial_rh_wave(transform)
        implicit = ShallowWaterLayer(transform, semi_implicit=True, nu4=1e15)
        out = implicit.run(state, dt=dt, steps=50)
        assert np.all(np.isfinite(out.phi))
        assert np.abs(transform.inverse(out.phi)).max() < 2e5

        explicit = ShallowWaterLayer(transform, semi_implicit=False, nu4=1e15)
        with np.errstate(over="ignore", invalid="ignore"):
            bad = explicit.run(state, dt=dt, steps=50)
        assert (not np.all(np.isfinite(bad.phi))) or np.abs(bad.phi).max() > 1e7

    def test_mass_exactly_conserved(self, transform):
        layer = ShallowWaterLayer(transform, semi_implicit=True)
        state = initial_rh_wave(transform)
        m0 = layer.total_mass(state)
        out = layer.run(state, dt=1800.0, steps=30)
        assert layer.total_mass(out) == pytest.approx(m0, rel=1e-13)

    def test_matches_explicit_at_small_dt(self, transform):
        """In the small-Δt limit the two schemes integrate the same
        equations: one short step must agree closely."""
        state = initial_rh_wave(transform)
        dt = 30.0
        explicit = ShallowWaterLayer(transform, semi_implicit=False)
        implicit = ShallowWaterLayer(transform, semi_implicit=True)
        prev = state.copy()
        cur = explicit.forward_step(state, dt)
        _, new_e = explicit.step(prev, cur, dt)
        _, new_i = implicit.step(prev, cur, dt)
        scale = np.abs(new_e.phi).max()
        assert np.max(np.abs(new_e.phi - new_i.phi)) < 1e-5 * scale
        assert np.max(np.abs(new_e.vort - new_i.vort)) == 0.0  # ζ is explicit in both

    def test_linear_gravity_waves_neutral(self, transform):
        """A small Φ perturbation on a resting fluid oscillates without
        amplification under the implicit couple, even at long Δt."""
        layer = ShallowWaterLayer(transform, semi_implicit=True, omega=0.0)
        phi = transform.zeros_spec()
        phi[transform.basis.index(0, 0)] = layer.phi_ref
        i = transform.basis.index(3, 5)
        phi[i] += 1.0
        state = ShallowWaterState(transform.zeros_spec(), transform.zeros_spec(), phi)
        prev = state.copy()
        cur = layer.forward_step(state, 2700.0)
        peak = 0.0
        for _ in range(60):
            prev, cur = layer.step(prev, cur, 2700.0)
            peak = max(peak, abs(cur.phi[i]))
        assert peak < 1.2  # bounded oscillation, no growth

    def test_validation(self, transform):
        with pytest.raises(ValueError):
            ShallowWaterLayer(transform, semi_implicit=True, phi_ref=-1.0)
        layer = ShallowWaterLayer(transform)
        with pytest.raises(ValueError):
            layer.max_stable_dt(phi_scale=0.0)
        with pytest.raises(ValueError):
            layer.max_stable_dt(wind_scale=0.0)


class TestSemiImplicitModel:
    def test_ccm2_model_accepts_longer_steps(self):
        grid = GaussianGrid(32, 64)
        explicit = CCM2Model(grid, trunc=21, nlev=4)
        implicit = CCM2Model(grid, trunc=21, nlev=4, semi_implicit=True)
        assert implicit.dt > 2.0 * explicit.dt

    def test_ccm2_model_runs_healthily_semi_implicit(self):
        model = CCM2Model(GaussianGrid(32, 64), trunc=21, nlev=4, semi_implicit=True)
        for diag in model.run(8):
            assert diag.healthy, diag

    def test_explicit_dt_rejected_without_semi_implicit(self):
        grid = GaussianGrid(32, 64)
        si = CCM2Model(grid, trunc=21, nlev=4, semi_implicit=True)
        with pytest.raises(ValueError):
            CCM2Model(grid, trunc=21, nlev=4, semi_implicit=False, dt=si.dt)
