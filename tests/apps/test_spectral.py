"""Tests for the spherical-harmonic transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.ccm2.gaussian import GaussianGrid
from repro.apps.ccm2.spectral import EARTH_RADIUS, SpectralTransform


@pytest.fixture(scope="module")
def t21():
    return SpectralTransform(GaussianGrid(32, 64), trunc=21)


def random_spec(tr, seed=0):
    """A random spectral state satisfying the reality condition."""
    rng = np.random.default_rng(seed)
    spec = rng.standard_normal(tr.nspec) + 1j * rng.standard_normal(tr.nspec)
    m0 = tr.basis.m_values == 0
    spec[m0] = spec[m0].real
    return spec


class TestRoundTrip:
    def test_spectral_grid_spectral_identity(self, t21):
        spec = random_spec(t21)
        back = t21.forward(t21.inverse(spec))
        assert np.max(np.abs(back - spec)) < 1e-12

    def test_grid_spectral_grid_projects(self, t21):
        """forward∘inverse is the identity; inverse∘forward is the
        projection onto the truncated basis (idempotent)."""
        rng = np.random.default_rng(1)
        field = rng.standard_normal(t21.grid.shape)
        once = t21.inverse(t21.forward(field))
        twice = t21.inverse(t21.forward(once))
        assert np.allclose(once, twice, atol=1e-12)

    def test_inverse_of_real_spec_is_real_field(self, t21):
        field = t21.inverse(random_spec(t21, seed=2))
        assert np.isrealobj(field)
        assert field.shape == t21.grid.shape

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, t21, seed):
        spec = random_spec(t21, seed=seed)
        assert np.max(np.abs(t21.forward(t21.inverse(spec)) - spec)) < 1e-11

    def test_linearity(self, t21):
        rng = np.random.default_rng(3)
        a = rng.standard_normal(t21.grid.shape)
        b = rng.standard_normal(t21.grid.shape)
        lhs = t21.forward(2.0 * a - 3.0 * b)
        rhs = 2.0 * t21.forward(a) - 3.0 * t21.forward(b)
        assert np.allclose(lhs, rhs, atol=1e-12)


class TestOperators:
    def test_laplacian_eigenfunction(self, t21):
        spec = t21.zeros_spec()
        i = t21.basis.index(3, 5)
        spec[i] = 1.0
        lap = t21.laplacian(spec)
        assert lap[i] == pytest.approx(-30.0 / t21.radius**2)
        others = np.delete(np.abs(lap), i)
        assert np.all(others == 0.0)

    def test_inverse_laplacian_roundtrip(self, t21):
        spec = random_spec(t21, seed=4)
        spec[t21.basis.index(0, 0)] = 0.0  # the mode ∇⁻² annihilates
        back = t21.inverse_laplacian(t21.laplacian(spec))
        assert np.allclose(back, spec, atol=1e-12)

    def test_inverse_laplacian_kills_constant(self, t21):
        spec = t21.zeros_spec()
        spec[t21.basis.index(0, 0)] = 5.0
        assert np.all(t21.inverse_laplacian(spec) == 0.0)

    def test_coriolis_spec(self, t21):
        f_grid = t21.inverse(t21.coriolis_spec())
        expected = 2.0 * 7.292e-5 * t21.grid.sinlat[:, None]
        assert np.allclose(f_grid, expected * np.ones((1, 64)), atol=1e-15)

    def test_uv_from_pure_rotation(self, t21):
        """ζ = 2·u₀·μ/a with δ = 0 gives solid-body U = u₀·cos²φ."""
        u0 = 30.0
        mu = t21.grid.sinlat[:, None]
        vort_grid = (2.0 * u0 / EARTH_RADIUS) * mu * np.ones((1, 64))
        vort = t21.forward(vort_grid)
        u, v = t21.uv_from_vort_div(vort, t21.zeros_spec())
        cos2 = 1.0 - t21.grid.sinlat[:, None] ** 2
        assert np.allclose(u, u0 * cos2, rtol=1e-8)
        assert np.max(np.abs(v)) < 1e-8 * u0

    def test_forward_div_pair_conserves_mass(self, t21):
        """The (0,0) mode of any flux divergence vanishes identically —
        the property that makes the Φ equation conserve mass exactly."""
        rng = np.random.default_rng(5)
        a = rng.standard_normal(t21.grid.shape)
        b = rng.standard_normal(t21.grid.shape) * (1 - t21.grid.sinlat[:, None] ** 2)
        div = t21.forward_div_pair(a, b)
        assert abs(div[t21.basis.index(0, 0)]) < 1e-12 * max(1.0, np.abs(div).max())

    def test_div_of_rotational_flow_vanishes(self, t21):
        """DIV(U, V) of a purely rotational wind field must be ~0."""
        spec = random_spec(t21, seed=6) * 1e-5
        spec[t21.basis.index(0, 0)] = 0.0
        u, v = t21.uv_from_vort_div(spec, t21.zeros_spec())
        div = t21.forward_div_pair(u, v)
        assert np.max(np.abs(div)) < 1e-9 * max(np.abs(spec).max(), 1e-30)

    def test_curl_recovers_vorticity(self, t21):
        """DIV(V, -U) of winds synthesised from ζ returns ζ (truncated)."""
        spec = random_spec(t21, seed=7) * 1e-5
        spec[t21.basis.index(0, 0)] = 0.0
        # Zero the n = T band: wind synthesis uses H which couples to
        # n+1 > T, so only the interior band round-trips exactly.
        band = t21.basis.n_values == t21.trunc
        spec[band] = 0.0
        u, v = t21.uv_from_vort_div(spec, t21.zeros_spec())
        curl = t21.forward_div_pair(v, -u)
        interior = ~band
        assert np.allclose(curl[interior], spec[interior], atol=1e-10 * 1e-5)


class TestValidation:
    def test_grid_too_small_for_truncation(self):
        with pytest.raises(ValueError):
            SpectralTransform(GaussianGrid(16, 32), trunc=21)

    def test_unsupported_fft_size(self):
        # nlon = 28 = 2^2 * 7 has a factor of 7.
        with pytest.raises(ValueError):
            SpectralTransform(GaussianGrid(18, 28), trunc=5)

    def test_wrong_shapes_rejected(self, t21):
        with pytest.raises(ValueError):
            t21.forward(np.zeros((8, 8)))
        with pytest.raises(ValueError):
            t21.inverse(np.zeros(10, dtype=complex))
        with pytest.raises(ValueError):
            SpectralTransform(GaussianGrid(32, 64), trunc=21, radius=-1.0)
