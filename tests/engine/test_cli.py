"""Tests for ``python -m repro.engine`` (run / plan / stats / gc)."""

import json
import multiprocessing
import os
import time

import pytest

from repro.engine.cli import FAILURE_EXIT_CODES, main
from repro.suite.experiments import EXPERIMENTS

FAST = ["table1", "table2", "table3"]

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="pool tests inject builders via fork inheritance",
)


def _run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestRun:
    def test_cold_run_executes_and_passes(self, tmp_path, capsys):
        code, out, _ = _run(capsys, "run", *FAST, "--cache-dir", str(tmp_path))
        assert code == 0
        lines = out.splitlines()
        assert sum(line.startswith("executed ") for line in lines) == len(FAST)
        assert "3 experiments" in out

    def test_warm_run_is_all_cache_hits(self, tmp_path, capsys):
        _run(capsys, "run", *FAST, "--cache-dir", str(tmp_path))
        code, out, _ = _run(capsys, "run", *FAST, "--cache-dir", str(tmp_path))
        assert code == 0
        lines = out.splitlines()
        assert sum(line.startswith("cached ") for line in lines) == len(FAST)
        assert "3 cache hits" in out

    def test_json_report_shape(self, tmp_path, capsys):
        _run(capsys, "run", *FAST, "--cache-dir", str(tmp_path))
        code, out, _ = _run(capsys, "run", *FAST, "--cache-dir", str(tmp_path),
                            "--json")
        assert code == 0
        payload = json.loads(out)
        cache = payload["engine"]["cache"]
        assert cache == {"hits": 3, "executed": 0, "failed": 0, "total": 3}
        assert payload["suite"]["passed"] is True
        assert [e["exp_id"] for e in payload["suite"]["experiments"]] == FAST
        assert payload["engine"]["sources"]["table1"] == "cache"

    def test_unknown_id_exits_2_and_lists_valid_ids(self, tmp_path, capsys):
        code, _, err = _run(capsys, "run", "nonsense", "--cache-dir",
                            str(tmp_path))
        assert code == 2
        assert "nonsense" in err
        for exp_id in EXPERIMENTS:
            assert exp_id in err

    def test_failure_exits_with_error_code(self, tmp_path, capsys, monkeypatch):
        def broken():
            raise RuntimeError("nope")

        monkeypatch.setitem(EXPERIMENTS, "boom", broken)
        code, out, _ = _run(capsys, "run", "boom", "--cache-dir", str(tmp_path))
        assert code == 3  # builder errors are exit 3; see FAILURE_EXIT_CODES
        assert "[error]" in out

    @needs_fork
    def test_crash_exits_4(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "dies", lambda: os._exit(13))
        code, out, _ = _run(capsys, "run", "dies", "--jobs", "2",
                            "--cache-dir", str(tmp_path))
        assert code == FAILURE_EXIT_CODES["crash"] == 4
        assert "[crash]" in out

    @needs_fork
    def test_timeout_exits_5_and_names_the_job(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "sleepy", lambda: time.sleep(1.5))
        code, out, _ = _run(capsys, "run", "sleepy", "--jobs", "2",
                            "--timeout", "0.2", "--cache-dir", str(tmp_path))
        assert code == FAILURE_EXIT_CODES["timeout"] == 5
        assert "[timeout]" in out
        assert "job sleepy exceeded the 0.2 s limit after" in out

    @needs_fork
    def test_mixed_failures_take_the_highest_code(self, tmp_path, capsys,
                                                  monkeypatch):
        def broken():
            raise RuntimeError("nope")

        monkeypatch.setitem(EXPERIMENTS, "boom", broken)
        monkeypatch.setitem(EXPERIMENTS, "dies", lambda: os._exit(13))
        code, _, _ = _run(capsys, "run", "boom", "dies", "--jobs", "2",
                          "--cache-dir", str(tmp_path))
        assert code == 4  # crash (4) outranks error (3)

    def test_json_report_carries_resilience_block(self, tmp_path, capsys):
        code, out, _ = _run(capsys, "run", "table1", "--cache-dir",
                            str(tmp_path), "--json")
        assert code == 0
        resilience = json.loads(out)["engine"]["resilience"]
        assert resilience == {
            "retry_rounds": 0, "serial_fallback": False, "attempts": {},
        }


class TestPlan:
    def test_plan_never_executes(self, tmp_path, capsys):
        code, out, _ = _run(capsys, "plan", *FAST, "--cache-dir", str(tmp_path))
        assert code == 0
        assert out.count("miss") == len(FAST)

    def test_plan_json_counts(self, tmp_path, capsys):
        _run(capsys, "run", "table1", "--cache-dir", str(tmp_path))
        code, out, _ = _run(capsys, "plan", "table1", "table2",
                            "--cache-dir", str(tmp_path), "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["counts"] == {"hit": 1, "miss": 1, "stale": 0, "total": 2}


class TestStatsAndGc:
    def test_stats_reports_liveness(self, tmp_path, capsys):
        _run(capsys, "run", *FAST, "--cache-dir", str(tmp_path))
        code, out, _ = _run(capsys, "stats", "--cache-dir", str(tmp_path),
                            "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["entries"] == 3
        assert payload["live"] == 3
        assert payload["stale"] == 0

    def test_gc_dry_run_then_real(self, tmp_path, capsys):
        _run(capsys, "run", "table1", "--cache-dir", str(tmp_path))
        code, out, _ = _run(capsys, "gc", "--cache-dir", str(tmp_path),
                            "--dry-run")
        assert code == 0
        assert "would remove 0" in out
        code, out, _ = _run(capsys, "gc", "--cache-dir", str(tmp_path))
        assert "removed 0" in out


class TestSuiteRunnerIntegration:
    """--engine on the classic runner produces identical verdicts."""

    def test_engine_and_serial_runner_agree(self, tmp_path, capsys, monkeypatch):
        from repro.suite.runner import main as runner_main

        monkeypatch.chdir(tmp_path)  # --engine default store lands here
        assert runner_main([*FAST, "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert runner_main([*FAST, "--json", "--engine"]) == 0
        engine = json.loads(capsys.readouterr().out)
        # Timings differ run to run; verdicts must not.
        for report in (serial, engine):
            for exp in report["experiments"]:
                exp["elapsed_s"] = None
                exp["host_elapsed_s"] = None
        assert serial == engine

    def test_runner_unknown_id(self, capsys):
        from repro.suite.runner import main as runner_main

        assert runner_main(["nonsense"]) == 2
        err = capsys.readouterr().err
        assert "nonsense" in err
        assert "table7" in err

    @pytest.mark.parametrize("flag", ["--engine", None])
    def test_runner_json_schema(self, capsys, flag, tmp_path, monkeypatch):
        from repro.suite.runner import main as runner_main

        monkeypatch.chdir(tmp_path)  # --engine default store lands here
        argv = ["table2", "--json"] + ([flag] if flag else [])
        assert runner_main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["passed"] is True
        exp = payload["experiments"][0]
        assert exp["exp_id"] == "table2"
        assert exp["checks"] and all("description" in c for c in exp["checks"])
