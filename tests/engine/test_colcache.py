"""Tests for the shared-memory column cache and its executor wiring."""

import json
import multiprocessing
import os
import subprocess

import pytest

from repro.engine.executor import JobFailure, JobResult, execute_jobs
from repro.engine.store import COLUMN_SCHEMA, ColumnCache, _pid_alive
from repro.analysis.traces import build_suite_columns
from repro.machine.suitebatch import pack_suite, unpack_suite
from repro.perfmon.collector import profile
from repro.suite.experiments import EXPERIMENTS

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not _HAS_FORK, reason="pool tests inject builders via fork inheritance"
)


def _payload() -> bytes:
    return pack_suite(build_suite_columns())


@pytest.fixture(autouse=True)
def _reap_segments():
    """Leave no shared-memory residue behind, whatever a test did."""
    yield
    import glob

    for path in glob.glob(f"/dev/shm/repro_{os.getpid()}_*"):
        try:
            os.unlink(path)
        except OSError:
            pass


def _dead_pid() -> int:
    """A PID guaranteed dead: a reaped child of ours."""
    proc = subprocess.Popen(["sleep", "0"])
    proc.wait()
    return proc.pid


def _set_owner(cache: ColumnCache, key: str, pid: int) -> None:
    manifest = cache.manifest_path(key)
    payload = json.loads(manifest.read_text(encoding="utf-8"))
    payload["owner_pid"] = pid
    manifest.write_text(json.dumps(payload), encoding="utf-8")


class TestPublishAttach:
    def test_roundtrip_bit_exact(self, tmp_path):
        cache = ColumnCache(tmp_path)
        payload = _payload()
        key = cache.publish(payload)
        assert cache.attach(key) == payload
        suite = unpack_suite(cache.attach(key))
        assert suite.trace_ids == build_suite_columns().trace_ids

    def test_publish_is_idempotent(self, tmp_path):
        cache = ColumnCache(tmp_path)
        payload = _payload()
        key = cache.publish(payload)
        with profile() as prof:
            assert cache.publish(payload) == key
        counters = prof.counters.to_dict().get("colcache", {})
        assert counters.get("publishes", 0.0) == 0.0  # already attachable
        assert len(cache.segments()) == 1

    def test_attach_counts_in_perfmon(self, tmp_path):
        cache = ColumnCache(tmp_path)
        with profile() as prof:
            key = cache.publish(_payload())
            cache.attach(key)
        counters = prof.counters.to_dict()["colcache"]
        assert counters["publishes"] == 1.0
        assert counters["attaches"] == 1.0

    def test_missing_key_is_none(self, tmp_path):
        assert ColumnCache(tmp_path).attach("0" * 64) is None

    def test_bad_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ColumnCache(tmp_path).attach("not-a-key")

    def test_file_fallback_roundtrip(self, tmp_path, monkeypatch):
        def no_shm(self, key, payload):
            self.columns_dir.mkdir(parents=True, exist_ok=True)
            self.tmp_dir.mkdir(parents=True, exist_ok=True)
            staging = self.tmp_dir / f"columns.{key}.bin.tmp"
            staging.write_bytes(payload)
            os.replace(staging, self._bin_path(key))
            return "file", self._bin_path(key).name

        monkeypatch.setattr(ColumnCache, "_store_payload", no_shm)
        payload = _payload()
        key = ColumnCache(tmp_path).publish(payload)
        monkeypatch.undo()
        cache = ColumnCache(tmp_path)
        segment = cache.segments()[0]
        assert segment.kind == "file"
        # An unpatched instance (another process, conceptually) attaches.
        assert cache.attach(key) == payload

    def test_corrupt_payload_reads_as_miss(self, tmp_path):
        cache = ColumnCache(tmp_path)
        payload = _payload()
        key = cache.publish(payload)
        segment = cache.segments()[0]
        if segment.kind == "file":
            cache._bin_path(key).write_bytes(b"garbage" * 100)
        else:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(name=segment.name)
            try:
                seg.buf[:7] = b"garbage"
                ColumnCache._disown_shm(seg)
            finally:
                seg.close()
        assert cache.attach(key) is None

    def test_corrupt_manifest_reads_as_miss(self, tmp_path):
        cache = ColumnCache(tmp_path)
        key = cache.publish(_payload())
        cache.manifest_path(key).write_text("{not json", encoding="utf-8")
        assert cache.attach(key) is None

    def test_manifest_schema(self, tmp_path):
        cache = ColumnCache(tmp_path)
        key = cache.publish(_payload())
        manifest = json.loads(cache.manifest_path(key).read_text(encoding="utf-8"))
        assert manifest["schema"] == COLUMN_SCHEMA
        assert manifest["key"] == key
        assert manifest["owner_pid"] == os.getpid()
        assert manifest["kind"] in ("shm", "file")
        assert manifest["size_bytes"] == len(_payload())


class TestRelease:
    def test_release_removes_everything(self, tmp_path):
        cache = ColumnCache(tmp_path)
        key = cache.publish(_payload())
        assert cache.release(key) is True
        assert cache.attach(key) is None
        assert cache.segments() == []
        assert cache.release(key) is False  # second release: nothing left

    def test_clear_releases_all(self, tmp_path):
        cache = ColumnCache(tmp_path)
        cache.publish(_payload())
        assert cache.clear() == 1
        assert cache.segments() == []


class TestOrphanSweep:
    def test_pid_alive(self):
        assert _pid_alive(os.getpid()) is True
        assert _pid_alive(_dead_pid()) is False
        assert _pid_alive(0) is False
        assert _pid_alive(-1) is False

    def test_live_publisher_is_not_swept(self, tmp_path):
        cache = ColumnCache(tmp_path)
        key = cache.publish(_payload())
        assert cache.sweep_orphans() == []
        assert cache.attach(key) is not None

    def test_dead_publisher_is_swept(self, tmp_path):
        cache = ColumnCache(tmp_path)
        key = cache.publish(_payload())
        _set_owner(cache, key, _dead_pid())
        with profile() as prof:
            swept = cache.sweep_orphans()
        assert [s.key for s in swept] == [key]
        assert cache.attach(key) is None
        assert cache.segments() == []
        assert prof.counters.to_dict()["colcache"]["orphans_swept"] == 1.0

    def test_dry_run_sweeps_nothing(self, tmp_path):
        cache = ColumnCache(tmp_path)
        key = cache.publish(_payload())
        _set_owner(cache, key, _dead_pid())
        swept = cache.sweep_orphans(dry_run=True)
        assert [s.key for s in swept] == [key]
        assert cache.attach(key) is not None

    def test_engine_gc_reports_the_sweep(self, tmp_path, capsys):
        from repro.engine.cli import main

        cache = ColumnCache(tmp_path)
        key = cache.publish(_payload())
        _set_owner(cache, key, _dead_pid())
        assert main(["gc", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 orphaned column segment" in out
        assert key[:16] in out
        assert cache.segments() == []


@needs_fork
class TestExecutorWiring:
    def test_pool_results_match_serial_with_column_cache(self, tmp_path):
        cache = ColumnCache(tmp_path)
        from repro.engine.store import canonical_bytes

        serial = execute_jobs(["table1", "table2"], jobs=1)
        pooled = execute_jobs(
            ["table1", "table2"], jobs=2, column_cache=cache
        )
        for s, p in zip(serial, pooled):
            assert isinstance(p, JobResult)
            assert canonical_bytes(s.experiment) == canonical_bytes(p.experiment)

    def test_segment_released_when_the_pool_winds_down(self, tmp_path):
        cache = ColumnCache(tmp_path)
        execute_jobs(["table2"], jobs=2, column_cache=cache)
        assert cache.segments() == []

    def test_killed_worker_leaves_no_leaked_segments(self, tmp_path, monkeypatch):
        """The kill-and-recover contract extends to shared columns: a
        worker dying mid-job must not strand the published segment."""
        monkeypatch.setitem(EXPERIMENTS, "dies", lambda: os._exit(13))
        cache = ColumnCache(tmp_path)
        results = execute_jobs(["dies"], jobs=2, column_cache=cache)
        assert isinstance(results[0], JobFailure)
        assert results[0].kind == "crash"
        # The parent released on the way out; nothing for gc to sweep.
        assert cache.segments() == []
        assert cache.sweep_orphans() == []

    def test_run_engine_with_pool_uses_and_releases_columns(self, tmp_path):
        from repro.engine.executor import run_engine
        from repro.engine.store import ResultStore

        store = ResultStore(tmp_path)
        report = run_engine(["table1", "table2"], jobs=2, store=store)
        assert not report.failures
        assert ColumnCache(store.root).segments() == []
