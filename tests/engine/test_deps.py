"""Tests for static dependency tracing and content-addressed digests."""

import pytest

from repro.engine.deps import (
    EXPERIMENTS_MODULE,
    dependency_closure,
    experiment_dependencies,
    experiment_digest,
    machine_fingerprint,
    module_path,
    suite_digests,
)
from repro.suite.experiments import EXPERIMENTS


class TestModuleResolution:
    def test_module_and_package(self):
        assert module_path("repro.units").name == "units.py"
        assert module_path("repro.kernels").name == "__init__.py"

    def test_non_repro_names(self):
        assert module_path("numpy") is None
        assert module_path("os.path") is None
        assert module_path("repro.no_such_module") is None


class TestClosure:
    def test_seeds_and_their_imports_included(self):
        closure = dependency_closure(["repro.kernels.rfft"])
        assert "repro.kernels.rfft" in closure
        # rfft builds on the shared FFTPACK core and the machine model.
        assert "repro.kernels.fftpack" in closure
        assert "repro.machine.processor" in closure

    def test_ancestor_packages_hashed_not_traversed(self):
        closure = dependency_closure(["repro.kernels.rfft"])
        # The kernels package __init__ re-exports every kernel; it must be
        # *in* the closure (it runs on import) without dragging them in.
        assert "repro.kernels" in closure
        assert "repro.kernels.radabs" not in closure

    def test_no_traverse_is_hash_only(self):
        closure = dependency_closure(
            [EXPERIMENTS_MODULE], no_traverse={EXPERIMENTS_MODULE}
        )
        assert EXPERIMENTS_MODULE in closure
        # experiments imports every kernel; none may leak through.
        assert not any(n.startswith("repro.kernels.") for n in closure)


class TestExperimentDependencies:
    def test_per_experiment_precision(self):
        table1 = experiment_dependencies("table1")
        figure6 = experiment_dependencies("figure6")
        assert "repro.kernels.hint" in table1
        assert "repro.kernels.hint" not in figure6
        assert "repro.kernels.rfft" in figure6
        assert "repro.kernels.rfft" not in table1

    def test_experiments_module_always_included(self):
        for exp_id in ("table1", "sec4.6", "figure8"):
            assert EXPERIMENTS_MODULE in experiment_dependencies(exp_id)

    def test_local_helpers_followed(self):
        # table5 reaches the machine presets only through the _node helper.
        assert "repro.machine.presets" in experiment_dependencies("table5")

    def test_function_local_imports_followed(self):
        # table4 imports the CCM2 resolutions inside the builder body.
        assert "repro.apps.ccm2.resolutions" in experiment_dependencies("table4")

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            experiment_dependencies("nonsense")


class TestDigests:
    def test_digest_is_stable(self):
        assert experiment_digest("table1") == experiment_digest("table1")

    def test_digest_covers_experiment_id(self):
        assert experiment_digest("table1").key != experiment_digest("table2").key

    def test_source_edit_changes_only_importers(self):
        edit = {"repro.kernels.rfft": b"# hypothetically edited"}
        assert (
            experiment_digest("figure6", sources=edit).key
            != experiment_digest("figure6").key
        )
        assert (
            experiment_digest("table1", sources=edit).key
            == experiment_digest("table1").key
        )

    def test_experiments_module_edit_changes_everything(self):
        edit = {EXPERIMENTS_MODULE: b"# edited"}
        for exp_id, digest in suite_digests(sources=edit).items():
            assert digest.key != experiment_digest(exp_id).key

    def test_suite_digests_cover_registry(self):
        digests = suite_digests()
        assert set(digests) == set(EXPERIMENTS)
        assert len({d.key for d in digests.values()}) == len(digests)

    def test_machine_fingerprint_stable(self):
        assert machine_fingerprint() == machine_fingerprint()
        assert len(machine_fingerprint()) == 64


class TestBuilderEntryPoints:
    def test_covers_every_registered_experiment(self):
        from repro.engine.deps import builder_entry_points

        ids = {exp_id for exp_id, _, _ in builder_entry_points()}
        assert set(EXPERIMENTS) <= ids

    def test_service_resolvers_are_entry_points(self):
        # The service's request-resolution path is held to the same
        # determinism contract as the experiment builders (DET001-006).
        from repro.engine.deps import SERVICE_RESOLVE_MODULE, builder_entry_points

        service = {
            (exp_id, func)
            for exp_id, module, func in builder_entry_points()
            if module == SERVICE_RESOLVE_MODULE
        }
        assert service == {
            ("service:suite", "resolve_suite"),
            ("service:sweep", "resolve_sweep"),
        }

    def test_entries_name_real_functions(self):
        import importlib

        from repro.engine.deps import builder_entry_points

        for _exp_id, module, func in builder_entry_points():
            assert callable(getattr(importlib.import_module(module), func))
