"""Tests for parallel execution, crash isolation, and the orchestrator."""

import multiprocessing
import os
import time

import pytest

from repro.engine.executor import (
    CACHE,
    EXECUTED,
    JobFailure,
    JobResult,
    execute_jobs,
    run_engine,
)
from repro.engine.store import ResultStore, canonical_bytes
from repro.suite.experiments import EXPERIMENTS
from repro.suite.results import Experiment

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not _HAS_FORK, reason="pool tests inject builders via fork inheritance"
)

FAST_IDS = ["table1", "table2", "table3", "sec4.4"]


def _broken_builder():
    raise RuntimeError("synthetic builder failure")


def _sleepy_builder():
    time.sleep(1.5)
    return Experiment(exp_id="sleepy", title="never finishes in time")


def _dying_builder():
    os._exit(13)  # simulates a segfaulting / OOM-killed worker


class TestExecuteJobs:
    def test_serial_runs_inline(self):
        results = execute_jobs(["table2"], jobs=1)
        assert isinstance(results[0], JobResult)
        assert results[0].exp_id == "table2"
        assert results[0].source == EXECUTED
        assert results[0].experiment.passed

    @needs_fork
    def test_parallel_matches_serial_byte_for_byte(self):
        serial = execute_jobs(FAST_IDS, jobs=1)
        parallel = execute_jobs(FAST_IDS, jobs=4)
        for s, p in zip(serial, parallel):
            assert isinstance(s, JobResult) and isinstance(p, JobResult)
            assert canonical_bytes(s.experiment) == canonical_bytes(p.experiment)

    @needs_fork
    def test_results_come_back_in_request_order(self):
        results = execute_jobs(list(reversed(FAST_IDS)), jobs=3)
        assert [r.exp_id for r in results] == list(reversed(FAST_IDS))

    def test_builder_exception_is_an_error_failure(self, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "boom", _broken_builder)
        results = execute_jobs(["table2", "boom"], jobs=1)
        assert isinstance(results[0], JobResult)
        failure = results[1]
        assert isinstance(failure, JobFailure)
        assert failure.kind == "error"
        assert "synthetic builder failure" in failure.message
        assert "RuntimeError" in failure.traceback

    @needs_fork
    def test_builder_exception_in_worker_does_not_kill_the_run(self, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "boom", _broken_builder)
        results = execute_jobs(["boom", "table2"], jobs=2)
        assert isinstance(results[0], JobFailure)
        assert results[0].kind == "error"
        assert isinstance(results[1], JobResult)
        assert results[1].experiment.passed

    @needs_fork
    def test_dying_worker_is_a_crash_failure(self, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "dies", _dying_builder)
        results = execute_jobs(["dies"], jobs=2)
        assert isinstance(results[0], JobFailure)
        assert results[0].kind == "crash"

    @needs_fork
    def test_timeout_is_a_timeout_failure(self, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "sleepy", _sleepy_builder)
        results = execute_jobs(["sleepy", "table2"], jobs=2, timeout_s=0.2)
        assert isinstance(results[0], JobFailure)
        assert results[0].kind == "timeout"
        assert isinstance(results[1], JobResult)

    def test_validation(self):
        with pytest.raises(ValueError):
            execute_jobs(["table2"], jobs=0)
        assert execute_jobs([], jobs=4) == []


class TestRunEngine:
    def test_cold_then_warm(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_engine(FAST_IDS, store=store)
        assert [r.source for r in cold.successes] == [EXECUTED] * len(FAST_IDS)
        warm = run_engine(FAST_IDS, store=store)
        assert [r.source for r in warm.successes] == [CACHE] * len(FAST_IDS)
        for c, w in zip(cold.successes, warm.successes):
            assert canonical_bytes(c.experiment) == canonical_bytes(w.experiment)

    def test_cache_hit_preserves_original_elapsed(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_engine(["table2"], store=store)
        warm = run_engine(["table2"], store=store)
        assert warm.successes[0].elapsed_s == cold.successes[0].elapsed_s

    def test_no_cache_neither_reads_nor_writes(self, tmp_path):
        store = ResultStore(tmp_path)
        run_engine(["table2"], store=store, use_cache=False)
        assert store.entries() == []
        run_engine(["table2"], store=store)  # populate
        report = run_engine(["table2"], store=store, use_cache=False)
        assert report.successes[0].source == EXECUTED

    def test_verify_passes_on_the_real_suite(self, tmp_path):
        run_engine(["table2", "table7"], store=ResultStore(tmp_path), verify=True)
        # And again through the cache-hit path.
        run_engine(["table2", "table7"], store=ResultStore(tmp_path), verify=True)

    def test_failures_are_not_cached(self, tmp_path, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "boom", _broken_builder)
        store = ResultStore(tmp_path)
        report = run_engine(["boom", "table2"], store=store)
        assert len(report.failures) == 1
        assert len(report.executed) == 1
        assert {e.exp_id for e in store.entries()} == {"table2"}

    def test_report_counts_and_summary(self, tmp_path):
        store = ResultStore(tmp_path)
        run_engine(["table1", "table2"], store=store)
        report = run_engine(["table1", "table2", "table3"], store=store)
        assert report.cache_counts() == {
            "hits": 2, "executed": 1, "failed": 0, "total": 3,
        }
        assert "2 cache hits" in report.summary()
        assert "1 executed" in report.summary()


def _injector(*actions):
    from repro.faults.inject import FaultAction, FaultInjector

    return FaultInjector(actions=tuple(FaultAction(**a) for a in actions))


def _fast_retry(**overrides):
    from repro.faults.retry import RetryPolicy

    defaults = dict(
        max_attempts=4,
        base_delay_s=0.001,
        max_delay_s=0.01,
        transient_kinds=("error", "crash", "timeout"),
        sleep=lambda _: None,
    )
    defaults.update(overrides)
    return RetryPolicy(**defaults)


class TestFaultInjection:
    """Injected faults surface as structured failures; retry absorbs them."""

    def test_injected_error_fails_the_first_attempt_only(self):
        injector = _injector(
            dict(site="executor_job", exp_id="table2", kind="error", attempt=0)
        )
        first = execute_jobs(["table2"], jobs=1, injector=injector)
        assert isinstance(first[0], JobFailure) and first[0].kind == "error"
        second = execute_jobs(["table2"], jobs=1, injector=injector)
        assert isinstance(second[0], JobResult)

    def test_injected_timeout_names_the_job_and_elapsed_time(self):
        injector = _injector(
            dict(site="executor_job", exp_id="table2", kind="timeout",
                 attempt=0, delay_s=0.01)
        )
        results = execute_jobs(["table2"], jobs=1, injector=injector)
        failure = results[0]
        assert isinstance(failure, JobFailure) and failure.kind == "timeout"
        assert "table2" in failure.message
        assert " s" in failure.message  # carries the measured elapsed time

    def test_injected_crash_is_simulated_in_serial_mode(self):
        injector = _injector(
            dict(site="executor_job", exp_id="table2", kind="crash", attempt=0)
        )
        results = execute_jobs(["table2"], jobs=1, injector=injector)
        assert isinstance(results[0], JobFailure)
        assert results[0].kind == "crash"  # the engine survived to report it

    def test_injected_slow_fault_still_succeeds(self):
        injector = _injector(
            dict(site="executor_job", exp_id="table2", kind="slow",
                 attempt=0, delay_s=0.001)
        )
        results = execute_jobs(["table2"], jobs=1, injector=injector)
        assert isinstance(results[0], JobResult)

    @needs_fork
    def test_injected_crash_really_kills_a_pool_worker(self):
        injector = _injector(
            dict(site="executor_job", exp_id="table2", kind="crash", attempt=0)
        )
        results = execute_jobs(["table2"], jobs=2, injector=injector)
        assert isinstance(results[0], JobFailure)
        assert results[0].kind == "crash"


class TestRetry:
    def test_transient_failures_are_retried_to_success(self, tmp_path):
        injector = _injector(
            dict(site="executor_job", exp_id="table2", kind="error", attempt=0),
            dict(site="executor_job", exp_id="table2", kind="crash", attempt=1),
        )
        report = run_engine(
            ["table1", "table2"], store=ResultStore(tmp_path),
            retry=_fast_retry(), injector=injector,
        )
        assert not report.failures
        assert report.attempts == {"table1": 1, "table2": 3}
        assert report.retried == ["table2"]
        assert report.retry_rounds == 2
        assert "1 retried" in report.summary()

    def test_attempt_budget_is_bounded(self, tmp_path):
        injector = _injector(*[
            dict(site="executor_job", exp_id="table2", kind="error", attempt=n)
            for n in range(6)
        ])
        report = run_engine(
            ["table2"], store=ResultStore(tmp_path),
            retry=_fast_retry(max_attempts=3), injector=injector,
        )
        assert len(report.failures) == 1
        assert report.attempts == {"table2": 3}

    def test_non_transient_kinds_are_not_retried(self, tmp_path):
        injector = _injector(
            dict(site="executor_job", exp_id="table2", kind="error", attempt=0)
        )
        report = run_engine(
            ["table2"], store=ResultStore(tmp_path),
            retry=_fast_retry(transient_kinds=("crash", "timeout")),
            injector=injector,
        )
        assert len(report.failures) == 1
        assert report.attempts == {"table2": 1}

    def test_backoff_sleeps_are_taken_from_the_policy(self, tmp_path):
        slept = []
        injector = _injector(
            dict(site="executor_job", exp_id="table2", kind="error", attempt=0)
        )
        run_engine(
            ["table2"], store=ResultStore(tmp_path),
            retry=_fast_retry(sleep=slept.append), injector=injector,
        )
        assert len(slept) == 1 and slept[0] > 0

    def test_retried_success_is_byte_identical_and_cached(self, tmp_path):
        store = ResultStore(tmp_path)
        reference = run_engine(["table2"], store=ResultStore(tmp_path / "ref"))
        injector = _injector(
            dict(site="executor_job", exp_id="table2", kind="crash", attempt=0)
        )
        report = run_engine(
            ["table2"], store=store, retry=_fast_retry(), injector=injector,
        )
        assert canonical_bytes(report.successes[0].experiment) == canonical_bytes(
            reference.successes[0].experiment
        )
        assert {e.exp_id for e in store.entries()} == {"table2"}

    @needs_fork
    def test_repeated_pool_crashes_degrade_to_serial(self, tmp_path):
        injector = _injector(
            dict(site="executor_job", exp_id="table2", kind="crash", attempt=0),
            dict(site="executor_job", exp_id="table2", kind="crash", attempt=1),
        )
        report = run_engine(
            ["table2"], store=ResultStore(tmp_path), jobs=2,
            retry=_fast_retry(crash_rounds_before_serial=2), injector=injector,
        )
        assert not report.failures
        assert report.serial_fallback
        assert "(serial fallback)" in report.summary()
