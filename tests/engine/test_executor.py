"""Tests for parallel execution, crash isolation, and the orchestrator."""

import multiprocessing
import os
import time

import pytest

from repro.engine.executor import (
    CACHE,
    EXECUTED,
    JobFailure,
    JobResult,
    execute_jobs,
    run_engine,
)
from repro.engine.store import ResultStore, canonical_bytes
from repro.suite.experiments import EXPERIMENTS
from repro.suite.results import Experiment

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not _HAS_FORK, reason="pool tests inject builders via fork inheritance"
)

FAST_IDS = ["table1", "table2", "table3", "sec4.4"]


def _broken_builder():
    raise RuntimeError("synthetic builder failure")


def _sleepy_builder():
    time.sleep(1.5)
    return Experiment(exp_id="sleepy", title="never finishes in time")


def _dying_builder():
    os._exit(13)  # simulates a segfaulting / OOM-killed worker


class TestExecuteJobs:
    def test_serial_runs_inline(self):
        results = execute_jobs(["table2"], jobs=1)
        assert isinstance(results[0], JobResult)
        assert results[0].exp_id == "table2"
        assert results[0].source == EXECUTED
        assert results[0].experiment.passed

    @needs_fork
    def test_parallel_matches_serial_byte_for_byte(self):
        serial = execute_jobs(FAST_IDS, jobs=1)
        parallel = execute_jobs(FAST_IDS, jobs=4)
        for s, p in zip(serial, parallel):
            assert isinstance(s, JobResult) and isinstance(p, JobResult)
            assert canonical_bytes(s.experiment) == canonical_bytes(p.experiment)

    @needs_fork
    def test_results_come_back_in_request_order(self):
        results = execute_jobs(list(reversed(FAST_IDS)), jobs=3)
        assert [r.exp_id for r in results] == list(reversed(FAST_IDS))

    def test_builder_exception_is_an_error_failure(self, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "boom", _broken_builder)
        results = execute_jobs(["table2", "boom"], jobs=1)
        assert isinstance(results[0], JobResult)
        failure = results[1]
        assert isinstance(failure, JobFailure)
        assert failure.kind == "error"
        assert "synthetic builder failure" in failure.message
        assert "RuntimeError" in failure.traceback

    @needs_fork
    def test_builder_exception_in_worker_does_not_kill_the_run(self, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "boom", _broken_builder)
        results = execute_jobs(["boom", "table2"], jobs=2)
        assert isinstance(results[0], JobFailure)
        assert results[0].kind == "error"
        assert isinstance(results[1], JobResult)
        assert results[1].experiment.passed

    @needs_fork
    def test_dying_worker_is_a_crash_failure(self, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "dies", _dying_builder)
        results = execute_jobs(["dies"], jobs=2)
        assert isinstance(results[0], JobFailure)
        assert results[0].kind == "crash"

    @needs_fork
    def test_timeout_is_a_timeout_failure(self, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "sleepy", _sleepy_builder)
        results = execute_jobs(["sleepy", "table2"], jobs=2, timeout_s=0.2)
        assert isinstance(results[0], JobFailure)
        assert results[0].kind == "timeout"
        assert isinstance(results[1], JobResult)

    def test_validation(self):
        with pytest.raises(ValueError):
            execute_jobs(["table2"], jobs=0)
        assert execute_jobs([], jobs=4) == []


class TestRunEngine:
    def test_cold_then_warm(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_engine(FAST_IDS, store=store)
        assert [r.source for r in cold.successes] == [EXECUTED] * len(FAST_IDS)
        warm = run_engine(FAST_IDS, store=store)
        assert [r.source for r in warm.successes] == [CACHE] * len(FAST_IDS)
        for c, w in zip(cold.successes, warm.successes):
            assert canonical_bytes(c.experiment) == canonical_bytes(w.experiment)

    def test_cache_hit_preserves_original_elapsed(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_engine(["table2"], store=store)
        warm = run_engine(["table2"], store=store)
        assert warm.successes[0].elapsed_s == cold.successes[0].elapsed_s

    def test_no_cache_neither_reads_nor_writes(self, tmp_path):
        store = ResultStore(tmp_path)
        run_engine(["table2"], store=store, use_cache=False)
        assert store.entries() == []
        run_engine(["table2"], store=store)  # populate
        report = run_engine(["table2"], store=store, use_cache=False)
        assert report.successes[0].source == EXECUTED

    def test_verify_passes_on_the_real_suite(self, tmp_path):
        run_engine(["table2", "table7"], store=ResultStore(tmp_path), verify=True)
        # And again through the cache-hit path.
        run_engine(["table2", "table7"], store=ResultStore(tmp_path), verify=True)

    def test_failures_are_not_cached(self, tmp_path, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "boom", _broken_builder)
        store = ResultStore(tmp_path)
        report = run_engine(["boom", "table2"], store=store)
        assert len(report.failures) == 1
        assert len(report.executed) == 1
        assert {e.exp_id for e in store.entries()} == {"table2"}

    def test_report_counts_and_summary(self, tmp_path):
        store = ResultStore(tmp_path)
        run_engine(["table1", "table2"], store=store)
        report = run_engine(["table1", "table2", "table3"], store=store)
        assert report.cache_counts() == {
            "hits": 2, "executed": 1, "failed": 0, "total": 3,
        }
        assert "2 cache hits" in report.summary()
        assert "1 executed" in report.summary()
