"""Tests for the engine -> scheduler-model bridge."""

import pytest

from repro.engine.executor import run_engine
from repro.engine.jobs import (
    MIN_DURATION_S,
    replay_through_nqs,
    suite_batch_jobs,
    suite_jobspec,
)
from repro.engine.store import ResultStore

FAST = ["table1", "table2", "table3", "sec4.4"]


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    store = ResultStore(tmp_path_factory.mktemp("cache"))
    return run_engine(FAST, store=store)


class TestJobSpec:
    def test_one_component_per_experiment(self, report):
        spec = suite_jobspec(report)
        assert len(spec.components) == len(FAST)
        assert {c.name for c in spec.components} == {
            f"suite/{exp_id}" for exp_id in FAST
        }
        assert all(c.duration_s >= MIN_DURATION_S for c in spec.components)

    def test_critical_duration_is_the_slowest(self, report):
        spec = suite_jobspec(report)
        assert spec.critical_duration_s == max(c.duration_s for c in spec.components)

    def test_time_scale(self, report):
        base = suite_jobspec(report)
        scaled = suite_jobspec(report, time_scale=1000.0)
        assert scaled.critical_duration_s >= base.critical_duration_s

    def test_empty_report_rejected(self, tmp_path):
        empty = run_engine([], store=ResultStore(tmp_path))
        with pytest.raises(ValueError):
            suite_jobspec(empty)


class TestNQSReplay:
    def test_batch_jobs_carry_measured_metadata(self, report):
        jobs = suite_batch_jobs(report, time_scale=1000.0)
        assert [j.name for j in jobs] == FAST
        by_id = {r.exp_id: r for r in report.successes}
        for job in jobs:
            assert job.duration_s == pytest.approx(
                max(by_id[job.name].elapsed_s * 1000.0, MIN_DURATION_S)
            )

    def test_replay_accounts_for_every_experiment(self, report):
        replay = replay_through_nqs(report, time_scale=1000.0)
        assert {rec.job for rec in replay.accounting} == set(FAST)
        assert replay.makespan_s > 0
        assert replay.cpu_seconds > 0

    def test_run_limit_serializes_work(self, report):
        wide = replay_through_nqs(report, time_scale=1000.0, run_limit=8)
        narrow = replay_through_nqs(report, time_scale=1000.0, run_limit=1)
        # One job at a time: makespan is the sum of durations.
        total = sum(j.duration_s for j in narrow.jobs)
        assert narrow.makespan_s == pytest.approx(total)
        assert wide.makespan_s <= narrow.makespan_s
