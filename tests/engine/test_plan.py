"""Tests for the incremental planner."""

from repro.engine.deps import EXPERIMENTS_MODULE, experiment_digest
from repro.engine.plan import HIT, MISS, STALE, plan_suite
from repro.engine.store import ResultStore
from repro.suite.experiments import EXPERIMENTS


class TestPlanStates:
    def test_cold_store_is_all_misses(self, tmp_path):
        plan = plan_suite(ResultStore(tmp_path), ["table2", "table3"])
        assert [e.status for e in plan.entries] == [MISS, MISS]
        assert plan.counts() == {"hit": 0, "miss": 2, "stale": 0, "total": 2}
        assert len(plan.to_run) == 2

    def test_stored_result_is_a_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = experiment_digest("table2")
        store.put(digest, EXPERIMENTS["table2"](), 0.01)
        plan = plan_suite(store, ["table2"])
        assert plan.entries[0].status == HIT
        assert plan.to_run == ()

    def test_changed_source_makes_stale_not_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(experiment_digest("table2"), EXPERIMENTS["table2"](), 0.01)
        edited = {"repro.machine.specs": b"# hypothetically edited"}
        plan = plan_suite(store, ["table2"], sources=edited)
        assert plan.entries[0].status == STALE
        assert plan.entries[0].needs_run

    def test_default_plan_covers_whole_suite_in_paper_order(self, tmp_path):
        plan = plan_suite(ResultStore(tmp_path))
        assert [e.exp_id for e in plan.entries] == list(EXPERIMENTS)

    def test_kernel_edit_invalidates_only_importers(self, tmp_path):
        """The acceptance criterion: an edit to one kernel file leaves
        experiments that never import it untouched."""
        store = ResultStore(tmp_path)
        for exp_id in ("table1", "figure6"):
            store.put(experiment_digest(exp_id), EXPERIMENTS[exp_id](), 0.01)
        edited = {"repro.kernels.rfft": b"# edited"}
        plan = plan_suite(store, ["table1", "figure6"], sources=edited)
        by_id = {e.exp_id: e.status for e in plan.entries}
        assert by_id == {"table1": HIT, "figure6": STALE}

    def test_experiments_module_edit_invalidates_everything(self, tmp_path):
        store = ResultStore(tmp_path)
        for exp_id in ("table1", "table2"):
            store.put(experiment_digest(exp_id), EXPERIMENTS[exp_id](), 0.01)
        edited = {EXPERIMENTS_MODULE: b"# edited"}
        plan = plan_suite(store, ["table1", "table2"], sources=edited)
        assert all(e.status == STALE for e in plan.entries)


class TestPlanReporting:
    def test_summary_mentions_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(experiment_digest("table2"), EXPERIMENTS["table2"](), 0.01)
        plan = plan_suite(store, ["table2", "table3"])
        text = plan.summary()
        assert "1 cached" in text
        assert "1 never run" in text
        assert "1 to execute" in text
