"""Tests for the content-addressed result store."""

import json
import multiprocessing

import pytest

from repro.engine.deps import ExperimentDigest
from repro.engine.store import ChunkStore, ResultStore, canonical_bytes, payload_checksum
from repro.suite.results import Experiment

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="concurrency tests fork writer processes",
)


def _digest(exp_id="table_x", key=None):
    return ExperimentDigest(
        exp_id=exp_id, key=key or ("a" * 64), modules=("repro.units",)
    )


def _experiment(exp_id="table_x"):
    exp = Experiment(exp_id=exp_id, title="a test experiment",
                     headers=["k", "v"], rows=[["speed", 865.9]],
                     series={"curve": [(1.0, 2.0), (3.0, 4.0)]},
                     paper_values={"speed": 865.9, 7: "int-keyed"})
    exp.check("holds", True, detail="why")
    return exp


class TestPutGet:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        digest = _digest()
        store.put(digest, _experiment(), elapsed_s=0.25)
        cached = store.get(digest)
        assert cached is not None
        assert cached.exp_id == "table_x"
        assert cached.elapsed_s == 0.25
        assert canonical_bytes(cached.experiment) == canonical_bytes(_experiment())

    def test_contains(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = _digest()
        assert not store.contains(digest)
        store.put(digest, _experiment(), 0.0)
        assert store.contains(digest)

    def test_miss_returns_none(self, tmp_path):
        assert ResultStore(tmp_path).get(_digest()) is None

    def test_mismatched_ids_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        try:
            store.put(_digest(exp_id="other"), _experiment(), 0.0)
        except ValueError:
            return
        raise AssertionError("expected ValueError")

    def test_atomic_write_leaves_no_staging(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_digest(), _experiment(), 0.0)
        assert list(store.tmp_dir.glob("*.tmp")) == []

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = _digest()
        store.put(digest, _experiment(), 0.0)
        store.entry_path(digest).write_text("{not json")
        assert store.get(digest) is None

    def test_wrong_schema_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = _digest()
        store.put(digest, _experiment(), 0.0)
        payload = json.loads(store.entry_path(digest).read_text())
        payload["schema"] = 999
        store.entry_path(digest).write_text(json.dumps(payload))
        assert store.get(digest) is None

    def test_entries_carry_a_verifiable_checksum(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = _digest()
        store.put(digest, _experiment(), 0.0)
        payload = json.loads(store.entry_path(digest).read_text())
        assert payload["checksum"] == payload_checksum(payload["experiment"])


class TestQuarantine:
    def test_unparseable_entry_is_quarantined_on_read(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = _digest()
        store.put(digest, _experiment(), 0.0)
        name = store.entry_path(digest).name
        store.entry_path(digest).write_text("{not json")
        assert store.get(digest) is None
        assert not store.entry_path(digest).exists()
        assert (store.quarantine_dir / name).exists()
        assert store.quarantine_log == [(name, "unparseable JSON")]

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        """A tampered payload that still parses is caught by integrity."""
        store = ResultStore(tmp_path)
        digest = _digest()
        store.put(digest, _experiment(), 0.0)
        payload = json.loads(store.entry_path(digest).read_text())
        payload["experiment"]["title"] = "tampered"
        store.entry_path(digest).write_text(json.dumps(payload))
        assert store.get(digest) is None
        assert store.quarantine_log[0][1] == "checksum mismatch"

    def test_old_schema_is_a_miss_but_not_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = _digest()
        store.put(digest, _experiment(), 0.0)
        payload = json.loads(store.entry_path(digest).read_text())
        payload["schema"] = 1
        store.entry_path(digest).write_text(json.dumps(payload))
        assert store.get(digest) is None
        assert store.entry_path(digest).exists()  # left for overwrite
        assert store.quarantine_log == []

    def test_stats_count_corrupt_and_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        good = _digest("exp.a", "1" * 64)
        bad = _digest("exp.a", "2" * 64)
        gone = _digest("exp.a", "3" * 64)
        for d in (good, bad, gone):
            store.put(d, _experiment("exp.a"), 0.0)
        store.entry_path(bad).write_text("{not json")
        store.entry_path(gone).write_text("{not json")
        store.get(gone)  # quarantined on the way out
        stats = store.stats()
        assert stats.entries == 2
        assert stats.corrupt == 1
        assert stats.quarantined == 1
        assert "1 corrupt" in stats.summary()
        assert "1 quarantined" in stats.summary()

    def test_gc_quarantines_corrupt_entries_even_when_live(self, tmp_path):
        store = ResultStore(tmp_path)
        live = _digest("exp.a", "1" * 64)
        store.put(live, _experiment("exp.a"), 0.0)
        store.entry_path(live).write_text("{not json")
        removed = store.gc({"exp.a": live})
        assert [e.corrupt for e in removed] == [True]
        assert not store.entry_path(live).exists()
        assert len(store.quarantined_entries()) == 1

    def test_fault_injector_hook_corrupts_a_fresh_write(self, tmp_path):
        from repro.faults.inject import FaultAction, FaultInjector

        store = ResultStore(tmp_path)
        store.fault_injector = FaultInjector(actions=(
            FaultAction(site="store_entry", exp_id="table_x", kind="corrupt"),
        ))
        digest = _digest()
        store.put(digest, _experiment(), 0.0)
        assert store.fault_injector.applied_counts() == {"store_entry": 1}
        assert store.get(digest) is None  # quarantined, not served
        assert len(store.quarantined_entries()) == 1

    def test_clear_empties_the_quarantine_too(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = _digest()
        store.put(digest, _experiment(), 0.0)
        store.entry_path(digest).write_text("{not json")
        store.get(digest)
        assert len(store.quarantined_entries()) == 1
        store.clear()
        assert store.quarantined_entries() == []


class TestSurvey:
    def test_entries_and_stats(self, tmp_path):
        store = ResultStore(tmp_path)
        d1 = _digest("exp.a", "1" * 64)
        d2 = _digest("exp.a", "2" * 64)
        d3 = _digest("exp.b", "3" * 64)
        for d in (d1, d2, d3):
            store.put(d, _experiment(d.exp_id), 0.0)
        entries = store.entries()
        assert len(entries) == 3
        # Dots in experiment ids survive the filename encoding.
        assert {e.exp_id for e in entries} == {"exp.a", "exp.b"}
        stats = store.stats({"exp.a": d1, "exp.b": d3})
        assert stats.entries == 3
        assert stats.by_experiment == {"exp.a": 2, "exp.b": 1}
        assert (stats.live, stats.stale) == (2, 1)
        assert stats.total_bytes > 0

    def test_empty_store(self, tmp_path):
        stats = ResultStore(tmp_path / "nowhere").stats()
        assert stats.entries == 0
        assert stats.live is None


class TestHygiene:
    def test_gc_drops_only_unaddressed(self, tmp_path):
        store = ResultStore(tmp_path)
        live = _digest("exp.a", "1" * 64)
        dead = _digest("exp.a", "2" * 64)
        store.put(live, _experiment("exp.a"), 0.0)
        store.put(dead, _experiment("exp.a"), 0.0)
        removed = store.gc({"exp.a": live})
        assert [e.key for e in removed] == [dead.key]
        assert store.contains(live)
        assert not store.contains(dead)

    def test_gc_dry_run_removes_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        dead = _digest("exp.a", "2" * 64)
        store.put(dead, _experiment("exp.a"), 0.0)
        removed = store.gc({}, dry_run=True)
        assert len(removed) == 1
        assert store.contains(dead)

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_digest(), _experiment(), 0.0)
        assert store.clear() == 1
        assert store.entries() == []


class TestCanonicalBytes:
    def test_round_trip_is_byte_identical(self, tmp_path):
        """The store's byte-identity contract, including int-keyed
        paper_values (the table7 shape that once broke it)."""
        store = ResultStore(tmp_path)
        digest = _digest()
        original = _experiment()
        store.put(digest, original, 0.0)
        assert canonical_bytes(store.get(digest).experiment) == canonical_bytes(original)


class TestChunkStore:
    KEY = "b" * 64

    def test_round_trip(self, tmp_path):
        store = ChunkStore(tmp_path / "cache")
        chunk = {"trace_ids": ["hint"], "values": [1.0, 2.5, 0.1]}
        path = store.put("explore", self.KEY, chunk)
        assert path.name == f"explore.{self.KEY}.json"
        assert store.contains("explore", self.KEY)
        assert store.get("explore", self.KEY) == chunk

    def test_floats_round_trip_bit_exactly(self, tmp_path):
        store = ChunkStore(tmp_path / "cache")
        values = [0.1, 1e300, 5e-324, 1.0 / 3.0, 9.2e-9]
        store.put("explore", self.KEY, {"values": values})
        back = store.get("explore", self.KEY)["values"]
        assert all(a == b for a, b in zip(values, back))

    def test_miss_returns_none(self, tmp_path):
        store = ChunkStore(tmp_path / "cache")
        assert store.get("explore", self.KEY) is None
        assert not store.contains("explore", self.KEY)

    def test_bad_addresses_rejected(self, tmp_path):
        store = ChunkStore(tmp_path / "cache")
        for namespace, key in [("", self.KEY), ("a.b", self.KEY),
                               ("a/b", self.KEY), ("explore", "short"),
                               ("explore", "Z" * 64)]:
            try:
                store.entry_path(namespace, key)
            except ValueError:
                continue
            raise AssertionError(f"{namespace!r}/{key!r} accepted")

    def test_unparseable_json_quarantined(self, tmp_path):
        store = ChunkStore(tmp_path / "cache")
        path = store.put("explore", self.KEY, {"v": 1})
        path.write_text("{ not json", encoding="utf-8")
        assert store.get("explore", self.KEY) is None
        assert not path.exists()
        assert (store.quarantine_dir / path.name).exists()
        assert store.quarantine_log[-1][1] == "unparseable JSON"

    def test_checksum_mismatch_quarantined(self, tmp_path):
        store = ChunkStore(tmp_path / "cache")
        path = store.put("explore", self.KEY, {"v": 1})
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["chunk"]["v"] = 2  # tamper without re-checksumming
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.get("explore", self.KEY) is None
        assert store.quarantine_log[-1][1] == "checksum mismatch"

    def test_old_schema_is_a_plain_miss(self, tmp_path):
        store = ChunkStore(tmp_path / "cache")
        path = store.put("explore", self.KEY, {"v": 1})
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["schema"] = 0
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.get("explore", self.KEY) is None
        assert path.exists()  # not quarantined: recompute overwrites

    def test_entries_and_clear(self, tmp_path):
        store = ChunkStore(tmp_path / "cache")
        store.put("explore", "c" * 64, {"v": 1})
        store.put("other", "d" * 64, {"v": 2})
        entries = store.entries()
        assert [e.exp_id for e in entries] == ["explore", "other"]
        assert store.clear() == 2
        assert store.entries() == []

    def test_shares_root_layout_with_result_store(self, tmp_path):
        root = tmp_path / "cache"
        chunk_store = ChunkStore(root)
        result_store = ResultStore(root)
        assert chunk_store.quarantine_dir == result_store.quarantine_dir
        assert chunk_store.tmp_dir == result_store.tmp_dir


def _racing_writer(root, namespace, key, rounds, barrier):
    """Hammer one chunk address from a separate process (fork target)."""
    store = ChunkStore(root)
    barrier.wait()
    for i in range(rounds):
        store.put(namespace, key, {"value": 7, "round": i % 3})


class TestChunkStoreConcurrency:
    """Two processes racing the same chunk key must leave one valid
    entry: the atomic tmp/ + os.replace discipline means readers only
    ever see a complete payload, so nothing gets quarantined."""

    KEY = "e" * 64

    @needs_fork
    def test_racing_writers_one_valid_entry_no_quarantine(self, tmp_path):
        root = tmp_path / "cache"
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(3)
        writers = [
            ctx.Process(
                target=_racing_writer,
                args=(root, "race", self.KEY, 200, barrier),
            )
            for _ in range(2)
        ]
        for writer in writers:
            writer.start()
        store = ChunkStore(root)
        barrier.wait()  # release both writers together
        # read mid-race: every observed payload must be complete
        seen = 0
        while any(w.is_alive() for w in writers):
            chunk = store.get("race", self.KEY)
            if chunk is not None:
                assert chunk["value"] == 7
                seen += 1
        for writer in writers:
            writer.join()
            assert writer.exitcode == 0

        entries = store.entries()
        assert [(e.exp_id, e.key) for e in entries] == [("race", self.KEY)]
        final = store.get("race", self.KEY)
        assert final is not None and final["value"] == 7
        assert store.quarantine_log == []
        assert not store.quarantine_dir.is_dir() or not any(
            store.quarantine_dir.iterdir()
        )

    @needs_fork
    def test_distinct_pids_never_collide_in_tmp(self, tmp_path):
        # The staging name embeds the pid, so concurrent writers never
        # truncate each other's in-flight file; after the dust settles
        # tmp/ holds no leftovers.
        root = tmp_path / "cache"
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        writer = ctx.Process(
            target=_racing_writer, args=(root, "race", self.KEY, 100, barrier)
        )
        writer.start()
        store = ChunkStore(root)
        barrier.wait()
        for i in range(100):
            store.put("race", self.KEY, {"value": 7, "round": i % 3})
        writer.join()
        assert writer.exitcode == 0
        assert list(store.tmp_dir.glob("*.tmp")) == []
        assert store.get("race", self.KEY)["value"] == 7
