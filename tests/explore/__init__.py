"""Tests for the design-space exploration package."""
