"""``python -m repro.explore``: determinism, formats, exit codes."""

import csv
import io
import json

import pytest

from repro.explore.cli import main, parse_axis_specs

SWEEP_ARGS = [
    "sweep",
    "--anchor", "sx4",
    "--axis", "clock.period_ns=6:12:3",
    "--values", "vector.pipes=4,8",
    "--traces", "hint,stream",
]


def run_cli(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestAxisParsing:
    def test_linear_spec(self):
        (axis,) = parse_axis_specs([("axis", "vector.pipes=4:16:4")])
        assert axis.parameter == "vector.pipes"
        assert axis.values == (4.0, 8.0, 12.0, 16.0)

    def test_log_spec(self):
        (axis,) = parse_axis_specs([("log-axis", "memory.banks=128:512:3")])
        assert axis.values == (128.0, 256.0, 512.0)

    def test_values_spec(self):
        (axis,) = parse_axis_specs([("values", "clock.period_ns=8,9.2")])
        assert axis.values == (8.0, 9.2)

    def test_order_preserved(self):
        axes = parse_axis_specs(
            [("values", "vector.pipes=4"), ("axis", "clock.period_ns=6:12:2")]
        )
        assert [a.parameter for a in axes] == ["vector.pipes", "clock.period_ns"]

    @pytest.mark.parametrize(
        "spec",
        [("axis", "vector.pipes"), ("axis", "vector.pipes=1:2"), ("axis", "=1:2:3"),
         ("axis", "vector.pipes=a:b:c"), ("values", "vector.pipes"),
         ("values", "vector.pipes=x")],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_axis_specs([spec])


class TestSweepCommand:
    def test_json_deterministic_across_runs(self, capsys):
        code1, out1, _ = run_cli(SWEEP_ARGS, capsys)
        code2, out2, _ = run_cli(SWEEP_ARGS, capsys)
        assert code1 == code2 == 0
        assert out1 == out2

    def test_json_payload_shape(self, capsys):
        code, out, err = run_cli(SWEEP_ARGS, capsys)
        assert code == 0
        payload = json.loads(out)
        assert payload["command"] == "sweep"
        assert payload["n_machines"] == 6
        assert payload["trace_ids"] == ["hint", "stream"]
        machine = payload["machines"][0]
        assert set(machine["traces"]) == {"hint", "stream"}
        assert "6 machines x 2 traces" in err

    def test_csv_format(self, capsys):
        code, out, _ = run_cli(SWEEP_ARGS + ["--format", "csv"], capsys)
        assert code == 0
        rows = list(csv.reader(io.StringIO(out)))
        assert rows[0][:2] == ["machine", "suite_seconds"]
        assert len(rows) == 1 + 6

    def test_out_file(self, tmp_path, capsys):
        target = tmp_path / "sweep.json"
        code, out, _ = run_cli(SWEEP_ARGS + ["--out", str(target)], capsys)
        assert code == 0
        assert out == ""
        assert json.loads(target.read_text(encoding="utf-8"))["n_machines"] == 6

    def test_payload_matches_library(self, capsys):
        from repro.explore import ParameterSweep, cost_suite_grid, linear_axis
        from repro.explore.sweep import explicit_axis

        _, out, _ = run_cli(SWEEP_ARGS, capsys)
        payload = json.loads(out)
        grid = ParameterSweep(
            "sx4",
            (linear_axis("clock.period_ns", 6, 12, 3),
             explicit_axis("vector.pipes", [4, 8])),
        ).build()
        result = cost_suite_grid(grid, trace_ids=("hint", "stream"))
        for i, machine in enumerate(payload["machines"]):
            assert machine["name"] == result.machine_names[i]
            assert machine["suite_mflops"] == result.suite_mflops[i]

    def test_store_round_trip(self, tmp_path, capsys):
        args = SWEEP_ARGS + ["--store", str(tmp_path), "--chunk-machines", "2"]
        _, cold, err_cold = run_cli(args, capsys)
        _, warm, err_warm = run_cli(args, capsys)
        assert cold == warm
        assert "misses" in err_cold and "hits" in err_warm


class TestParetoCommand:
    def test_json_and_csv_agree(self, capsys):
        args = ["pareto", "--axis", "clock.period_ns=6:12:4", "--include-presets",
                "--traces", "hint,stream"]
        code, out_json, _ = run_cli(args, capsys)
        assert code == 0
        payload = json.loads(out_json)
        code, out_csv, _ = run_cli(args + ["--format", "csv"], capsys)
        assert code == 0
        rows = list(csv.reader(io.StringIO(out_csv)))
        assert len(rows) - 1 == payload["n_frontier"]
        assert [r[1] for r in rows[1:]] == [p["machine"] for p in payload["frontier"]]

    def test_deterministic(self, capsys):
        args = ["pareto", "--axis", "vector.pipes=2:16:5", "--traces", "hint"]
        _, out1, _ = run_cli(args, capsys)
        _, out2, _ = run_cli(args, capsys)
        assert out1 == out2


class TestRanksCommand:
    def test_presets_always_embedded(self, capsys):
        args = ["ranks", "--axis", "clock.period_ns=6:12:3", "--traces",
                "hint,radabs"]
        code, out, _ = run_cli(args, capsys)
        assert code == 0
        payload = json.loads(out)
        names = [m["name"] for m in payload["machines"]]
        assert "Cray Y-MP" in names
        assert payload["reference"] == "Cray Y-MP"
        assert payload["n_inverted"] == sum(m["inverted"] for m in payload["machines"])

    def test_custom_pair(self, capsys):
        args = ["ranks", "--trace-a", "linpack", "--trace-b", "ccm2",
                "--reference", "Cray J90", "--traces", "linpack,ccm2"]
        code, out, _ = run_cli(args, capsys)
        assert code == 0
        payload = json.loads(out)
        assert payload["trace_a"] == "linpack"
        assert payload["reference"] == "Cray J90"


class TestFailureModes:
    def test_unknown_parameter_exits_2(self, capsys):
        code, out, err = run_cli(["sweep", "--axis", "bogus=1:2:3"], capsys)
        assert code == 2
        assert out == ""
        assert "unknown sweep parameter" in err

    def test_unknown_trace_exits_2(self, capsys):
        code, _, err = run_cli(["sweep", "--traces", "nope"], capsys)
        assert code == 2
        assert "unknown trace ids" in err

    def test_vector_axis_on_cache_anchor_exits_2(self, capsys):
        code, _, err = run_cli(
            ["sweep", "--anchor", "sparc20", "--values", "vector.pipes=4",
             "--traces", "hint"],
            capsys,
        )
        assert code == 2
        assert "cache machine" in err

    def test_unknown_reference_exits_2(self, capsys):
        code, _, err = run_cli(
            ["ranks", "--reference", "CDC 6600", "--traces", "hint,radabs"], capsys
        )
        assert code == 2
        assert "reference machine" in err
