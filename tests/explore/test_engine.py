"""Suite-level grid costing: aggregates, chunk caching, cache-key hygiene."""

import json
import math

import numpy as np
import pytest

from repro.engine.store import ChunkStore
from repro.explore.engine import (
    CHUNK_NAMESPACE,
    cost_suite_grid,
    grid_chunk_key,
    suite_trace_ids,
)
from repro.explore.sweep import ParameterSweep, explicit_axis, linear_axis
from repro.machine.grid import MachineGrid
from repro.machine.presets import canonical_machines

TRACE_SUBSET = ("hint", "radabs", "stream")


@pytest.fixture(scope="module")
def grid():
    return MachineGrid.from_processors(list(canonical_machines().values()))


@pytest.fixture(scope="module")
def sweep_grid():
    return ParameterSweep(
        "sx4",
        (linear_axis("clock.period_ns", 6.0, 12.0, 5),
         explicit_axis("vector.pipes", [4, 8, 16])),
        include_presets=True,
    ).build()


class TestAggregates:
    def test_suite_seconds_is_fsum_of_traces(self, grid):
        result = cost_suite_grid(grid, trace_ids=TRACE_SUBSET)
        for j in range(grid.n_machines):
            expected = math.fsum(result.traces[t].seconds[j] for t in TRACE_SUBSET)
            assert result.suite_seconds[j] == expected

    def test_suite_rates_from_totals(self, grid):
        result = cost_suite_grid(grid, trace_ids=TRACE_SUBSET)
        total_fe = math.fsum(result.traces[t].flop_equivalents for t in TRACE_SUBSET)
        for j in range(grid.n_machines):
            assert result.suite_mflops[j] == total_fe / result.suite_seconds[j] / 1e6

    def test_default_is_full_registry(self, grid):
        result = cost_suite_grid(grid)
        assert result.trace_ids == suite_trace_ids()
        assert len(result.trace_ids) == 16

    def test_per_machine_suite_matches_per_machine_execution(self, grid):
        from repro.analysis.traces import build_registered_trace

        result = cost_suite_grid(grid, trace_ids=TRACE_SUBSET)
        machines = list(canonical_machines().values())
        for j, processor in enumerate(machines):
            expected = math.fsum(
                processor.execute(build_registered_trace(t)).seconds
                for t in TRACE_SUBSET
            )
            assert result.suite_seconds[j] == expected

    def test_unknown_trace_rejected(self, grid):
        with pytest.raises(ValueError, match="unknown trace ids"):
            cost_suite_grid(grid, trace_ids=("hint", "bogus"))

    def test_empty_trace_list_rejected(self, grid):
        with pytest.raises(ValueError, match="at least one trace"):
            cost_suite_grid(grid, trace_ids=())

    def test_bad_chunk_size_rejected(self, grid):
        with pytest.raises(ValueError, match="chunk_machines"):
            cost_suite_grid(grid, store=None, chunk_machines=0)


class TestChunkCaching:
    def test_warm_pass_is_bit_identical(self, sweep_grid, tmp_path):
        store = ChunkStore(root=tmp_path)
        cold = cost_suite_grid(
            sweep_grid, trace_ids=TRACE_SUBSET, store=store, chunk_machines=4
        )
        warm = cost_suite_grid(
            sweep_grid, trace_ids=TRACE_SUBSET, store=store, chunk_machines=4
        )
        assert cold.chunk_hits == 0 and cold.chunk_misses > 1
        assert warm.chunk_misses == 0 and warm.chunk_hits == cold.chunk_misses
        for trace_id in TRACE_SUBSET:
            for field in ("cycles", "seconds", "mflops", "bandwidth_bytes_per_s"):
                a = getattr(cold.traces[trace_id], field)
                b = getattr(warm.traces[trace_id], field)
                assert (a == b).all()
        assert (cold.suite_seconds == warm.suite_seconds).all()
        assert (cold.suite_mflops == warm.suite_mflops).all()

    def test_chunked_equals_unchunked(self, sweep_grid, tmp_path):
        chunked = cost_suite_grid(
            sweep_grid,
            trace_ids=TRACE_SUBSET,
            store=ChunkStore(root=tmp_path),
            chunk_machines=5,
        )
        plain = cost_suite_grid(sweep_grid, trace_ids=TRACE_SUBSET)
        for trace_id in TRACE_SUBSET:
            assert (chunked.traces[trace_id].cycles == plain.traces[trace_id].cycles).all()
        assert (chunked.suite_seconds == plain.suite_seconds).all()

    def test_corrupt_chunk_is_recomputed(self, sweep_grid, tmp_path):
        store = ChunkStore(root=tmp_path)
        cold = cost_suite_grid(
            sweep_grid, trace_ids=("hint",), store=store, chunk_machines=4
        )
        victim = next(store.root.joinpath("chunks").glob("explore.*.json"))
        victim.write_text('{"not": "a chunk"}', encoding="utf-8")
        again = cost_suite_grid(
            sweep_grid, trace_ids=("hint",), store=store, chunk_machines=4
        )
        assert again.chunk_misses == 1
        assert again.chunk_hits == cold.chunk_misses - 1
        assert (again.traces["hint"].cycles == cold.traces["hint"].cycles).all()

    def test_dilation_partitions_the_cache(self, sweep_grid, tmp_path):
        store = ChunkStore(root=tmp_path)
        cost_suite_grid(sweep_grid, trace_ids=("hint",), store=store)
        dilated = cost_suite_grid(
            sweep_grid, trace_ids=("hint",), store=store, memory_dilation=1.5
        )
        assert dilated.chunk_hits == 0


class TestChunkKeys:
    def test_key_depends_on_grid_values(self, grid):
        tweaked = grid.subset(np.arange(grid.n_machines))
        tweaked.period_ns[0] *= 2.0
        assert grid_chunk_key(grid, TRACE_SUBSET, 1.0) != grid_chunk_key(
            tweaked, TRACE_SUBSET, 1.0
        )

    def test_key_depends_on_traces_and_dilation(self, grid):
        base = grid_chunk_key(grid, TRACE_SUBSET, 1.0)
        assert grid_chunk_key(grid, ("hint",), 1.0) != base
        assert grid_chunk_key(grid, TRACE_SUBSET, 1.5) != base

    def test_key_depends_on_source_code(self, grid):
        key = grid_chunk_key(grid, TRACE_SUBSET, 1.0, code_digest="0" * 64)
        assert key != grid_chunk_key(grid, TRACE_SUBSET, 1.0, code_digest="1" * 64)

    def test_payloads_are_json_round_trippable(self, grid, tmp_path):
        store = ChunkStore(root=tmp_path)
        cost_suite_grid(grid, trace_ids=("hint",), store=store)
        entry = next(store.root.joinpath("chunks").glob(f"{CHUNK_NAMESPACE}.*.json"))
        payload = json.loads(entry.read_text(encoding="utf-8"))
        assert payload["namespace"] == CHUNK_NAMESPACE
        assert payload["chunk"]["n_machines"] == grid.n_machines
