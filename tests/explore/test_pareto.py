"""Pareto-frontier extraction and the hardware cost proxy."""

import numpy as np
import pytest

from repro.explore.engine import cost_suite_grid
from repro.explore.pareto import cost_proxy, pareto_front, pareto_points
from repro.explore.sweep import ParameterSweep, explicit_axis
from repro.machine.grid import MachineGrid
from repro.machine.presets import canonical_machines


class TestParetoFront:
    def test_single_point_survives(self):
        assert list(pareto_front(np.array([[1.0, 2.0]]), (True, True))) == [0]

    def test_dominated_point_removed(self):
        values = np.array([[1.0, 1.0], [2.0, 2.0]])
        assert list(pareto_front(values, (True, True))) == [1]

    def test_trade_off_points_both_survive(self):
        values = np.array([[1.0, 3.0], [3.0, 1.0]])
        assert list(pareto_front(values, (True, True))) == [0, 1]

    def test_minimize_orientation(self):
        values = np.array([[1.0, 5.0], [2.0, 6.0]])
        # Maximizing both: the second row wins everywhere.
        assert list(pareto_front(values, (True, True))) == [1]
        # Minimizing the second column turns it into a trade-off.
        assert list(pareto_front(values, (True, False))) == [0, 1]

    def test_duplicate_optima_all_survive(self):
        values = np.array([[2.0, 2.0], [2.0, 2.0], [1.0, 1.0]])
        assert list(pareto_front(values, (True, True))) == [0, 1]

    def test_indices_ascending(self):
        rng = np.random.default_rng(7)
        values = rng.uniform(size=(50, 3))
        indices = pareto_front(values, (True, True, False))
        assert list(indices) == sorted(indices)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            pareto_front(np.zeros(3), (True,))
        with pytest.raises(ValueError, match="maximize flags"):
            pareto_front(np.zeros((3, 2)), (True,))

    def test_no_survivor_is_dominated(self):
        rng = np.random.default_rng(11)
        values = rng.uniform(size=(80, 3))
        maximize = (True, False, True)
        survivors = pareto_front(values, maximize)
        oriented = values * np.where(np.asarray(maximize), 1.0, -1.0)
        for i in survivors:
            dominated = (
                (oriented >= oriented[i]).all(axis=1)
                & (oriented > oriented[i]).any(axis=1)
            ).any()
            assert not dominated


class TestCostProxy:
    def test_vector_machines_cost_more_than_cache_machines(self):
        machines = canonical_machines()
        grid = MachineGrid.from_processors(list(machines.values()))
        proxy = cost_proxy(grid)
        by_name = dict(zip(grid.names, proxy))
        assert by_name["NEC SX-4 (9.2 ns)"] > by_name["Cray J90"]
        assert by_name["Cray J90"] > by_name["SUN SPARC20"]

    def test_monotone_in_pipes(self):
        grid = ParameterSweep(
            "sx4", (explicit_axis("vector.pipes", [4, 8, 16]),)
        ).build()
        proxy = cost_proxy(grid)
        assert proxy[0] < proxy[1] < proxy[2]

    def test_faster_clock_costs_more(self):
        grid = ParameterSweep(
            "sx4", (explicit_axis("clock.period_ns", [8.0, 16.0]),)
        ).build()
        proxy = cost_proxy(grid)
        assert proxy[0] > proxy[1]


class TestParetoPoints:
    def test_frontier_over_a_sweep(self):
        grid = ParameterSweep(
            "sx4",
            (explicit_axis("clock.period_ns", [6.0, 9.2, 14.0]),
             explicit_axis("vector.pipes", [4, 8, 16])),
            include_presets=True,
        ).build()
        result = cost_suite_grid(grid, trace_ids=("hint", "stream"))
        points = pareto_points(result, grid)
        assert points
        frontier = {p.machine for p in points}
        # A machine strictly dominated in all three objectives by the
        # faster-clock same-pipes variant cannot be on the frontier.
        proxy = cost_proxy(grid)
        for p in points:
            i = p.index
            assert p.mflops == result.suite_mflops[i]
            assert p.cost_proxy == proxy[i]
        # Deterministic: extracting twice gives the same points.
        assert [p.index for p in pareto_points(result, grid)] == [
            p.index for p in points
        ]
        assert frontier == {result.machine_names[p.index] for p in points}

    def test_mismatched_grid_rejected(self):
        grid = ParameterSweep("sx4").build()
        result = cost_suite_grid(grid, trace_ids=("hint",))
        other = MachineGrid.from_processors(list(canonical_machines().values()))
        with pytest.raises(ValueError, match="machines"):
            pareto_points(result, other)
