"""Rank-inversion maps: the Table 1 effect over a design space."""

import pytest

from repro.explore.engine import cost_suite_grid
from repro.explore.ranks import (
    DEFAULT_REFERENCE,
    DEFAULT_TRACE_PAIR,
    rank_inversion_map,
)
from repro.explore.sweep import ParameterSweep, explicit_axis, linear_axis
from repro.machine.grid import MachineGrid
from repro.machine.presets import canonical_machines


@pytest.fixture(scope="module")
def preset_result():
    grid = MachineGrid.from_processors(list(canonical_machines().values()))
    return cost_suite_grid(grid, trace_ids=DEFAULT_TRACE_PAIR)


class TestRankInversionMap:
    def test_reference_machine_is_never_inverted(self, preset_result):
        inversion = rank_inversion_map(preset_result)
        ref = preset_result.machine_names.index(DEFAULT_REFERENCE)
        assert not inversion.beats_reference_a[ref]
        assert not inversion.beats_reference_b[ref]
        assert not inversion.inverted[ref]

    def test_verdicts_follow_mflops(self, preset_result):
        inversion = rank_inversion_map(preset_result)
        ref = preset_result.machine_names.index(DEFAULT_REFERENCE)
        a = preset_result.traces[DEFAULT_TRACE_PAIR[0]].mflops
        b = preset_result.traces[DEFAULT_TRACE_PAIR[1]].mflops
        for i in range(inversion.n_machines):
            assert inversion.beats_reference_a[i] == (a[i] > a[ref])
            assert inversion.beats_reference_b[i] == (b[i] > b[ref])
            assert inversion.inverted[i] == (
                inversion.beats_reference_a[i] != inversion.beats_reference_b[i]
            )

    def test_inverted_names(self, preset_result):
        inversion = rank_inversion_map(preset_result)
        assert set(inversion.inverted_names) == {
            name
            for name, flag in zip(inversion.machine_names, inversion.inverted)
            if flag
        }
        assert inversion.n_inverted == len(inversion.inverted_names)

    def test_sweep_finds_inversions(self):
        # Around the reference's own operating point, slowing the clock
        # and varying pipes produces machines that beat the Y-MP on one
        # trace but not the other.
        grid = ParameterSweep(
            "ymp",
            (linear_axis("clock.period_ns", 3.0, 12.0, 8),
             explicit_axis("vector.pipes", [1, 2, 4])),
            include_presets=True,
        ).build()
        result = cost_suite_grid(grid, trace_ids=DEFAULT_TRACE_PAIR)
        inversion = rank_inversion_map(result)
        assert 0 < inversion.n_inverted < inversion.n_machines

    def test_unknown_trace_rejected(self, preset_result):
        with pytest.raises(ValueError, match="not in result"):
            rank_inversion_map(preset_result, trace_a="linpack")

    def test_unknown_reference_rejected(self, preset_result):
        with pytest.raises(ValueError, match="reference machine"):
            rank_inversion_map(preset_result, reference="CDC 6600")

    def test_custom_pair_and_reference(self):
        grid = MachineGrid.from_processors(list(canonical_machines().values()))
        result = cost_suite_grid(grid, trace_ids=("linpack", "ccm2"))
        inversion = rank_inversion_map(
            result, trace_a="linpack", trace_b="ccm2", reference="Cray J90"
        )
        assert inversion.reference == "Cray J90"
        assert inversion.trace_a == "linpack"
