"""Parameter sweeps: axis builders, grid lowering, degradation parity."""

import numpy as np
import pytest

from repro.analysis.traces import build_registered_trace
from repro.explore.sweep import (
    PARAMETERS,
    Axis,
    ParameterSweep,
    explicit_axis,
    linear_axis,
    log_axis,
)
from repro.faults.degraded import Degradation, degrade_processor
from repro.machine.grid import cost_trace_grid
from repro.machine.presets import CANONICAL_PRESET_IDS, preset_processor


class TestAxes:
    def test_linear_axis_endpoints(self):
        axis = linear_axis("clock.period_ns", 4.0, 16.0, 4)
        assert axis.values[0] == 4.0 and axis.values[-1] == 16.0
        assert len(axis.values) == 4

    def test_log_axis_geometric(self):
        axis = log_axis("memory.banks", 128, 2048, 5)
        ratios = np.diff(np.log(axis.values))
        assert np.allclose(ratios, ratios[0])

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            log_axis("memory.banks", 0, 2048, 5)

    def test_explicit_axis(self):
        axis = explicit_axis("vector.pipes", [4, 8, 16])
        assert axis.values == (4.0, 8.0, 16.0)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep parameter"):
            Axis("vector.bogus", (1.0,))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            Axis("vector.pipes", ())

    def test_every_parameter_maps_to_a_grid_column_or_degradation(self):
        from repro.machine.grid import MachineGrid

        grid = MachineGrid.from_processors([preset_processor("sx4")])
        for name, spec in PARAMETERS.items():
            if spec.degrade is None:
                assert hasattr(grid, spec.column), name
            else:
                assert spec.degrade in ("pipes", "banks"), name


class TestBuild:
    def test_cartesian_shape_and_names(self):
        sweep = ParameterSweep(
            "sx4",
            (explicit_axis("clock.period_ns", [8.0, 9.2]),
             explicit_axis("vector.pipes", [4, 8, 16])),
        )
        assert sweep.n_points == 6
        grid = sweep.build()
        assert grid.n_machines == 6
        # First axis varies slowest.
        assert grid.names[0] == "sx4[clock.period_ns=8,vector.pipes=4]"
        assert grid.names[1] == "sx4[clock.period_ns=8,vector.pipes=8]"
        assert grid.names[3] == "sx4[clock.period_ns=9.2,vector.pipes=4]"
        assert list(grid.period_ns) == [8.0, 8.0, 8.0, 9.2, 9.2, 9.2]
        assert list(grid.pipes) == [4.0, 8.0, 16.0] * 2

    def test_no_axes_is_the_anchor(self):
        grid = ParameterSweep("ymp").build()
        assert grid.n_machines == 1
        trace = build_registered_trace("hint")
        assert cost_trace_grid(trace, grid).cycles[0] == (
            preset_processor("ymp").execute(trace).cycles
        )

    def test_every_anchor_builds(self):
        for preset_id in CANONICAL_PRESET_IDS:
            grid = ParameterSweep(preset_id).build()
            assert grid.n_machines == 1

    def test_unknown_anchor_rejected(self):
        with pytest.raises(ValueError, match="unknown machine preset"):
            ParameterSweep("cray-2").build()

    def test_vector_axis_needs_vector_anchor(self):
        sweep = ParameterSweep("sparc20", (explicit_axis("vector.pipes", [4]),))
        with pytest.raises(ValueError, match="cache machine"):
            sweep.build()

    def test_integer_parameters_are_rounded(self):
        grid = ParameterSweep(
            "sx4", (linear_axis("memory.banks", 100, 200, 3),)
        ).build()
        assert grid.banks.dtype == np.int64
        assert list(grid.banks) == [100, 150, 200]

    def test_include_presets_prepends_canonical_machines(self):
        sweep = ParameterSweep(
            "sx4", (explicit_axis("clock.period_ns", [8.0]),), include_presets=True
        )
        grid = sweep.build()
        assert grid.n_machines == 7
        assert grid.names[4] == "NEC SX-4 (9.2 ns)"
        assert grid.names[-1] == "sx4[clock.period_ns=8]"

    def test_swept_point_materializes_to_real_processor(self):
        grid = ParameterSweep(
            "sx4", (explicit_axis("vector.pipes", [4]),)
        ).build()
        trace = build_registered_trace("linpack")
        cost = cost_trace_grid(trace, grid)
        assert cost.cycles[0] == grid.materialize(0).execute(trace).cycles


class TestDegradationAxes:
    @pytest.mark.parametrize("offline", [0, 1, 2, 4])
    def test_offline_pipes_matches_degrade_processor(self, offline):
        grid = ParameterSweep(
            "sx4", (explicit_axis("degraded.offline_pipes", [offline]),)
        ).build()
        degraded = degrade_processor(
            preset_processor("sx4"), Degradation(name="t", offline_pipes=offline)
        )
        trace = build_registered_trace("radabs")
        cost = cost_trace_grid(trace, grid)
        report = degraded.execute(trace, engine="compiled")
        assert cost.cycles[0] == report.cycles
        assert cost.mflops[0] == report.mflops

    @pytest.mark.parametrize("offline", [0, 64, 512])
    def test_offline_banks_matches_degrade_processor(self, offline):
        grid = ParameterSweep(
            "sx4", (explicit_axis("degraded.offline_banks", [offline]),)
        ).build()
        degraded = degrade_processor(
            preset_processor("sx4"), Degradation(name="t", offline_banks=offline)
        )
        trace = build_registered_trace("stream")
        cost = cost_trace_grid(trace, grid)
        assert cost.cycles[0] == degraded.execute(trace, engine="compiled").cycles

    def test_degradation_applies_after_direct_axes(self):
        grid = ParameterSweep(
            "sx4",
            (explicit_axis("vector.pipes", [4]),
             explicit_axis("degraded.offline_pipes", [1])),
        ).build()
        assert grid.pipes[0] == 3.0

    def test_all_pipes_offline_rejected(self):
        sweep = ParameterSweep(
            "ymp", (explicit_axis("degraded.offline_pipes", [99]),)
        )
        with pytest.raises(ValueError, match="every pipe offline"):
            sweep.build()

    def test_all_banks_offline_rejected(self):
        sweep = ParameterSweep(
            "sx4", (explicit_axis("degraded.offline_banks", [10_000]),)
        )
        with pytest.raises(ValueError, match="every bank offline"):
            sweep.build()
