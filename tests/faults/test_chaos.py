"""Tests for the chaos harness and the faults CLI."""

import json

from repro.faults.chaos import QUICK_EXPERIMENTS, run_chaos
from repro.faults.cli import main
from repro.suite.experiments import EXPERIMENTS

#: A deliberately tiny subset so the harness runs in test time; the CI
#: chaos-smoke job runs the real --quick subset.
TINY_IDS = ("table1", "table2")


class TestRunChaos:
    def test_passes_and_is_deterministic(self, tmp_path):
        """One seeded run holds every invariant, and a second run with
        the same seed produces a byte-identical report (the acceptance
        criterion CI diffs)."""
        first = run_chaos(seed=1996, quick=True, exp_ids=TINY_IDS,
                          workdir=tmp_path / "a")
        assert first.passed, first.summary()
        check_names = {check.name for check in first.checks}
        assert {
            "clean_run_succeeds",
            "every_job_completes_within_retry_budget",
            "chaos_archives_byte_identical",
            "fault_counters_match_injector",
            "attempts_match_plan",
            "corrupt_entries_quarantined",
            "corrupt_entries_recomputed",
            "recovered_archives_byte_identical",
            "degraded_costing_parity_bit_exact",
            "recovery_bit_identical_ccm2",
            "ccm2_mass_conserved",
            "nqs_requeued_jobs_all_finish",
            "service_deadline_expires_before_start",
            "service_watchdog_requeues_wedged_job",
            "service_stale_epoch_write_fenced",
            "service_worker_fault_supervised",
            "service_drain_checkpoints_and_journals",
            "service_drain_rejects_with_retry_after",
            "service_restart_resumes_checkpointed_job",
            "service_archives_byte_identical",
            "service_no_orphan_segments",
        } <= check_names
        second = run_chaos(seed=1996, quick=True, exp_ids=TINY_IDS,
                           workdir=tmp_path / "b")
        as_json = lambda r: json.dumps(r.to_dict(), sort_keys=True)  # noqa: E731
        assert as_json(first) == as_json(second)

    def test_quick_subset_ids_are_real(self):
        assert set(QUICK_EXPERIMENTS) <= set(EXPERIMENTS)

    def test_report_carries_no_wall_clock(self, tmp_path):
        report = run_chaos(seed=3, quick=True, exp_ids=("table1",),
                           workdir=tmp_path)
        payload = json.dumps(report.to_dict())
        assert "elapsed" not in payload
        assert "wall_s" not in payload


class TestFaultsCli:
    def test_plan_subcommand_prints_actions(self, capsys):
        assert main(["plan", "--seed", "7", "--ids", "table1", "table2"]) == 0
        out = capsys.readouterr().out
        assert "fault plan (seed 7)" in out

    def test_plan_json_round_trips(self, capsys):
        assert main(["plan", "--seed", "7", "--ids", "table1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["seed"] == 7
        assert isinstance(payload["actions"], list)

    def test_unknown_ids_exit_2(self, capsys):
        assert main(["plan", "--seed", "1", "--ids", "nonsense"]) == 2
        assert main(["chaos", "--seed", "1", "--ids", "nonsense"]) == 2
