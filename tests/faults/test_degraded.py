"""Tests for degraded machines and their costing-engine parity."""

import pytest

from repro.analysis.traces import build_registered_trace
from repro.faults.degraded import (
    IXS_LANES_PER_CHANNEL,
    NODE_IOPS,
    PRESETS,
    DegradedMachine,
    Degradation,
    degrade_crossbar,
    degrade_iop,
    degrade_processor,
    standard_degradations,
)
from repro.machine.iop import IOProcessor
from repro.machine.ixs import InternodeCrossbar
from repro.machine.presets import sx4_processor


class TestDegradation:
    def test_baseline_is_baseline(self):
        assert Degradation().is_baseline
        assert not Degradation(offline_banks=1).is_baseline

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            Degradation(offline_pipes=-1)

    def test_one_lane_and_one_iop_must_survive(self):
        with pytest.raises(ValueError):
            Degradation(offline_ixs_lanes=IXS_LANES_PER_CHANNEL)
        with pytest.raises(ValueError):
            Degradation(offline_iops=NODE_IOPS)

    def test_to_dict_round_trips_the_fields(self):
        degradation = Degradation(name="x", offline_banks=3)
        assert degradation.to_dict()["offline_banks"] == 3


class TestDegradeProcessor:
    def test_baseline_returns_the_same_instance(self):
        cpu = sx4_processor()
        assert degrade_processor(cpu, Degradation()) is cpu

    def test_half_pipes_halves_throughput(self):
        cpu = sx4_processor()
        half = Degradation(name="half-pipes", offline_pipes=cpu.vector.pipes // 2)
        degraded = degrade_processor(cpu, half)
        assert degraded.vector.pipes == cpu.vector.pipes // 2
        assert "[half-pipes]" in degraded.name
        # Intrinsic per-element rates stretch by the surviving-pipe ratio.
        for name, rate in cpu.vector.intrinsic_cycles_per_element.items():
            assert degraded.vector.intrinsic_cycles_per_element[name] == 2 * rate

    def test_offline_banks_shrink_the_interleave(self):
        cpu = sx4_processor()
        degraded = degrade_processor(
            cpu, Degradation(name="hb", offline_banks=cpu.memory.banks // 2)
        )
        assert degraded.memory.banks == cpu.memory.banks // 2

    def test_scalar_side_untouched(self):
        cpu = sx4_processor()
        degraded = degrade_processor(
            cpu, Degradation(name="hp", offline_pipes=cpu.vector.pipes // 2)
        )
        assert degraded.scalar == cpu.scalar

    def test_cannot_offline_every_pipe(self):
        cpu = sx4_processor()
        with pytest.raises(ValueError, match="cannot offline"):
            degrade_processor(cpu, Degradation(offline_pipes=cpu.vector.pipes))

    def test_degradation_slows_a_real_trace(self):
        # radabs is intrinsic-heavy, so it feels the stretched
        # per-element rates directly (copy is memory-bound and would
        # hide a pipe degradation).
        trace = build_registered_trace("radabs")
        baseline = sx4_processor().execute(trace)
        machine = DegradedMachine(
            "sx4", Degradation(name="half-pipes", offline_pipes=4)
        )
        assert machine.processor().execute(trace).cycles > baseline.cycles


class TestDegradeInterconnect:
    def test_crossbar_lanes_scale_channel_bandwidth(self):
        ixs = InternodeCrossbar()
        degraded = degrade_crossbar(ixs, Degradation(offline_ixs_lanes=1))
        assert degraded.channel_bytes_per_s == pytest.approx(
            ixs.channel_bytes_per_s * 3 / 4
        )

    def test_iop_bandwidth_scales_with_survivors(self):
        iop = IOProcessor()
        degraded = degrade_iop(iop, Degradation(offline_iops=2))
        assert degraded.bandwidth_bytes_per_s == pytest.approx(
            iop.bandwidth_bytes_per_s / 2
        )

    def test_noop_degradations_return_the_instance(self):
        ixs, iop = InternodeCrossbar(), IOProcessor()
        assert degrade_crossbar(ixs, Degradation()) is ixs
        assert degrade_iop(iop, Degradation()) is iop


class TestDegradedMachine:
    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown preset"):
            DegradedMachine("sx5")

    def test_standard_degradations_start_at_baseline(self):
        for preset in PRESETS:
            sweep = standard_degradations(preset)
            assert sweep[0].is_baseline
            assert len({d.name for d in sweep}) == len(sweep)

    def test_costing_engines_agree_bit_exactly_when_degraded(self):
        """The tentpole parity claim, in miniature (the chaos harness
        sweeps the full presets x degradations x traces grid)."""
        trace = build_registered_trace("stream")
        for degradation in standard_degradations("sx4"):
            cpu = DegradedMachine("sx4", degradation).processor()
            legacy = cpu.execute(trace, engine="legacy")
            compiled = cpu.execute(trace, engine="compiled")
            assert legacy.cycles == compiled.cycles, degradation.name
            assert legacy.seconds == compiled.seconds, degradation.name
