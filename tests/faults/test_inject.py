"""Tests for the fault vocabulary, the injector, and the hook."""

import json

import pytest

from repro.faults.inject import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultAction,
    FaultInjector,
    corrupt_file,
    fault_point,
)


class TestFaultAction:
    def test_round_trip(self):
        action = FaultAction(site="executor_job", exp_id="table1",
                             kind="timeout", attempt=1, delay_s=0.5)
        assert FaultAction.from_dict(action.to_dict()) == action

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultAction(site="nowhere", exp_id="table1", kind="error")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultAction(site="executor_job", exp_id="table1", kind="gremlins")

    def test_store_faults_must_corrupt(self):
        with pytest.raises(ValueError, match="must be kind 'corrupt'"):
            FaultAction(site="store_entry", exp_id="table1", kind="crash")

    def test_jobs_cannot_corrupt(self):
        with pytest.raises(ValueError, match="store entries"):
            FaultAction(site="executor_job", exp_id="table1", kind="corrupt")

    def test_directive_carries_worker_flag(self):
        action = FaultAction(site="executor_job", exp_id="t", kind="crash")
        assert action.directive(in_worker=True)["in_worker"] is True
        assert action.directive(in_worker=False)["in_worker"] is False

    def test_vocabulary_is_closed(self):
        assert set(FAULT_SITES) == {
            "executor_job",
            "store_entry",
            "service_submit",
            "service_drain",
            "worker_heartbeat",
        }
        assert "corrupt" in FAULT_KINDS

    def test_service_submit_kinds_are_limited(self):
        FaultAction(site="service_submit", exp_id="j", kind="error")
        FaultAction(site="service_submit", exp_id="j", kind="slow", delay_s=0.1)
        with pytest.raises(ValueError, match="service_submit"):
            FaultAction(site="service_submit", exp_id="j", kind="crash")

    def test_lifecycle_sites_are_limited_too(self):
        FaultAction(site="service_drain", exp_id="drain", kind="error")
        FaultAction(site="worker_heartbeat", exp_id="worker", kind="slow",
                    delay_s=0.1)
        with pytest.raises(ValueError, match="worker_heartbeat"):
            FaultAction(site="worker_heartbeat", exp_id="worker", kind="crash")
        with pytest.raises(ValueError, match="service_drain"):
            FaultAction(site="service_drain", exp_id="drain", kind="corrupt")


class TestFaultInjector:
    def test_matches_on_submission_count(self):
        """executor_job actions key on the Nth submission of the id."""
        injector = FaultInjector(actions=(
            FaultAction(site="executor_job", exp_id="t", kind="error", attempt=0),
            FaultAction(site="executor_job", exp_id="t", kind="crash", attempt=1),
        ))
        first = injector.poll("executor_job", "t")
        second = injector.poll("executor_job", "t")
        third = injector.poll("executor_job", "t")
        assert (first.kind, second.kind, third) == ("error", "crash", None)
        assert injector.unapplied() == []

    def test_actions_fire_at_most_once(self):
        injector = FaultInjector(actions=(
            FaultAction(site="store_entry", exp_id="t", kind="corrupt"),
        ))
        assert injector.poll("store_entry", "t") is not None
        assert injector.poll("store_entry", "t") is None

    def test_other_ids_unaffected(self):
        injector = FaultInjector(actions=(
            FaultAction(site="executor_job", exp_id="t", kind="error"),
        ))
        assert injector.poll("executor_job", "other") is None
        assert injector.poll("executor_job", "t") is not None

    def test_applied_counts_by_site(self):
        injector = FaultInjector(actions=(
            FaultAction(site="executor_job", exp_id="a", kind="error"),
            FaultAction(site="store_entry", exp_id="a", kind="corrupt"),
        ))
        injector.poll("executor_job", "a")
        injector.poll("store_entry", "a")
        assert injector.applied_counts() == {"executor_job": 1, "store_entry": 1}


class TestFaultPoint:
    def test_no_injector_is_free(self):
        assert fault_point("executor_job", None, "t") is None

    def test_unknown_site_rejected_even_without_injector(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            fault_point("typo_site", None, "t")

    def test_returns_the_matching_action(self):
        injector = FaultInjector(actions=(
            FaultAction(site="executor_job", exp_id="t", kind="slow", delay_s=0.0),
        ))
        action = fault_point("executor_job", injector, "t")
        assert action is not None and action.kind == "slow"
        assert injector.applied == [action]


class TestCorruptFile:
    def test_preserves_length_but_breaks_json(self, tmp_path):
        path = tmp_path / "entry.json"
        payload = {"schema": 2, "experiment": {"rows": list(range(50))}}
        path.write_text(json.dumps(payload, indent=1))
        before = path.stat().st_size
        corrupt_file(path)
        assert path.stat().st_size == before
        with pytest.raises(ValueError):
            json.loads(path.read_text())
