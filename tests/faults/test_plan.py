"""Tests for seeded fault-plan sampling and serialization."""

import pytest

from repro.faults.inject import FAILING_KINDS
from repro.faults.plan import FaultPlan, sample_plan

IDS = ("table1", "table2", "sec2", "figure6")


class TestSampling:
    def test_same_seed_same_plan(self):
        assert FaultPlan.sample(42, IDS) == FaultPlan.sample(42, IDS)

    def test_id_order_does_not_matter(self):
        assert FaultPlan.sample(42, IDS) == FaultPlan.sample(42, tuple(reversed(IDS)))

    def test_different_seeds_differ(self):
        plans = {FaultPlan.sample(seed, IDS).actions for seed in range(8)}
        assert len(plans) > 1

    def test_failures_fit_the_retry_budget(self):
        """Never more than max_failures failing attempts per job, and they
        occupy attempts 0..n-1 so one clean attempt always remains."""
        for seed in range(10):
            plan = FaultPlan.sample(seed, IDS, max_failures=2)
            for exp_id in IDS:
                failing = sorted(
                    a.attempt for a in plan.actions
                    if a.exp_id == exp_id and a.site == "executor_job"
                    and a.kind in FAILING_KINDS
                )
                assert len(failing) <= 2
                assert failing == list(range(len(failing)))

    def test_fault_rate_zero_yields_clean_plan(self):
        plan = FaultPlan.sample(1, IDS, fault_rate=0.0, slow_rate=0.0,
                                corrupt_rate=0.0)
        assert plan.actions == ()
        assert "clean run" in plan.summary()

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.sample(1, IDS, fault_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan.sample(1, IDS, max_failures=0)

    def test_alias(self):
        assert sample_plan(3, IDS) == FaultPlan.sample(3, IDS)


class TestSerialization:
    def test_save_load_round_trip(self, tmp_path):
        plan = FaultPlan.sample(1996, IDS)
        path = plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            FaultPlan.from_dict({"schema": 99, "seed": 1, "actions": []})

    def test_counts_and_summary(self):
        plan = FaultPlan.sample(1996, IDS)
        assert sum(plan.counts().values()) == len(plan.actions)
        assert f"seed {plan.seed}" in plan.summary()

    def test_injector_replays_from_the_top(self):
        plan = FaultPlan.sample(1996, IDS)
        a, b = plan.injector(), plan.injector()
        assert a is not b
        assert a.actions == b.actions == plan.actions
