"""Tests for the kill-and-restore recovery harness."""

import numpy as np
import pytest

from repro.faults.recovery import (
    RecoveryReport,
    app_factories,
    run_with_recovery,
    states_identical,
)


class ToyModel:
    """A cheap deterministic integration with checkpointable state."""

    def __init__(self):
        self.field = np.linspace(0.0, 1.0, 8)
        self.steps_done = 0

    def step(self):
        self.field = np.cos(self.field) + 0.01 * self.steps_done
        self.steps_done += 1

    def run(self, steps):
        for _ in range(steps):
            self.step()

    def checkpoint_state(self):
        return {"field": self.field, "steps_done": self.steps_done}

    def restore_state(self, state):
        self.field = np.asarray(state["field"])
        self.steps_done = int(state["steps_done"])


class TestRunWithRecovery:
    def test_recovered_state_is_bit_identical(self):
        for kill_after in range(1, 10):
            recovered, _ = run_with_recovery(
                ToyModel, steps=9, checkpoint_every=3, kill_after_step=kill_after
            )
            uninterrupted = ToyModel()
            uninterrupted.run(9)
            assert states_identical(recovered, uninterrupted), kill_after

    def test_report_accounts_for_the_replay(self):
        _, report = run_with_recovery(
            ToyModel, steps=9, checkpoint_every=3, kill_after_step=5
        )
        assert isinstance(report, RecoveryReport)
        assert report.restored_to_step == 3
        assert report.replayed_steps == 2
        # t=0 plus one checkpoint per completed multiple of 3 (the
        # replayed steps 4..5 re-cross no checkpoint boundary).
        assert report.checkpoints_taken == 1 + 3
        assert report.to_dict()["kill_after_step"] == 5

    def test_kill_at_a_checkpoint_replays_nothing(self):
        _, report = run_with_recovery(
            ToyModel, steps=9, checkpoint_every=3, kill_after_step=6
        )
        assert report.restored_to_step == 6
        assert report.replayed_steps == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_with_recovery(ToyModel, steps=0, checkpoint_every=1,
                              kill_after_step=1)
        with pytest.raises(ValueError):
            run_with_recovery(ToyModel, steps=5, checkpoint_every=2,
                              kill_after_step=6)


class TestStatesIdentical:
    def test_detects_a_single_ulp_difference(self):
        a, b = ToyModel(), ToyModel()
        assert states_identical(a, b)
        b.field = np.nextafter(b.field, np.inf)
        assert not states_identical(a, b)

    def test_detects_missing_keys(self):
        a, b = ToyModel(), ToyModel()
        del b.__dict__["steps_done"]
        b.checkpoint_state = lambda: {"field": b.field}
        assert not states_identical(a, b)


class TestAppFactories:
    def test_covers_the_three_applications(self):
        assert set(app_factories()) == {"ccm2", "mom", "pop"}

    def test_pop_kill_and_restore_is_bit_identical(self):
        """One real application end to end (the chaos harness covers
        all three; POP is the cheapest)."""
        make = app_factories()["pop"]
        recovered, _ = run_with_recovery(
            make, steps=4, checkpoint_every=2, kill_after_step=3
        )
        uninterrupted = make()
        uninterrupted.run(4)
        assert states_identical(recovered, uninterrupted)
