"""Tests for the retry policy and its deterministic backoff."""

import pytest

from repro.faults.retry import RetryPolicy, chaos_retry_policy, deterministic_jitter


class TestJitter:
    def test_deterministic_and_bounded(self):
        draws = [deterministic_jitter("table1", n) for n in range(16)]
        assert draws == [deterministic_jitter("table1", n) for n in range(16)]
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_varies_with_identity(self):
        assert deterministic_jitter("a", 1) != deterministic_jitter("b", 1)
        assert deterministic_jitter("a", 1) != deterministic_jitter("a", 2)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_until_the_cap(self):
        policy = RetryPolicy(base_delay_s=0.1, backoff_factor=2.0,
                             max_delay_s=0.4, jitter_fraction=0.0)
        assert policy.delay_s("t", 1) == pytest.approx(0.1)
        assert policy.delay_s("t", 2) == pytest.approx(0.2)
        assert policy.delay_s("t", 3) == pytest.approx(0.4)
        assert policy.delay_s("t", 4) == pytest.approx(0.4)  # capped

    def test_jitter_stretches_by_at_most_the_fraction(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=1.0,
                             jitter_fraction=0.25)
        delay = policy.delay_s("t", 1)
        assert 1.0 <= delay <= 1.25
        assert delay == policy.delay_s("t", 1)  # reproducible

    def test_delay_requires_a_retry_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_s("t", 0)

    def test_transience(self):
        policy = RetryPolicy()
        assert policy.is_transient("crash")
        assert policy.is_transient("timeout")
        assert not policy.is_transient("error")

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(crash_rounds_before_serial=0)


class TestChaosPolicy:
    def test_retries_every_failure_kind_quickly(self):
        policy = chaos_retry_policy()
        assert policy.is_transient("error")
        assert policy.is_transient("crash")
        assert policy.is_transient("timeout")
        assert policy.max_delay_s <= 0.1
