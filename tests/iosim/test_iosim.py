"""Tests for the Section 4.5 I/O benchmarks: disk history, HIPPI, network."""

import pytest

from repro.iosim import history, hippi, network
from repro.machine.iop import DiskArray
from repro.units import GB, MB


class TestHistoryBenchmark:
    def test_record_layout(self):
        spec = history.HistoryTapeSpec(res=_res("T42L18"), fields=15)
        # One latitude record: nlon * nlev * fields * 8 bytes.
        assert spec.record_bytes == 128 * 18 * 15 * 8
        assert spec.records == 64
        assert spec.tape_bytes == spec.header_bytes + 64 * spec.record_bytes

    def test_rates_scale_with_resolution(self):
        t42 = history.history_io_benchmark("T42L18")
        t170 = history.history_io_benchmark("T170L18")
        # Bigger tapes amortise positioning: higher effective rate.
        assert t170["tape_bytes"] > 10 * t42["tape_bytes"]
        assert t170["write_rate_bytes_per_s"] > t42["write_rate_bytes_per_s"]

    def test_multiple_writers_help(self):
        one = history.history_io_benchmark("T106L18", writers=1)
        eight = history.history_io_benchmark("T106L18", writers=8)
        assert eight["write_seconds"] < one["write_seconds"]

    def test_write_rate_below_stripe_rate(self):
        disk = DiskArray()
        out = history.history_io_benchmark("T63L18", disk=disk)
        assert out["write_rate_bytes_per_s"] <= disk.stripe_rate_bytes_per_s

    def test_sequential_read_faster_than_record_writes(self):
        out = history.history_io_benchmark("T42L18")
        assert out["read_seconds"] < out["write_seconds"]

    def test_validation(self):
        with pytest.raises(ValueError):
            history.history_io_benchmark("T42L18", writers=0)
        with pytest.raises(ValueError):
            history.HistoryTapeSpec(res=_res("T42L18"), fields=0)


class TestHippi:
    def test_rate_climbs_with_packet_size(self):
        channel = hippi.HippiChannel()
        rates = [channel.effective_rate(s) for s in hippi.PACKET_SIZES]
        assert rates == sorted(rates)

    def test_rate_approaches_line_rate(self):
        channel = hippi.HippiChannel()
        best = channel.effective_rate(max(hippi.PACKET_SIZES), nbytes=1 * GB)
        assert best > 0.9 * channel.line_rate_bytes_per_s
        assert best < channel.line_rate_bytes_per_s

    def test_small_packets_overhead_dominated(self):
        channel = hippi.HippiChannel()
        small = channel.effective_rate(min(hippi.PACKET_SIZES))
        assert small < 0.6 * channel.line_rate_bytes_per_s

    def test_concurrent_channels_aggregate(self):
        one = hippi.hippi_benchmark(channels=1)
        four = hippi.hippi_benchmark(channels=4)
        assert four["aggregate_rate_bytes_per_s"] == pytest.approx(
            4 * one["aggregate_rate_bytes_per_s"], rel=0.01
        )

    def test_benchmark_curve_structure(self):
        out = hippi.hippi_benchmark()
        sizes = [s for s, _ in out["single_curve"]]
        assert sizes == list(hippi.PACKET_SIZES)

    def test_zero_transfer(self):
        assert hippi.HippiChannel().transfer_seconds(0, 65536) == 0.0

    def test_validation(self):
        channel = hippi.HippiChannel()
        with pytest.raises(ValueError):
            channel.transfer_seconds(-1, 65536)
        with pytest.raises(ValueError):
            channel.transfer_seconds(1 * MB, 0)
        with pytest.raises(ValueError):
            hippi.hippi_benchmark(channels=0)
        with pytest.raises(ValueError):
            hippi.HippiChannel(line_rate_bytes_per_s=0)


class TestNetwork:
    def test_standard_mix_runs(self):
        results = network.network_benchmark()
        assert "ftp put 100MB" in results
        assert all(r["seconds"] > 0 for r in results.values())

    def test_transfer_rate_below_fddi_line_rate(self):
        results = network.network_benchmark()
        for name, r in results.items():
            if "rate_bytes_per_s" in r:
                assert r["rate_bytes_per_s"] < network.FDDI_LINE_RATE

    def test_bigger_transfers_better_rate(self):
        small = network.DataTransferCommand("s", 1 * MB)
        large = network.DataTransferCommand("l", 100 * MB)
        assert large.rate() > small.rate()

    def test_non_data_commands_latency_only(self):
        cmd = network.NonDataCommand("hostname", 0.01)
        assert cmd.seconds() == 0.01

    def test_protocol_efficiency_matters(self):
        good = network.DataTransferCommand("a", 10 * MB, protocol_efficiency=0.9)
        poor = network.DataTransferCommand("b", 10 * MB, protocol_efficiency=0.5)
        assert good.seconds() < poor.seconds()

    def test_validation(self):
        with pytest.raises(ValueError):
            network.DataTransferCommand("x", -1)
        with pytest.raises(ValueError):
            network.DataTransferCommand("x", 1, protocol_efficiency=1.5)
        with pytest.raises(ValueError):
            network.NonDataCommand("x", -0.1)
        with pytest.raises(ValueError):
            network.network_benchmark(commands=[])
        with pytest.raises(ValueError):
            network.DataTransferCommand("x", 1 * MB).seconds(line_rate=0)


def _res(name):
    from repro.apps.ccm2.resolutions import resolution

    return resolution(name)
