"""Tests for ELEFUNT, PARANOIA and HINT."""

import math

import numpy as np
import pytest

from repro.kernels import elefunt, hint, paranoia
from repro.machine.presets import sx4_processor, table1_machines


class TestElefuntAccuracy:
    def test_all_identities_pass_on_host(self):
        """Section 4.1: the SX-4 passed; IEEE-754 NumPy must too."""
        for result in elefunt.run_accuracy_suite():
            assert result.passed, f"{result.function}: {result.max_ulp} ULP"

    def test_each_function_covered(self):
        functions = {r.function for r in elefunt.run_accuracy_suite()}
        assert functions == {"exp", "log", "sin", "sqrt", "pwr"}

    def test_rms_below_max(self):
        for result in elefunt.run_accuracy_suite(n=500):
            assert result.rms_ulp <= result.max_ulp

    def test_ulp_error_zero_for_exact(self):
        x = np.array([1.0, 2.0, 3.0])
        assert np.all(elefunt.ulp_error(x, x) == 0.0)

    def test_ulp_error_one_for_adjacent(self):
        x = np.array([1.0])
        assert elefunt.ulp_error(np.nextafter(x, 2.0), x)[0] == pytest.approx(1.0)

    def test_detects_a_bad_library(self):
        """A deliberately sloppy exp must fail the identity threshold."""
        rng = np.random.default_rng(0)
        x = rng.uniform(-10, 10, 500)
        sloppy = np.exp(x) * (1 + 1e-12)  # ~4500 ULP at 1.0
        errors = elefunt.ulp_error(sloppy, np.exp(x))
        assert errors.max() > elefunt.MAX_ULP_THRESHOLD


class TestElefuntThroughput:
    def test_model_table3_all_functions(self):
        table = elefunt.model_table3(sx4_processor())
        assert set(table) == set(elefunt.MEASURED_FUNCTIONS)
        assert all(v > 0 for v in table.values())

    def test_rates_in_vector_library_range(self):
        """Tens of Mcalls/s on the SX-4/1 — vectorised library rates."""
        table = elefunt.model_table3(sx4_processor())
        for func, rate in table.items():
            assert 5.0 < rate < 500.0, (func, rate)

    def test_pwr_slowest_sqrt_fastest(self):
        table = elefunt.model_table3(sx4_processor())
        assert table["pwr"] == min(table.values())
        assert table["sqrt"] == max(table.values())

    def test_sx4_beats_workstations(self):
        sx4 = elefunt.model_table3(sx4_processor())
        sparc = elefunt.model_table3(table1_machines()["SUN SPARC20"])
        for func in elefunt.MEASURED_FUNCTIONS:
            assert sx4[func] > 10 * sparc[func]

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            elefunt.model_mcalls_per_s(sx4_processor(), "tanh")
        with pytest.raises(ValueError):
            elefunt.host_mcalls_per_s("tanh")

    def test_host_measurement_positive(self):
        assert elefunt.host_mcalls_per_s("exp", length=10_000, ktries=2) > 0


class TestParanoia:
    def test_float64_passes(self):
        report = paranoia.run_paranoia(np.float64)
        assert report.passed, [c.name for c in report.failures]

    def test_float32_passes(self):
        report = paranoia.run_paranoia(np.float32)
        assert report.passed, [c.name for c in report.failures]

    def test_radix_detected_as_two(self):
        report = paranoia.run_paranoia(np.float64)
        assert report["radix"].passed
        assert "2" in report["radix"].detail

    def test_precision_detected(self):
        report = paranoia.run_paranoia(np.float64)
        assert "53" in report["precision"].detail

    def test_check_lookup(self):
        report = paranoia.run_paranoia(np.float64)
        assert report["gradual underflow"].passed
        with pytest.raises(KeyError):
            report["nonexistent check"]

    def test_check_count(self):
        # The report covers the full probe battery.
        assert len(paranoia.run_paranoia(np.float64).checks) == 15


class TestHintFunctional:
    def test_bounds_bracket_exact_area(self):
        result = hint.hint_integrate(iterations=500)
        assert result.brackets_exact
        assert result.lower < hint.EXACT_AREA < result.upper

    def test_quality_improves_monotonically(self):
        result = hint.hint_integrate(iterations=300)
        qualities = result.qualities
        assert all(b >= a for a, b in zip(qualities, qualities[1:]))

    def test_converges_toward_exact(self):
        coarse = hint.hint_integrate(iterations=50)
        fine = hint.hint_integrate(iterations=2000)
        assert fine.quality > 10 * coarse.quality
        assert (fine.upper - fine.lower) < 0.1 * (coarse.upper - coarse.lower)

    def test_exact_area_value(self):
        assert hint.EXACT_AREA == pytest.approx(2 * math.log(2) - 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            hint.hint_integrate(0)
        with pytest.raises(ValueError):
            hint.build_trace(0)


class TestHintTable1:
    def test_mquips_values(self):
        """Table 1's HINT row, within calibration tolerance."""
        targets = {
            "SUN SPARC20": 3.5,
            "IBM RS6K 590": 5.2,
            "CRI J90": 1.7,
            "CRI YMP": 3.1,
        }
        for name, proc in table1_machines().items():
            mquips = hint.model_mquips(proc)
            assert mquips == pytest.approx(targets[name], rel=0.15), name

    def test_rank_inversion_vs_radabs(self):
        """The paper's Table 1 point: HINT ranks the workstations above
        the vector machines; RADABS ranks them the other way."""
        machines = table1_machines()
        mquips = {n: hint.model_mquips(p) for n, p in machines.items()}
        assert mquips["SUN SPARC20"] > mquips["CRI YMP"]
        assert mquips["IBM RS6K 590"] > mquips["CRI YMP"]
        assert mquips["CRI J90"] == min(mquips.values())

    def test_vector_pipes_do_not_help(self):
        """HINT is scalar: the SX-4's vector unit contributes nothing, so
        its MQUIPS stays within workstation range."""
        sx4_quips = hint.model_mquips(sx4_processor())
        rs6k_quips = hint.model_mquips(table1_machines()["IBM RS6K 590"])
        assert sx4_quips < 3 * rs6k_quips
