"""Tests for the from-scratch mixed-radix FFT (correctness vs numpy.fft)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import fftpack

# All axis lengths the benchmark sweeps.
ALL_BENCH_SIZES = sorted(
    {n for fam in fftpack.rfft_axis_lengths().values() for n in fam}
    | {n for fam in fftpack.vfft_axis_lengths().values() for n in fam}
)

supported_sizes = st.builds(
    lambda a, b, c: (2**a) * (3**b) * (5**c),
    st.integers(0, 7),
    st.integers(0, 3),
    st.integers(0, 2),
).filter(lambda n: 1 <= n <= 2000)


class TestFactorize:
    def test_basic(self):
        assert fftpack.factorize(8) == [4, 2]
        assert fftpack.factorize(12) == [4, 3]
        assert fftpack.factorize(15) == [3, 5]
        assert fftpack.factorize(1) == []

    def test_product_reconstructs(self):
        for n in ALL_BENCH_SIZES:
            assert int(np.prod(fftpack.factorize(n))) == max(n, 1)

    def test_rejects_bad_sizes(self):
        for n in (7, 11, 13, 14, 22, 49):
            with pytest.raises(ValueError):
                fftpack.factorize(n)
            assert not fftpack.is_supported_size(n)
        with pytest.raises(ValueError):
            fftpack.factorize(0)

    def test_supported_sizes(self):
        for n in ALL_BENCH_SIZES:
            assert fftpack.is_supported_size(n)


class TestComplexFFT:
    def test_matches_numpy_all_bench_sizes(self):
        rng = np.random.default_rng(0)
        for n in ALL_BENCH_SIZES:
            x = rng.standard_normal((n, 2)) + 1j * rng.standard_normal((n, 2))
            mine = fftpack.complex_fft(x)
            ref = np.fft.fft(x, axis=0)
            assert np.allclose(mine, ref, atol=1e-9 * max(1, n)), n

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((60, 3)) + 1j * rng.standard_normal((60, 3))
        back = fftpack.complex_fft(fftpack.complex_fft(x), inverse=True)
        assert np.allclose(back, x, atol=1e-10)

    def test_one_dimensional_input(self):
        x = np.exp(2j * np.pi * np.arange(16) * 3 / 16)
        spectrum = fftpack.complex_fft(x)
        # A pure tone concentrates in one bin.
        assert abs(spectrum[3]) == pytest.approx(16.0)
        others = np.delete(np.abs(spectrum), 3)
        assert np.all(others < 1e-9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fftpack.complex_fft(np.zeros((0,)))

    @given(n=supported_sizes)
    @settings(max_examples=25, deadline=None)
    def test_linearity(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        y = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        lhs = fftpack.complex_fft(2.0 * x + 3.0 * y)
        rhs = 2.0 * fftpack.complex_fft(x) + 3.0 * fftpack.complex_fft(y)
        assert np.allclose(lhs, rhs, atol=1e-8 * n)

    @given(n=supported_sizes)
    @settings(max_examples=25, deadline=None)
    def test_parseval(self, n):
        rng = np.random.default_rng(n + 1)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        spectrum = fftpack.complex_fft(x)
        assert np.sum(np.abs(spectrum) ** 2) == pytest.approx(
            n * np.sum(np.abs(x) ** 2), rel=1e-9
        )


class TestRealFFT:
    def test_matches_numpy_rfft(self):
        rng = np.random.default_rng(2)
        for n in ALL_BENCH_SIZES:
            x = rng.standard_normal((n, 3))
            assert np.allclose(
                fftpack.real_forward(x), np.fft.rfft(x, axis=0), atol=1e-9 * max(1, n)
            ), n

    def test_real_roundtrip(self):
        rng = np.random.default_rng(3)
        for n in (2, 3, 5, 12, 40, 240, 1280):
            x = rng.standard_normal((n, 2))
            back = fftpack.real_inverse(fftpack.real_forward(x), n)
            assert np.allclose(back, x, atol=1e-9), n

    def test_dc_component(self):
        x = np.full((16, 1), 2.5)
        spectrum = fftpack.real_forward(x)
        assert spectrum[0, 0] == pytest.approx(40.0)
        assert np.all(np.abs(spectrum[1:]) < 1e-12)

    def test_inverse_validates_length(self):
        spec = fftpack.real_forward(np.ones((16, 1)))
        with pytest.raises(ValueError):
            fftpack.real_inverse(spec, 20)

    @given(n=supported_sizes)
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, n):
        rng = np.random.default_rng(n + 2)
        x = rng.standard_normal(n)
        back = fftpack.real_inverse(fftpack.real_forward(x), n)
        assert np.allclose(back, x, atol=1e-8)


class TestFlopsAndStructure:
    def test_power_of_two_flops_near_canonical(self):
        for n in (64, 256, 1024):
            canonical = 2.5 * n * np.log2(n)
            assert fftpack.real_fft_flops(n) == pytest.approx(canonical, rel=0.2)

    def test_flops_grow_superlinearly(self):
        assert fftpack.real_fft_flops(1024) > 2 * fftpack.real_fft_flops(512)

    def test_pass_structure_consistency(self):
        for n in (8, 12, 240, 1280):
            for factor, l1, ido in fftpack.pass_structure(n):
                assert factor * l1 * ido == n

    def test_pass_structure_l1_accumulates(self):
        structure = fftpack.pass_structure(64)
        l1s = [l1 for _, l1, _ in structure]
        assert l1s[0] == 1
        assert all(b > a for a, b in zip(l1s, l1s[1:]))


class TestBenchmarkAxes:
    def test_rfft_families_match_paper(self):
        fams = fftpack.rfft_axis_lengths()
        assert fams["2^n"] == [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
        assert fams["3*2^n"][0] == 3 and fams["3*2^n"][-1] == 3 * 256
        assert fams["5*2^n"][0] == 5 and fams["5*2^n"][-1] == 5 * 256

    def test_vfft_families_match_paper(self):
        fams = fftpack.vfft_axis_lengths()
        assert fams["2^n"] == [4, 16, 64, 128, 256, 512]
        assert fams["3*2^n"] == [3, 12, 48, 192, 768]
        assert fams["5*2^n"] == [5, 20, 80, 320, 1280]

    def test_max_length_is_1280(self):
        assert max(ALL_BENCH_SIZES) == 1280  # "2 to 1280 in length"

    def test_rfft_instance_counts(self):
        assert fftpack.rfft_instance_count(2) == 500_000
        assert fftpack.rfft_instance_count(1280) == pytest.approx(781, abs=1)
        with pytest.raises(ValueError):
            fftpack.rfft_instance_count(0)

    def test_vfft_instance_counts_match_paper(self):
        assert fftpack.VFFT_INSTANCE_COUNTS == (1, 2, 5, 10, 20, 50, 100, 200, 500)
