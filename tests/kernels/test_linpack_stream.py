"""Tests for LINPACK and STREAM — the Section 3 comparison benchmarks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import linpack, radabs, stream
from repro.kernels import copy as kcopy
from repro.machine.presets import sx4_processor


class TestLinpackFunctional:
    def test_solves_linear_system(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((50, 50)) + 50.0 * np.eye(50)
        x_true = rng.standard_normal(50)
        x = linpack.solve(a, a @ x_true)
        assert np.allclose(x, x_true, atol=1e-9)

    def test_matches_numpy_solve(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((40, 40))
        b = rng.standard_normal(40)
        assert np.allclose(linpack.solve(a, b), np.linalg.solve(a, b), atol=1e-8)

    def test_residual_check_passes_linpack_criterion(self):
        """The benchmark accepts solutions with normalised residual
        below ~O(10); a correct LU easily meets it."""
        rng = np.random.default_rng(2)
        a = rng.standard_normal((100, 100))
        b = rng.standard_normal(100)
        x = linpack.solve(a, b)
        assert linpack.residual_check(a, x, b) < 10.0

    def test_pivoting_handles_zero_leading_entry(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        x = linpack.solve(a, np.array([2.0, 3.0]))
        assert np.allclose(x, [3.0, 2.0])

    def test_singular_detected(self):
        a = np.ones((4, 4))
        with pytest.raises(np.linalg.LinAlgError):
            linpack.lu_factor(a)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            linpack.lu_factor(np.zeros((3, 4)))
        lu, piv = linpack.lu_factor(np.eye(3))
        with pytest.raises(ValueError):
            linpack.lu_solve(lu, piv, np.zeros(4))

    @given(n=st.integers(2, 25), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_solve_property(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        x_true = rng.standard_normal(n)
        x = linpack.solve(a, a @ x_true)
        assert np.allclose(x, x_true, atol=1e-7)


class TestLinpackModel:
    def test_flop_count(self):
        assert linpack.linpack_flops(1000) == pytest.approx(2e9 / 3 + 2e6)

    def test_near_peak_on_the_sx4(self):
        """Section 3.1's criticism, asserted: LINPACK runs near peak."""
        proc = sx4_processor()
        mflops = linpack.model_mflops(proc, n=1000)
        efficiency = mflops * 1e6 / proc.peak_flops
        assert efficiency > 0.55

    def test_order_100_less_efficient_than_1000(self):
        proc = sx4_processor()
        assert linpack.model_mflops(proc, 100) < linpack.model_mflops(proc, 1000)

    def test_linpack_overstates_climate_performance(self):
        """The procurement argument: LINPACK's hardware efficiency far
        exceeds the actual workload's.  (RADABS's headline Mflops carry
        intrinsic flop-equivalents; the honest comparison is raw
        adds/multiplies per peak.)"""
        proc = sx4_processor()
        linpack_eff = linpack.model_mflops(proc, 1000) * 1e6 / proc.peak_flops
        radabs_raw = proc.execute(radabs.build_trace(8192)).raw_mflops
        radabs_eff = radabs_raw * 1e6 / proc.peak_flops
        assert linpack_eff > 1.3 * radabs_eff

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            linpack.build_trace(1)


class TestStreamFunctional:
    def make_arrays(self, n=1000):
        rng = np.random.default_rng(3)
        return (rng.standard_normal(n), rng.standard_normal(n),
                rng.standard_normal(n))

    def test_copy(self):
        a, b, c = self.make_arrays()
        stream.run_host_kernel("copy", a, b, c)
        assert np.array_equal(c, a)

    def test_scale(self):
        a, b, c = self.make_arrays()
        stream.run_host_kernel("scale", a, b, c, q=3.0)
        assert np.allclose(b, 3.0 * c)

    def test_add(self):
        a, b, c = self.make_arrays()
        stream.run_host_kernel("add", a, b, c)
        assert np.allclose(c, a + b)

    def test_triad(self):
        a, b, c = self.make_arrays()
        b0, c0 = b.copy(), c.copy()
        stream.run_host_kernel("triad", a, b, c, q=3.0)
        assert np.allclose(a, b0 + 3.0 * c0)

    def test_unknown_kernel(self):
        a, b, c = self.make_arrays()
        with pytest.raises(KeyError):
            stream.run_host_kernel("dot", a, b, c)
        with pytest.raises(KeyError):
            stream.kernel("dot")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            stream.run_host_kernel("copy", np.zeros(3), np.zeros(3), np.zeros(4))


class TestStreamModel:
    def test_byte_accounting(self):
        assert stream.kernel("copy").bytes_per_element == 16
        assert stream.kernel("triad").bytes_per_element == 24

    def test_bandwidth_structure(self):
        """COPY/SCALE and ADD/TRIAD pair up (same traffic per pair) and
        all four sit within a small factor of each other — the single
        cluster of numbers STREAM reports."""
        bws = stream.model_bandwidths(sx4_processor())
        assert set(bws) == {"COPY", "SCALE", "ADD", "TRIAD"}
        assert bws["COPY"] == pytest.approx(bws["SCALE"])
        assert bws["ADD"] == pytest.approx(bws["TRIAD"])
        assert max(bws.values()) < 2.0 * min(bws.values())

    def test_stream_is_one_point_of_the_ncar_sweep(self):
        """Section 3.4's criticism, asserted: STREAM's single fixed-size
        measurement coincides with one point of the NCAR COPY curve and
        misses the short-vector regime entirely."""
        proc = sx4_processor()
        n = stream.DEFAULT_ARRAY_ELEMENTS
        stream_copy = stream.model_bandwidths(proc, n)["COPY"]  # 16 B/elem
        # NCAR COPY at the same length, counted one-way (8 B/elem).
        seconds = proc.time(kcopy.build_trace(n, 1))
        ncar_same_point = 8.0 * n / seconds / 1e6
        assert stream_copy == pytest.approx(2 * ncar_same_point, rel=0.01)
        # The sweep's short end is an order of magnitude below: STREAM
        # never sees it.
        short_seconds = proc.time(kcopy.build_trace(10, n // 10))
        short_bw = 8.0 * n / short_seconds / 1e6
        assert short_bw < 0.1 * ncar_same_point

    def test_validation(self):
        with pytest.raises(ValueError):
            stream.build_trace("copy", elements=0)
