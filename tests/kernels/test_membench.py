"""Tests for the shared memory-benchmark machinery."""

import pytest

from repro.kernels import membench
from repro.machine.presets import sx4_processor


class TestSweepAxes:
    def test_constant_volume(self):
        for n, m in membench.sweep_axes(total_elements=1_000_000):
            assert 0.5e6 <= n * m <= 2e6 or n * m >= 0.5e6  # M rounding keeps volume close
            assert n >= 1 and m >= 1

    def test_covers_full_range(self):
        axes = membench.sweep_axes(total_elements=1_000_000)
        ns = [n for n, _ in axes]
        assert min(ns) == 1
        assert max(ns) == 1_000_000

    def test_monotone_unique_axis_lengths(self):
        ns = [n for n, _ in membench.sweep_axes()]
        assert ns == sorted(set(ns))

    def test_custom_bounds(self):
        axes = membench.sweep_axes(n_min=2, n_max=1000)
        ns = [n for n, _ in axes]
        assert min(ns) == 2 and max(ns) == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            membench.sweep_axes(total_elements=0)
        with pytest.raises(ValueError):
            membench.sweep_axes(n_min=0)
        with pytest.raises(ValueError):
            membench.sweep_axes(n_min=10, n_max=5)


class TestBestOf:
    def test_takes_minimum(self):
        values = iter([3.0, 1.0, 2.0])
        assert membench.best_of(lambda: next(values), ktries=3) == 1.0

    def test_single_try(self):
        assert membench.best_of(lambda: 5.0, ktries=1) == 5.0

    def test_paper_default_is_20(self):
        assert membench.DEFAULT_KTRIES == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            membench.best_of(lambda: 1.0, ktries=0)


class TestBandwidthPoint:
    def test_one_way_accounting(self):
        point = membench.BandwidthPoint(n=1000, m=10, seconds=1e-3,
                                        elements_moved=10_000)
        assert point.bytes_moved == 80_000
        assert point.bandwidth_mb_per_s == pytest.approx(80.0)

    def test_zero_time_guard(self):
        point = membench.BandwidthPoint(n=1, m=1, seconds=0.0, elements_moved=1)
        assert point.bandwidth_bytes_per_s == 0.0


class TestBandwidthCurve:
    def make_curve(self):
        curve = membench.BandwidthCurve(name="X", machine="M")
        for i, n in enumerate([1, 10, 100]):
            curve.points.append(
                membench.BandwidthPoint(n=n, m=100 // n, seconds=1e-3 / (i + 1),
                                        elements_moved=100)
            )
        return curve

    def test_peak_and_asymptote(self):
        curve = self.make_curve()
        assert curve.peak.n == 100
        assert curve.asymptote_mb_per_s == curve.peak.bandwidth_mb_per_s

    def test_series_sorted(self):
        ns, bws = self.make_curve().series()
        assert ns == sorted(ns)
        assert len(bws) == len(ns)

    def test_empty_curve_raises(self):
        empty = membench.BandwidthCurve(name="e", machine="m")
        with pytest.raises(ValueError):
            _ = empty.peak
        with pytest.raises(ValueError):
            _ = empty.asymptote_mb_per_s


class TestModelCurve:
    def test_runs_on_machine_model(self):
        from repro.kernels import copy as copy_kernel

        proc = sx4_processor()
        curve = membench.model_curve(
            "COPY", proc, copy_kernel.build_trace,
            axes=[(10, 1000), (1000, 10)],
        )
        assert len(curve) == 2
        assert all(p.seconds > 0 for p in curve)
        assert curve.machine == proc.name
