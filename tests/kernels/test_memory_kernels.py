"""Tests for COPY, IA and XPOSE (functional kernels + Figure 5 shapes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import copy as kcopy
from repro.kernels import ia as kia
from repro.kernels import xpose as kxpose
from repro.machine.presets import sx4_processor


@pytest.fixture(scope="module")
def sx4():
    return sx4_processor()


class TestCopyFunctional:
    def test_copies_exactly(self):
        rng = np.random.default_rng(0)
        a = np.asfortranarray(rng.standard_normal((50, 7)))
        b = kcopy.copy_kernel(a)
        assert kcopy.verify(a, b)
        assert b is not a

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            kcopy.copy_kernel(np.zeros(10))

    @given(n=st.integers(1, 64), m=st.integers(1, 8))
    @settings(max_examples=20)
    def test_copy_any_shape(self, n, m):
        a = np.asfortranarray(np.arange(n * m, dtype=float).reshape(n, m, order="F"))
        assert kcopy.verify(a, kcopy.copy_kernel(a))


class TestIAFunctional:
    def test_gathers_correctly(self):
        rng = np.random.default_rng(1)
        a = np.asfortranarray(rng.standard_normal((40, 5)))
        indx = kia.random_index(40)
        b = kia.ia_kernel(a, indx)
        assert kia.verify(a, indx, b)

    def test_identity_index_is_copy(self):
        a = np.asfortranarray(np.arange(12.0).reshape(6, 2, order="F"))
        b = kia.ia_kernel(a, np.arange(6))
        assert np.array_equal(a, b)

    def test_index_validation(self):
        a = np.zeros((4, 2), order="F")
        with pytest.raises(ValueError):
            kia.ia_kernel(a, np.array([0, 1, 2]))  # wrong length
        with pytest.raises(ValueError):
            kia.ia_kernel(a, np.array([0, 1, 2, 4]))  # out of range
        with pytest.raises(ValueError):
            kia.random_index(0)

    @given(n=st.integers(1, 64))
    @settings(max_examples=20)
    def test_permutation_gather_preserves_multiset(self, n):
        rng = np.random.default_rng(n)
        a = np.asfortranarray(rng.standard_normal((n, 3)))
        indx = kia.random_index(n, rng)
        b = kia.ia_kernel(a, indx)
        assert np.allclose(np.sort(a, axis=0), np.sort(b, axis=0))


class TestXposeFunctional:
    def test_transposes(self):
        rng = np.random.default_rng(2)
        a = np.asfortranarray(rng.standard_normal((8, 8, 3)))
        b = kxpose.xpose_kernel(a)
        assert kxpose.verify(a, b)

    def test_involution(self):
        rng = np.random.default_rng(3)
        a = np.asfortranarray(rng.standard_normal((5, 5, 2)))
        assert np.array_equal(kxpose.xpose_kernel(kxpose.xpose_kernel(a)), a)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            kxpose.xpose_kernel(np.zeros((3, 4, 2)))

    def test_sweep_axes_constant_volume(self):
        for n, m in kxpose.sweep_axes(total_elements=1_000_000):
            assert 2 <= n <= 1000
            assert m >= 1
            # The volume N^2*M stays near 1e6 (within rounding for big N).
            assert n * n * m == pytest.approx(1_000_000, rel=0.5)


class TestFigure5Shapes:
    """The performance claims of Section 4.2 / Figure 5."""

    def test_bandwidth_rises_with_axis_length(self, sx4):
        curve = kcopy.model_curve(sx4)
        ns, bws = curve.series()
        assert bws[-1] > 50 * bws[0]

    def test_copy_far_exceeds_ia_and_xpose(self, sx4):
        copy_bw = kcopy.model_curve(sx4).asymptote_mb_per_s
        ia_bw = kia.model_curve(sx4).asymptote_mb_per_s
        xpose_bw = kxpose.model_curve(sx4).asymptote_mb_per_s
        assert copy_bw > 2 * ia_bw
        assert copy_bw > 2 * xpose_bw

    def test_copy_asymptote_near_port_limit(self, sx4):
        """Long unit-stride copies should approach the one-way store rate
        (half the 16 GB/s port at the 9.2 ns clock ≈ 7 GB/s, less startup)."""
        bw = kcopy.model_curve(sx4).asymptote_mb_per_s
        assert 4000 < bw < 7000

    def test_ia_slowest_of_three(self, sx4):
        ia_bw = kia.model_curve(sx4).asymptote_mb_per_s
        xpose_bw = kxpose.model_curve(sx4).asymptote_mb_per_s
        assert ia_bw <= xpose_bw * 1.2  # IA at or below XPOSE

    def test_trace_validation(self):
        for mod in (kcopy, kia, kxpose):
            with pytest.raises(ValueError):
                mod.build_trace(0, 10)
            with pytest.raises(ValueError):
                mod.build_trace(10, 0)

    def test_traces_move_expected_data(self):
        n, m = 100, 10
        assert kcopy.build_trace(n, m).words_moved == pytest.approx(2 * n * m)
        # IA moves a gathered load and a store per element.
        assert kia.build_trace(n, m).words_moved == pytest.approx(2 * n * m)
        # XPOSE moves n*n*m elements each way.
        assert kxpose.build_trace(n, m).words_moved == pytest.approx(2 * n * n * m)
