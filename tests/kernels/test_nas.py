"""Tests for the NAS EP and CG kernels (Section 3.2)."""

import math

import numpy as np
import pytest

from repro.kernels import nas
from repro.machine.presets import sx4_processor


class TestNasRandom:
    def test_reproducible(self):
        assert np.array_equal(nas.nas_random(100), nas.nas_random(100))

    def test_uniform_range_and_mean(self):
        u = nas.nas_random(20_000)
        assert u.min() > 0.0 and u.max() < 1.0
        assert abs(u.mean() - 0.5) < 0.01

    def test_lcg_recurrence(self):
        """First values follow x_{k+1} = 5^13 x_k mod 2^46 exactly."""
        seed = 271828183
        u = nas.nas_random(3, seed=seed)
        x = seed
        for k in range(3):
            x = (5**13 * x) % 2**46
            assert u[k] == x / 2**46

    def test_seed_validation(self):
        with pytest.raises(ValueError):
            nas.nas_random(10, seed=2)  # even
        with pytest.raises(ValueError):
            nas.nas_random(10, seed=0)
        with pytest.raises(ValueError):
            nas.nas_random(0)


class TestEP:
    @pytest.fixture(scope="class")
    def result(self):
        return nas.ep_kernel(20_000)

    def test_acceptance_rate_is_pi_over_4(self, result):
        assert result.acceptance_rate == pytest.approx(math.pi / 4.0, abs=0.01)

    def test_counts_partition_acceptances(self, result):
        assert sum(result.counts) == result.pairs_accepted

    def test_counts_decay_like_a_gaussian(self, result):
        """Nearly all deviates fall in |X| < 3; bins must decay fast."""
        assert result.counts[0] > result.counts[2] > result.counts[4]
        assert sum(result.counts[4:]) < 0.01 * result.pairs_accepted

    def test_sums_near_zero(self, result):
        """Gaussian deviates have zero mean; the verification sums are
        small relative to the sample size's standard error."""
        sigma = math.sqrt(result.pairs_accepted)
        assert abs(result.sum_x) < 5 * sigma
        assert abs(result.sum_y) < 5 * sigma

    def test_deterministic(self):
        a, b = nas.ep_kernel(5_000), nas.ep_kernel(5_000)
        assert a.counts == b.counts and a.sum_x == b.sum_x

    def test_validation(self):
        with pytest.raises(ValueError):
            nas.ep_kernel(0)
        with pytest.raises(ValueError):
            nas.ep_trace(0)


class TestEPModel:
    def test_ep_ignores_the_memory_system(self):
        """The paper's point, asserted: EP performance is (nearly)
        independent of memory bandwidth, so a suite built from kernels
        like it cannot characterise a bandwidth-limited workload."""
        fast = sx4_processor()
        slow = sx4_processor()
        slow.memory.port_words_per_cycle /= 8.0  # strangle the memory port
        ep_fast = nas.ep_model_mflops(fast)
        ep_slow = nas.ep_model_mflops(slow)
        assert ep_slow > 0.95 * ep_fast
        # ...whereas the NCAR COPY benchmark collapses with the port.
        from repro.kernels import copy as kcopy

        copy_fast = kcopy.model_curve(fast).asymptote_mb_per_s
        copy_slow = kcopy.model_curve(slow).asymptote_mb_per_s
        assert copy_slow < 0.25 * copy_fast

    def test_ep_runs_at_vector_arithmetic_rates(self):
        mflops = nas.ep_model_mflops(sx4_processor())
        assert 200 < mflops < 1739


class TestCG:
    def test_solves_and_reports(self):
        out = nas.cg_benchmark(nlat=16, nlon=24)
        assert out["iterations"] >= 1
        assert out["residual"] < 1e-8
        assert out["unknowns"] == 384
