"""Tests for the RADABS radiation kernel (functional physics + Table 1)."""

import numpy as np
import pytest

from repro.kernels import radabs
from repro.machine.presets import sx4_processor, table1_machines


class TestColumns:
    def test_make_columns_shapes(self):
        cols = radabs.make_columns(ncol=16, nlev=18)
        assert cols.nlev == 18 and cols.ncol == 16
        assert cols.pressure.shape == (18, 16)

    def test_identical_columns_by_default(self):
        cols = radabs.make_columns(ncol=8)
        assert np.all(cols.temperature == cols.temperature[:, :1])

    def test_perturbed_columns_differ(self):
        cols = radabs.make_columns(ncol=8, identical=False)
        assert not np.all(cols.temperature == cols.temperature[:, :1])

    def test_validation(self):
        with pytest.raises(ValueError):
            radabs.make_columns(0)
        with pytest.raises(ValueError):
            radabs.make_columns(4, nlev=1)
        cols = radabs.make_columns(4)
        with pytest.raises(ValueError):
            radabs.RadiationColumns(
                pressure=cols.pressure,
                dp=-cols.dp,
                temperature=cols.temperature,
                qv=cols.qv,
            )


class TestRadabsPhysics:
    @pytest.fixture(scope="class")
    def result(self):
        cols = radabs.make_columns(ncol=8, nlev=12)
        return cols, radabs.radabs_kernel(cols)

    def test_shapes(self, result):
        cols, (absorp, emis) = result
        assert absorp.shape == (12, 12, 8)
        assert emis.shape == (12, 8)

    def test_absorptivity_bounds(self, result):
        _, (absorp, emis) = result
        assert np.all(absorp >= 0.0) and np.all(absorp < 1.0)
        assert np.all(emis >= 0.0) and np.all(emis < 1.0)

    def test_symmetric_zero_diagonal(self, result):
        _, (absorp, _) = result
        assert np.allclose(absorp, np.transpose(absorp, (1, 0, 2)))
        assert np.all(np.diagonal(absorp, axis1=0, axis2=1) == 0.0)

    def test_monotone_in_path_length(self, result):
        """A longer gas path between more distant layers absorbs more."""
        _, (absorp, _) = result
        k1 = 2
        profile = absorp[k1, k1 + 1 :, 0]
        assert np.all(np.diff(profile) > 0)

    def test_columns_independent(self):
        """Embarrassingly parallel: each column's result depends only on
        its own state (Section 4.4)."""
        cols = radabs.make_columns(ncol=6, nlev=10, identical=False)
        full, _ = radabs.radabs_kernel(cols)
        sub = radabs.RadiationColumns(
            pressure=cols.pressure[:, 2:3].copy(),
            dp=cols.dp[:, 2:3].copy(),
            temperature=cols.temperature[:, 2:3].copy(),
            qv=cols.qv[:, 2:3].copy(),
        )
        alone, _ = radabs.radabs_kernel(sub)
        assert np.allclose(full[:, :, 2], alone[:, :, 0])

    def test_identical_columns_identical_results(self):
        cols = radabs.make_columns(ncol=5)
        absorp, emis = radabs.radabs_kernel(cols)
        assert np.all(absorp == absorp[:, :, :1])
        assert np.all(emis == emis[:, :1])

    def test_more_vapour_more_absorption(self):
        cols = radabs.make_columns(ncol=2, nlev=10)
        moist = radabs.RadiationColumns(
            pressure=cols.pressure, dp=cols.dp,
            temperature=cols.temperature, qv=cols.qv * 3.0,
        )
        a_dry, _ = radabs.radabs_kernel(cols)
        a_wet, _ = radabs.radabs_kernel(moist)
        off_diag = ~np.eye(10, dtype=bool)
        assert np.all(a_wet[off_diag] >= a_dry[off_diag])


class TestTable1Performance:
    def test_sx4_anchor(self):
        """Section 4.4: 865.9 Cray Y-MP equivalent Mflops on the SX-4/1."""
        mflops = radabs.model_mflops(sx4_processor())
        assert mflops == pytest.approx(865.9, rel=0.10)

    def test_table1_values(self):
        targets = {
            "SUN SPARC20": 12.8,
            "IBM RS6K 590": 16.5,
            "CRI J90": 60.8,
            "CRI YMP": 178.1,
        }
        for name, proc in table1_machines().items():
            mflops = radabs.model_mflops(proc)
            assert mflops == pytest.approx(targets[name], rel=0.15), name

    def test_table1_ordering(self):
        values = {n: radabs.model_mflops(p) for n, p in table1_machines().items()}
        assert (
            values["CRI YMP"] > values["CRI J90"]
            > values["IBM RS6K 590"] > values["SUN SPARC20"]
        )

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            radabs.build_trace(0)
        with pytest.raises(ValueError):
            radabs.build_trace(10, nlev=1)

    def test_trace_intrinsic_mix(self):
        trace = radabs.build_trace(100, nlev=10)
        totals = trace.intrinsic_calls_total
        elements = 100 * (10 * 9 // 2 + 10)
        for func, per_elem in radabs.INTRINSIC_MIX.items():
            assert totals[func] == pytest.approx(per_elem * elements)
