"""Tests for the RFFT/VFFT coding-style benchmarks (Figures 6 and 7)."""

import numpy as np
import pytest

from repro.kernels import fftpack, rfft, vfft
from repro.machine.presets import sx4_processor


@pytest.fixture(scope="module")
def sx4():
    return sx4_processor()


class TestFunctionalEquivalence:
    """The two styles compute identical transforms; only loop order differs."""

    def test_rfft_multi_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((5, 48))  # 5 instances of length 48
        assert rfft.verify(a, rfft.rfft_multi(a))

    def test_vfft_multi_matches_numpy(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((48, 5))  # instance axis last
        assert vfft.verify(a, vfft.vfft_multi(a))

    def test_both_styles_agree(self):
        rng = np.random.default_rng(2)
        data = rng.standard_normal((7, 60))
        scalar_style = rfft.rfft_multi(data)
        vector_style = vfft.vfft_multi(data.T)
        assert np.allclose(scalar_style, vector_style.T, atol=1e-10)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            rfft.rfft_multi(np.zeros(8))
        with pytest.raises(ValueError):
            vfft.vfft_multi(np.zeros(8))


class TestTraceAccounting:
    def test_rfft_trace_validation(self):
        with pytest.raises(ValueError):
            rfft.build_trace(64, 0)

    def test_vfft_trace_validation(self):
        with pytest.raises(ValueError):
            vfft.build_trace(64, 0)

    def test_rfft_default_instances(self):
        trace = rfft.build_trace(1000)
        assert "M=1000" in trace.name  # 1e6 / 1000

    def test_vfft_startup_count_independent_of_m(self):
        """VFFT's defining property: startups per pass don't grow with M."""
        from repro.machine.operations import VectorOp

        small = vfft.build_trace(64, 10)
        large = vfft.build_trace(64, 500)
        count_small = sum(op.count for op in small if isinstance(op, VectorOp))
        count_large = sum(op.count for op in large if isinstance(op, VectorOp))
        assert count_small == count_large


class TestFigure6and7Shapes:
    def test_vfft_order_of_magnitude_faster(self, sx4):
        """Section 4.3: 'The VFFT performance results are approximately an
        order of magnitude faster than those from RFFT.'"""
        n = 256
        rfft_mflops = rfft.model_mflops(sx4, n)
        vfft_mflops = vfft.model_mflops(sx4, n, m=200)
        assert vfft_mflops > 7 * rfft_mflops

    def test_rfft_rises_with_n(self, sx4):
        values = [rfft.model_mflops(sx4, n) for n in (16, 64, 256, 1024)]
        assert values == sorted(values)

    def test_rfft_stays_low(self, sx4):
        """Scalar-style code never approaches the vector rates."""
        for n in (64, 256, 1024):
            assert rfft.model_mflops(sx4, n) < 200

    def test_vfft_rises_with_vector_length(self, sx4):
        values = [vfft.model_mflops(sx4, 256, m) for m in (1, 10, 100, 500)]
        assert values == sorted(values)
        assert values[-1] > 1000  # long vectors approach gigaflop rates

    def test_vfft_m1_comparable_to_scalar(self, sx4):
        """With a vector length of 1 the vector style loses its advantage."""
        assert vfft.model_mflops(sx4, 256, 1) < rfft.model_mflops(sx4, 256)

    def test_model_family_covers_all_curves(self, sx4):
        fam6 = rfft.model_family(sx4)
        assert set(fam6) == {"2^n", "3*2^n", "5*2^n"}
        assert all(mf > 0 for curve in fam6.values() for _, mf in curve)
        fam7 = vfft.model_family(sx4, instance_counts=(1, 100))
        assert set(fam7) == {"2^n", "3*2^n", "5*2^n"}
        lengths = fftpack.vfft_axis_lengths()
        assert len(fam7["2^n"]) == 2 * len(lengths["2^n"])

    def test_mflops_accounting_uses_fixed_counts(self, sx4):
        """Benchmark Mflops divide the *algorithm's* flop count by time,
        so the value is invariant to how the trace spells the work."""
        n, m = 128, 50
        seconds = sx4.time(vfft.build_trace(n, m))
        expected = fftpack.real_fft_flops(n) * m / seconds / 1e6
        assert vfft.model_mflops(sx4, n, m) == pytest.approx(expected)
