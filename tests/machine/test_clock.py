"""Tests for the clock model."""

import pytest

from repro.machine.clock import Clock


class TestClock:
    def test_benchmark_clock_frequency(self):
        clock = Clock(period_ns=9.2)
        assert clock.frequency_hz == pytest.approx(108.6956e6, rel=1e-4)

    def test_production_clock_frequency(self):
        clock = Clock(period_ns=8.0)
        assert clock.frequency_hz == pytest.approx(125e6)

    def test_seconds_for_cycles(self):
        clock = Clock(period_ns=10.0)
        assert clock.seconds(100) == pytest.approx(1e-6)

    def test_cycles_for_seconds_roundtrip(self):
        clock = Clock(period_ns=9.2)
        assert clock.cycles(clock.seconds(12345.0)) == pytest.approx(12345.0)

    def test_scaled_returns_new_clock(self):
        bench = Clock(period_ns=9.2)
        prod = bench.scaled(8.0)
        assert prod.period_ns == 8.0
        assert bench.period_ns == 9.2  # original untouched

    def test_clock_speedup_ratio(self):
        """9.2 -> 8.0 ns is the paper's anticipated ~15% improvement."""
        assert 9.2 / 8.0 == pytest.approx(1.15)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            Clock(period_ns=0.0)
        with pytest.raises(ValueError):
            Clock(period_ns=-8.0)

    def test_rejects_negative_cycles(self):
        with pytest.raises(ValueError):
            Clock(period_ns=8.0).seconds(-1)

    def test_rejects_negative_seconds(self):
        with pytest.raises(ValueError):
            Clock(period_ns=8.0).cycles(-1e-9)

    def test_frozen(self):
        clock = Clock(period_ns=8.0)
        with pytest.raises(AttributeError):
            clock.period_ns = 9.2
