"""Tests for the communications registers and the sync structures."""

import pytest

from repro.machine.commregs import Barrier, CommunicationRegisters, SpinLock


class TestRegisters:
    def test_initial_state_zero(self):
        regs = CommunicationRegisters(count=8)
        assert all(regs.read(i) == 0 for i in range(8))

    def test_test_set_semantics(self):
        regs = CommunicationRegisters()
        assert regs.test_set(0) == 0  # acquired
        assert regs.test_set(0) == 1  # already held
        assert regs.read(0) == 1

    def test_store_and_or(self):
        regs = CommunicationRegisters()
        regs.write(3, 0b1100)
        assert regs.store_and(3, 0b1010) == 0b1100
        assert regs.read(3) == 0b1000
        assert regs.store_or(3, 0b0001) == 0b1000
        assert regs.read(3) == 0b1001

    def test_store_add_returns_old(self):
        regs = CommunicationRegisters()
        assert regs.store_add(5, 7) == 0
        assert regs.store_add(5, 3) == 7
        assert regs.read(5) == 10

    def test_access_accounting(self):
        regs = CommunicationRegisters(access_cycles=8.0)
        regs.test_set(0)
        regs.store_add(1, 1)
        regs.read(0)
        assert regs.accesses == 3
        assert regs.estimated_cycles() == 24.0

    def test_bounds_checked(self):
        regs = CommunicationRegisters(count=4)
        with pytest.raises(IndexError):
            regs.read(4)
        with pytest.raises(IndexError):
            regs.test_set(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            CommunicationRegisters(count=0)
        with pytest.raises(ValueError):
            CommunicationRegisters(access_cycles=0.0)


class TestSpinLock:
    def test_acquire_release_cycle(self):
        lock = SpinLock(CommunicationRegisters())
        assert lock.acquire() == 0
        assert lock.held
        lock.release()
        assert not lock.held
        assert lock.acquire() == 0  # reacquirable

    def test_deadlock_detected(self):
        lock = SpinLock(CommunicationRegisters())
        lock.acquire()
        with pytest.raises(RuntimeError):
            lock.acquire(max_spins=10)

    def test_release_unheld_rejected(self):
        lock = SpinLock(CommunicationRegisters())
        with pytest.raises(RuntimeError):
            lock.release()


class TestBarrier:
    def test_single_phase(self):
        regs = CommunicationRegisters()
        barrier = Barrier(regs, participants=8)
        completions = [barrier.arrive() for _ in range(8)]
        assert completions.count(True) == 1
        assert completions[-1] is True  # the last arrival releases

    def test_sense_flips_each_phase(self):
        regs = CommunicationRegisters()
        barrier = Barrier(regs, participants=4)
        senses = [barrier.run_phase() for _ in range(3)]
        assert senses == [1, 2, 3]

    def test_over_arrival_detected(self):
        barrier = Barrier(CommunicationRegisters(), participants=2)
        barrier.arrive()
        barrier.arrive()  # phase completes, counter resets
        barrier.arrive()  # next phase, fine
        assert True

    def test_cost_grows_with_participants(self):
        regs = CommunicationRegisters(access_cycles=8.0)
        small = Barrier(regs, participants=2)
        large = Barrier(regs, participants=32)
        assert large.cost_cycles() > small.cost_cycles()

    def test_cost_consistent_with_node_sync_model(self):
        """The node model's sync parameters should be the same order as
        a commregs barrier: a few hundred to a couple thousand cycles at
        32 CPUs, not microseconds-scale OS dispatch."""
        from repro.machine.presets import sx4_node

        node = sx4_node()
        barrier = Barrier(CommunicationRegisters(), participants=32)
        node_cycles = node.sync_base_cycles + node.sync_per_cpu_cycles * 32
        assert 0.2 < barrier.cost_cycles() / node_cycles < 5.0

    def test_validation(self):
        regs = CommunicationRegisters()
        with pytest.raises(ValueError):
            Barrier(regs, participants=0)
        with pytest.raises(ValueError):
            Barrier(regs, participants=2, counter_index=3, sense_index=3)
