"""Compiled (columnar) costing engine: exact parity and cache behavior."""

import numpy as np
import pytest

from repro.analysis.traces import TRACE_BUILDERS, build_registered_trace
from repro.machine.compiled import (
    ENGINES,
    SORTED_INTRINSICS,
    CompiledTrace,
    compile_trace,
    fsum,
    get_default_engine,
    resolve_engine,
    set_default_engine,
)
from repro.machine.operations import INTRINSICS, ScalarOp, Trace, VectorOp
from repro.machine.presets import canonical_machines, sx4_processor
from repro.perfmon.collector import profile

ALL_MACHINES = list(canonical_machines().values())

REPORT_FIELDS = ("cycles", "seconds", "raw_flops", "flop_equivalents", "words_moved")


def mixed_trace():
    return Trace(
        [
            VectorOp("axpy", length=500, count=3, flops_per_element=2.0,
                     loads_per_element=2.0, stores_per_element=1.0),
            ScalarOp("diag", instructions=1000, flops=50, memory_words=20, count=2),
            VectorOp("gath", length=64, count=5, gather_loads_per_element=1.0,
                     stores_per_element=1.0, load_stride=7,
                     intrinsic_calls=(("exp", 1.0), ("sqrt", 0.5))),
        ],
        name="mixed",
    )


def assert_reports_equal(legacy, compiled):
    for field in REPORT_FIELDS:
        assert getattr(legacy, field) == getattr(compiled, field), field
    assert legacy.mflops == compiled.mflops
    assert legacy.bandwidth_bytes_per_s == compiled.bandwidth_bytes_per_s
    assert legacy.op_names == tuple(compiled.op_names)
    assert list(legacy.op_cycles) == list(compiled.op_cycles)


class TestExactParity:
    @pytest.mark.parametrize("trace_id", sorted(TRACE_BUILDERS))
    def test_registered_traces_all_machines(self, trace_id):
        trace = build_registered_trace(trace_id)
        for proc in ALL_MACHINES:
            legacy = proc.execute(trace, engine="legacy")
            compiled = proc.execute(trace, engine="compiled")
            assert_reports_equal(legacy, compiled)

    @pytest.mark.parametrize("dilation", [1.0, 1.37, 2.5])
    def test_memory_dilation_parity(self, dilation):
        proc = sx4_processor()
        trace = mixed_trace()
        legacy = proc.execute(trace, dilation, engine="legacy")
        compiled = proc.execute(trace, dilation, engine="compiled")
        assert_reports_equal(legacy, compiled)

    def test_cache_machine_parity(self):
        # A cache machine (no vector unit) routes vector ops through the
        # scalar unit's model; the batched path must match there too.
        proc = next(m for m in ALL_MACHINES if m.vector is None)
        legacy = proc.execute(mixed_trace(), engine="legacy")
        compiled = proc.execute(mixed_trace(), engine="compiled")
        assert_reports_equal(legacy, compiled)

    def test_dominant_op_agrees(self):
        proc = sx4_processor()
        trace = mixed_trace()
        assert (proc.execute(trace, engine="legacy").dominant_op()
                == proc.execute(trace, engine="compiled").dominant_op())

    def test_empty_trace(self):
        proc = sx4_processor()
        report = proc.execute(Trace([]), engine="compiled")
        assert report.cycles == 0.0
        assert report.seconds == 0.0
        assert report.dominant_op() == "<empty>"

    def test_dilation_validated_even_when_cached(self):
        proc = sx4_processor()
        trace = mixed_trace()
        proc.execute(trace, 1.0, engine="compiled")  # populate caches
        with pytest.raises(ValueError):
            proc.execute(trace, 0.5, engine="compiled")

    def test_perfmon_counters_match_legacy_shape_and_totals(self):
        proc = sx4_processor()
        trace = build_registered_trace("radabs")
        with profile() as legacy_prof:
            proc.execute(trace, engine="legacy")
        with profile() as compiled_prof:
            proc.execute(trace, engine="compiled")
        legacy_counters = legacy_prof.counters.to_dict()
        compiled_counters = compiled_prof.counters.to_dict()
        assert legacy_counters.keys() == compiled_counters.keys()
        for component, counters in legacy_counters.items():
            assert counters.keys() == compiled_counters[component].keys()
            for name, value in counters.items():
                got = compiled_counters[component][name]
                assert got == pytest.approx(value, rel=1e-12, abs=1e-12), (
                    f"{component}.{name}"
                )


class TestCompileCaching:
    def test_compile_is_cached_on_the_trace(self):
        trace = mixed_trace()
        assert compile_trace(trace) is compile_trace(trace)

    def test_append_invalidates(self):
        trace = mixed_trace()
        first = compile_trace(trace)
        trace.append(ScalarOp("extra", instructions=10))
        second = compile_trace(trace)
        assert second is not first
        assert second.n_ops == first.n_ops + 1

    def test_cost_columns_memoised_per_machine_and_dilation(self):
        proc = sx4_processor()
        trace = mixed_trace()
        a = proc.execute(trace, 1.37, engine="compiled")
        b = proc.execute(trace, 1.37, engine="compiled")
        assert a.op_cycles is b.op_cycles  # steady state: shared cached column
        c = proc.execute(trace, 1.0, engine="compiled")
        assert c.op_cycles is not a.op_cycles

    def test_distinct_machines_do_not_share_costs(self):
        trace = mixed_trace()
        reports = [proc.execute(trace, engine="compiled") for proc in ALL_MACHINES]
        assert len({report.cycles for report in reports}) > 1

    def test_pickled_trace_drops_compile_cache(self):
        import pickle

        trace = mixed_trace()
        compile_trace(trace)
        clone = pickle.loads(pickle.dumps(trace))
        assert clone._cache == {}
        assert sx4_processor().execute(clone).cycles == pytest.approx(
            sx4_processor().execute(trace).cycles
        )


class TestColumns:
    def test_column_layout(self):
        compiled = compile_trace(mixed_trace())
        assert isinstance(compiled, CompiledTrace)
        assert compiled.n_ops == 3
        assert compiled.vector.n == 2
        assert compiled.scalar.n == 1
        assert compiled.vector.intrinsics.shape == (2, len(INTRINSICS))
        assert SORTED_INTRINSICS == tuple(sorted(INTRINSICS))
        # gath: exp at 1.0/elem, sqrt at 0.5/elem, in the sorted columns.
        row = compiled.vector.intrinsics[1]
        assert row[SORTED_INTRINSICS.index("exp")] == 1.0
        assert row[SORTED_INTRINSICS.index("sqrt")] == 0.5
        assert row.sum() == 1.5

    def test_aggregate_totals_match_trace(self):
        trace = mixed_trace()
        compiled = compile_trace(trace)
        assert compiled.raw_flops_total() == trace.raw_flops
        assert compiled.flop_equivalents_total() == trace.flop_equivalents
        assert compiled.words_moved_total() == trace.words_moved

    def test_scatter_restores_trace_order(self):
        compiled = compile_trace(mixed_trace())
        out = compiled.scatter_cycles(
            np.array([1.0, 3.0]), np.array([2.0])
        )
        assert out.tolist() == [1.0, 2.0, 3.0]


class TestEngineSelection:
    def test_engines_tuple(self):
        assert ENGINES == ("compiled", "legacy", "suitebatch")

    def test_default_roundtrip(self):
        original = get_default_engine()
        try:
            assert set_default_engine("legacy") == original
            assert get_default_engine() == "legacy"
            assert resolve_engine(None) == "legacy"
            report = sx4_processor().execute(mixed_trace())
            assert report.engine == "legacy"
        finally:
            set_default_engine(original)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            set_default_engine("bogus")
        with pytest.raises(ValueError):
            resolve_engine("bogus")
        with pytest.raises(ValueError):
            sx4_processor().execute(mixed_trace(), engine="bogus")

    def test_report_records_engine(self):
        proc = sx4_processor()
        assert proc.execute(mixed_trace(), engine="compiled").engine == "compiled"
        assert proc.execute(mixed_trace(), engine="legacy").engine == "legacy"


def test_fsum_matches_math_fsum():
    values = [0.1, 0.2, 0.3, 1e16, -1e16, 0.1]
    import math

    assert fsum(np.array(values)) == math.fsum(values)
    assert fsum(values) == math.fsum(values)
