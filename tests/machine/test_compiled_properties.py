"""Property-based parity tests: compiled vs legacy costing on random traces.

The compiled engine's contract is bit-parity with the per-op reference,
so these properties assert *equality* on the ExecutionReport (per-op
cycles included) for arbitrary generated traces, and ulp-scale agreement
on perfmon counter totals (the one place the two paths accumulate in a
different order: fsum versus sequential addition).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.operations import INTRINSICS, ScalarOp, Trace, VectorOp
from repro.machine.presets import sx4_processor, table1_machines
from repro.perfmon.collector import profile

SX4 = sx4_processor()
#: A Table 1 machine without a vector unit: vector ops cost through the
#: scalar/cache model, the other half of the batched code.
CACHE_MACHINE = next(m for m in table1_machines().values() if m.vector is None)

rates = st.floats(min_value=0.0, max_value=8.0, allow_nan=False)

intrinsic_mixes = st.dictionaries(
    st.sampled_from(sorted(INTRINSICS)),
    st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
    max_size=3,
).map(lambda mix: tuple(sorted(mix.items())))

vector_ops = st.builds(
    VectorOp,
    name=st.sampled_from(["a", "b", "c"]),
    length=st.integers(min_value=1, max_value=200_000),
    count=st.integers(min_value=0, max_value=5_000),
    flops_per_element=rates,
    loads_per_element=rates,
    stores_per_element=rates,
    gather_loads_per_element=rates,
    scatter_stores_per_element=rates,
    load_stride=st.integers(min_value=1, max_value=2048),
    store_stride=st.integers(min_value=1, max_value=2048),
    intrinsic_calls=intrinsic_mixes,
)


@st.composite
def scalar_ops(draw):
    instructions = draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    flops = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)) * instructions
    return ScalarOp(
        name=draw(st.sampled_from(["s", "t"])),
        instructions=instructions,
        flops=flops,
        memory_words=draw(st.floats(min_value=0.0, max_value=1e5, allow_nan=False)),
        count=draw(st.integers(min_value=0, max_value=100)),
    )


traces = st.lists(vector_ops | scalar_ops(), max_size=8).map(
    lambda ops: Trace(ops, name="rand")
)

dilations = st.floats(min_value=1.0, max_value=4.0, allow_nan=False)


def ulps_apart(a: float, b: float) -> float:
    if a == b:
        return 0.0
    return abs(a - b) / math.ulp(max(abs(a), abs(b)))


def assert_report_parity(processor, trace, dilation=1.0):
    legacy = processor.execute(trace, dilation, engine="legacy")
    compiled = processor.execute(trace, dilation, engine="compiled")
    assert list(legacy.op_cycles) == list(compiled.op_cycles)
    assert legacy.cycles == compiled.cycles
    assert legacy.seconds == compiled.seconds
    assert legacy.raw_flops == compiled.raw_flops
    assert legacy.flop_equivalents == compiled.flop_equivalents
    assert legacy.words_moved == compiled.words_moved
    assert legacy.mflops == compiled.mflops
    assert legacy.bandwidth_bytes_per_s == compiled.bandwidth_bytes_per_s


@given(trace=traces)
def test_vector_machine_report_parity(trace):
    assert_report_parity(SX4, trace)


@given(trace=traces)
def test_cache_machine_report_parity(trace):
    assert_report_parity(CACHE_MACHINE, trace)


@given(trace=traces, dilation=dilations)
@settings(max_examples=50)
def test_dilated_report_parity(trace, dilation):
    assert_report_parity(SX4, trace, dilation)


@given(trace=traces)
@settings(max_examples=50)
def test_perfmon_counter_totals_parity(trace):
    """Counter key sets match exactly; totals agree to ulp scale."""
    with profile() as legacy_prof:
        SX4.execute(trace, engine="legacy")
    with profile() as compiled_prof:
        SX4.execute(trace, engine="compiled")
    legacy = legacy_prof.counters.to_dict()
    compiled = compiled_prof.counters.to_dict()
    assert legacy.keys() == compiled.keys()
    for component, counters in legacy.items():
        assert counters.keys() == compiled[component].keys(), component
        for name, value in counters.items():
            got = compiled[component][name]
            # fsum vs sequential accumulation: allow a sliver of drift
            # proportional to the number of contributing ops.
            assert ulps_apart(value, got) <= 64.0 * max(1, len(trace)), (
                f"{component}.{name}: legacy={value!r} compiled={got!r}"
            )


@given(trace=traces)
@settings(max_examples=25)
def test_compiled_matches_trace_aggregates(trace):
    report = SX4.execute(trace, engine="compiled")
    assert report.raw_flops == trace.raw_flops
    assert report.flop_equivalents == trace.flop_equivalents
    assert report.words_moved == trace.words_moved
