"""Tests for XMU, IOP/disk, and IXS device models."""

import pytest

from repro.machine.iop import DiskArray, IOProcessor
from repro.machine.ixs import InternodeCrossbar, MultiNodeSystem
from repro.machine.presets import sx4_node
from repro.machine.xmu import ExtendedMemoryUnit
from repro.units import GB, MB


class TestXMU:
    def test_transfer_time_dominated_by_bandwidth_for_large(self):
        xmu = ExtendedMemoryUnit()
        one_gb = xmu.transfer_seconds(1 * GB)
        assert one_gb == pytest.approx(1 * GB / xmu.bandwidth_bytes_per_s, rel=0.01)

    def test_zero_transfer_free(self):
        assert ExtendedMemoryUnit().transfer_seconds(0) == 0.0

    def test_fits(self):
        xmu = ExtendedMemoryUnit(capacity_bytes=4 * GB)
        assert xmu.fits(3 * GB)
        assert not xmu.fits(5 * GB)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExtendedMemoryUnit(capacity_bytes=0)
        with pytest.raises(ValueError):
            ExtendedMemoryUnit().transfer_seconds(-1)


class TestIOP:
    def test_channel_bandwidth(self):
        iop = IOProcessor()
        # 1.6 GB in ~1 second plus overhead.
        assert iop.channel_seconds(1.6 * GB) == pytest.approx(1.0, rel=0.01)

    def test_request_overhead_scales(self):
        iop = IOProcessor()
        one = iop.channel_seconds(1 * MB, requests=1)
        many = iop.channel_seconds(1 * MB, requests=100)
        assert many > one

    def test_validation(self):
        iop = IOProcessor()
        with pytest.raises(ValueError):
            iop.channel_seconds(-1)
        with pytest.raises(ValueError):
            iop.channel_seconds(1, requests=0)
        with pytest.raises(ValueError):
            IOProcessor(bandwidth_bytes_per_s=0)


class TestDiskArray:
    def test_capacity(self):
        array = DiskArray(disks=16, disk_capacity_bytes=18 * GB)
        assert array.capacity_bytes == pytest.approx(288 * GB)

    def test_stripe_rate_caps_at_iop(self):
        small = DiskArray(disks=4)
        big = DiskArray(disks=10_000)  # absurd stripe, IOP-limited
        assert small.stripe_rate_bytes_per_s == pytest.approx(4 * small.media_rate_bytes_per_s)
        assert big.stripe_rate_bytes_per_s == pytest.approx(big.iop.bandwidth_bytes_per_s)

    def test_sequential_faster_than_random(self):
        array = DiskArray()
        size = 64 * MB
        assert array.access_seconds(size, sequential=True) < array.access_seconds(
            size, sequential=False
        )

    def test_small_transfers_positioning_dominated(self):
        array = DiskArray()
        bw_small = array.sequential_bandwidth(64 * 1024)
        bw_large = array.sequential_bandwidth(1 * GB)
        assert bw_large > 10 * bw_small

    def test_rotational_latency(self):
        array = DiskArray(rpm=7200)
        assert array.rotational_latency_s == pytest.approx(0.5 * 60 / 7200)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskArray(disks=0)
        with pytest.raises(ValueError):
            DiskArray().access_seconds(-1)


class TestIXS:
    def test_bisection_matches_paper(self):
        """128 GB/s bisection for a full 16-node system."""
        ixs = InternodeCrossbar()
        assert ixs.bisection_bytes_per_s(16) == pytest.approx(128 * GB)

    def test_transfer_time(self):
        ixs = InternodeCrossbar()
        t = ixs.transfer_seconds(8 * GB)
        assert t == pytest.approx(1.0, rel=0.01)

    def test_barrier_grows_logarithmically(self):
        ixs = InternodeCrossbar()
        assert ixs.barrier_seconds(1) == 0.0
        assert ixs.barrier_seconds(16) > ixs.barrier_seconds(2) > 0

    def test_node_bounds(self):
        ixs = InternodeCrossbar()
        with pytest.raises(ValueError):
            ixs.bisection_bytes_per_s(1)
        with pytest.raises(ValueError):
            ixs.bisection_bytes_per_s(17)


class TestMultiNodeSystem:
    def test_sx4_512_aggregate_numbers(self):
        """Section 2: an SX-4/512 has >8 TB/s memory bandwidth and 512 CPUs."""
        system = MultiNodeSystem(node=sx4_node(cpus=32, period_ns=8.0), node_count=16)
        assert system.cpu_count == 512
        assert system.aggregate_memory_bandwidth_bytes_per_s == pytest.approx(8.192e12)
        assert system.peak_flops == pytest.approx(1.024e12)

    def test_single_node_exchange_free(self):
        system = MultiNodeSystem(node=sx4_node(), node_count=1)
        assert system.exchange_seconds(1 * GB) == 0.0

    def test_exchange_time_positive(self):
        system = MultiNodeSystem(node=sx4_node(), node_count=4)
        assert system.exchange_seconds(1 * GB) > 0

    def test_node_count_bounds(self):
        with pytest.raises(ValueError):
            MultiNodeSystem(node=sx4_node(), node_count=17)
        with pytest.raises(ValueError):
            MultiNodeSystem(node=sx4_node(), node_count=0)


class TestAllToAll:
    def test_zero_and_single_node_free(self):
        system = MultiNodeSystem(node=sx4_node(), node_count=4)
        assert system.alltoall_seconds(0.0) == 0.0
        single = MultiNodeSystem(node=sx4_node(), node_count=1)
        assert single.alltoall_seconds(1 * GB) == 0.0

    def test_latency_dominates_small_messages(self):
        system = MultiNodeSystem(node=sx4_node(), node_count=16)
        tiny = system.alltoall_seconds(16 * 1024)
        # 15 rounds of ~5us latency dwarf the byte time.
        assert tiny > 10 * (16 * 1024 / 16) / system.ixs.channel_bytes_per_s

    def test_more_nodes_more_rounds(self):
        few = MultiNodeSystem(node=sx4_node(), node_count=2)
        many = MultiNodeSystem(node=sx4_node(), node_count=16)
        assert many.alltoall_seconds(1024) > few.alltoall_seconds(1024)

    def test_negative_rejected(self):
        system = MultiNodeSystem(node=sx4_node(), node_count=4)
        with pytest.raises(ValueError):
            system.alltoall_seconds(-1.0)
