"""Tests for the SX-4's three hardware floating-point formats."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import floatformats as ff

reasonable_floats = st.floats(
    min_value=1e-30, max_value=1e30, allow_nan=False, allow_infinity=False
)


class TestFormatDefinitions:
    def test_ieee_double_matches_host(self):
        fmt = ff.IEEE_DOUBLE
        assert fmt.epsilon == np.finfo(np.float64).eps
        assert fmt.precision == 53

    def test_ieee_single_matches_host(self):
        assert ff.IEEE_SINGLE.epsilon == pytest.approx(np.finfo(np.float32).eps)

    def test_cray_has_less_precision_more_range(self):
        cray, ieee = ff.CRAY_SINGLE, ff.IEEE_DOUBLE
        assert cray.precision < ieee.precision
        assert cray.max_exponent > ieee.max_exponent
        assert cray.chopped

    def test_ibm_is_hexadecimal(self):
        assert ff.IBM_SINGLE.radix == 16
        # 6 hex digits: between 21 and 24 effective bits (the wobble).
        assert 21 <= ff.IBM_SINGLE.binary_digits <= 24

    def test_validation(self):
        with pytest.raises(ValueError):
            ff.FloatFormat("bad", radix=1, precision=4, min_exponent=-4, max_exponent=4)
        with pytest.raises(ValueError):
            ff.FloatFormat("bad", radix=2, precision=0, min_exponent=-4, max_exponent=4)
        with pytest.raises(ValueError):
            ff.FloatFormat("bad", radix=2, precision=4, min_exponent=4, max_exponent=4)


class TestQuantize:
    def test_ieee_double_is_identity_on_doubles(self):
        fmt = ff.IEEE_DOUBLE
        for value in (1.0, 1 / 3, math.pi, 1e-300, 1e300, -2.5):
            assert fmt.quantize(value) == value

    def test_single_matches_float32_rounding(self):
        fmt = ff.IEEE_SINGLE
        rng = np.random.default_rng(0)
        for value in rng.uniform(0.1, 100.0, 200):
            assert fmt.quantize(float(value)) == float(np.float32(value))

    def test_exactly_representable_preserved(self):
        for fmt in ff.ALL_FORMATS:
            for value in (1.0, 2.0, 0.5, 3.0, -4.0, 1024.0):
                assert fmt.quantize(value) == value, fmt.name

    def test_cray_chops_toward_zero(self):
        fmt = ff.CRAY_SINGLE
        eps = fmt.epsilon
        assert fmt.quantize(1.0 + 0.9 * eps) == 1.0
        assert fmt.quantize(-(1.0 + 0.9 * eps)) == -1.0

    def test_ibm_hex_granularity(self):
        """Values just above 1.0 snap to 16**-5 steps."""
        fmt = ff.IBM_SINGLE
        step = 16.0**-5
        assert fmt.quantize(1.0 + 0.6 * step) == pytest.approx(1.0 + step)
        assert fmt.quantize(1.0 + 0.4 * step) == 1.0

    def test_flush_to_zero_below_tiny(self):
        fmt = ff.IBM_SINGLE
        assert fmt.quantize(fmt.tiny / 100.0) == 0.0
        assert fmt.quantize(fmt.tiny) == pytest.approx(fmt.tiny)

    def test_overflow_raises(self):
        with pytest.raises(OverflowError):
            ff.IBM_SINGLE.quantize(1e80)

    def test_zero_and_nonfinite_pass_through(self):
        fmt = ff.CRAY_SINGLE
        assert fmt.quantize(0.0) == 0.0
        assert math.isinf(fmt.quantize(math.inf))

    def test_quantize_array_shape(self):
        fmt = ff.IBM_SINGLE
        arr = np.linspace(0.1, 1.0, 12).reshape(3, 4)
        out = fmt.quantize_array(arr)
        assert out.shape == (3, 4)
        assert np.all(out == fmt.quantize_array(out))  # idempotent

    @given(value=reasonable_floats)
    @settings(max_examples=60)
    def test_quantize_idempotent(self, value):
        for fmt in ff.ALL_FORMATS:
            once = fmt.quantize(value)
            assert fmt.quantize(once) == once

    @given(value=reasonable_floats)
    @settings(max_examples=60)
    def test_quantize_relative_error_bounded(self, value):
        """|q(x) - x| <= eps * |x| for round-to-nearest; <= 2eps chopped."""
        for fmt in ff.ALL_FORMATS:
            q = fmt.quantize(value)
            if q == 0.0:  # flushed below tiny
                continue
            bound = fmt.epsilon * (1.0 if not fmt.chopped else 2.0)
            assert abs(q - value) <= bound * abs(value) * 1.001


class TestArithmetic:
    def test_add_rounds_result(self):
        fmt = ff.IBM_SINGLE
        result = fmt.add(1.0, 16.0**-7)  # far below one ulp of 1.0
        assert result == 1.0

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            ff.CRAY_SINGLE.div(1.0, 0.0)

    def test_associativity_failure_visible(self):
        """Low-precision formats break associativity earlier than IEEE."""
        fmt = ff.IBM_SINGLE
        big, small = 1.0, fmt.epsilon / 4.0
        left = fmt.add(fmt.add(big, small), small)
        right = fmt.add(big, fmt.add(small, small))
        assert left == 1.0  # each tiny add rounds away
        assert right > 1.0 or right == 1.0  # may survive when pre-summed


class TestProbes:
    """The PARANOIA-style probes detect each format's declared nature."""

    @pytest.mark.parametrize("fmt", ff.ALL_FORMATS, ids=lambda f: f.name)
    def test_radix_detected(self, fmt):
        assert ff.detect_radix(fmt) == fmt.radix

    @pytest.mark.parametrize("fmt", ff.ALL_FORMATS, ids=lambda f: f.name)
    def test_precision_detected(self, fmt):
        assert ff.detect_precision(fmt) == fmt.precision

    def test_rounding_mode_detected(self):
        assert ff.rounds_to_nearest(ff.IEEE_DOUBLE)
        assert ff.rounds_to_nearest(ff.IEEE_SINGLE)
        assert ff.rounds_to_nearest(ff.IBM_SINGLE)
        assert not ff.rounds_to_nearest(ff.CRAY_SINGLE)

    def test_hardware_performance_identical_claim(self):
        """'Hardware performance is identical with all 64-bit formats' —
        format selection is a compile-time property, so the machine model
        deliberately has no per-format timing knob."""
        from repro.machine.presets import sx4_processor

        proc = sx4_processor()
        assert not hasattr(proc.vector, "float_format")
