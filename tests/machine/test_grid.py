"""MachineGrid: structure, materialization, and bit-exact costing parity.

The grid's contract is that it is a *faster spelling* of the per-machine
compiled path, never a different model — so the core tests here assert
``==`` on floats, not ``approx``: every registered trace, costed against
a grid holding all six canonical presets, must reproduce each machine's
compiled ``ExecutionReport`` bit-for-bit on cycles, seconds, Mflops, and
bandwidth.
"""

import numpy as np
import pytest

from repro.analysis.traces import TRACE_BUILDERS, build_registered_trace
from repro.machine.grid import MachineGrid, cost_trace_grid
from repro.machine.presets import canonical_machines, cray_ymp, sx4_processor

ALL_TRACE_IDS = tuple(TRACE_BUILDERS)


@pytest.fixture(scope="module")
def machines():
    return canonical_machines()


@pytest.fixture(scope="module")
def grid(machines):
    return MachineGrid.from_processors(list(machines.values()))


class TestStructure:
    def test_names_and_shape(self, grid, machines):
        assert grid.names == tuple(machines)
        assert grid.n_machines == 6
        assert grid.period_ns.shape == (6,)
        assert grid.vector_intrinsic_rates.shape == (6, 6)

    def test_has_vector_split(self, grid, machines):
        expected = tuple(m.vector is not None for m in machines.values())
        assert tuple(grid.has_vector) == expected

    def test_subset_reorders_and_repeats(self, grid):
        sub = grid.subset(np.array([4, 4, 0]))
        assert sub.n_machines == 3
        assert sub.names == (grid.names[4], grid.names[4], grid.names[0])
        assert sub.period_ns[0] == sub.period_ns[1] == grid.period_ns[4]

    def test_concat_round_trip(self, grid):
        front = grid.subset(np.arange(3))
        back = grid.subset(np.arange(3, 6))
        glued = MachineGrid.concat([front, back])
        assert glued.names == grid.names
        assert (glued.banks == grid.banks).all()

    def test_validate_accepts_built_grid(self, grid):
        grid.validate()

    def test_validate_rejects_bad_column(self, grid):
        broken = grid.subset(np.arange(6))
        broken.pipes[2] = -1.0
        with pytest.raises(ValueError, match="pipes"):
            broken.validate()

    def test_from_processors_needs_machines(self):
        with pytest.raises(ValueError):
            MachineGrid.from_processors([])


class TestFingerprint:
    def test_stable_and_name_independent(self, grid):
        again = MachineGrid.from_processors(list(canonical_machines().values()))
        assert grid.fingerprint() == again.fingerprint()
        renamed = grid.subset(np.arange(6))
        renamed = MachineGrid(
            names=tuple(f"m{i}" for i in range(6)),
            **{k: v for k, v in renamed._columns()},
        )
        assert renamed.fingerprint() == grid.fingerprint()

    def test_sensitive_to_values(self, grid):
        tweaked = grid.subset(np.arange(6))
        tweaked.period_ns[0] *= 2.0
        assert tweaked.fingerprint() != grid.fingerprint()

    def test_sensitive_to_order(self, grid):
        assert grid.subset(np.arange(5, -1, -1)).fingerprint() != grid.fingerprint()


class TestMaterialize:
    def test_round_trips_each_preset(self, grid, machines):
        for index, (name, processor) in enumerate(machines.items()):
            rebuilt = grid.materialize(index)
            assert rebuilt.name == name
            trace = build_registered_trace("hint")
            assert rebuilt.execute(trace) == processor.execute(trace)

    def test_memoised(self, grid):
        assert grid.materialize(0) is grid.materialize(0)

    def test_integral_parameters_are_ints(self, grid, machines):
        sx4 = grid.materialize(list(machines).index("NEC SX-4 (9.2 ns)"))
        assert isinstance(sx4.vector.pipes, int)
        assert isinstance(sx4.memory.banks, int)


class TestExactParity:
    """The tentpole contract: grid == per-machine compiled, bit for bit."""

    @pytest.mark.parametrize("trace_id", ALL_TRACE_IDS)
    def test_all_traces_all_presets(self, grid, machines, trace_id):
        trace = build_registered_trace(trace_id)
        cost = cost_trace_grid(trace, grid)
        for j, processor in enumerate(machines.values()):
            report = processor.execute(trace, engine="compiled")
            assert cost.cycles[j] == report.cycles
            assert cost.seconds[j] == report.seconds
            assert cost.mflops[j] == report.mflops
            assert cost.bandwidth_bytes_per_s[j] == report.bandwidth_bytes_per_s

    @pytest.mark.parametrize("dilation", [1.0, 1.37, 2.5])
    def test_dilated_parity(self, grid, machines, dilation):
        trace = build_registered_trace("radabs")
        cost = cost_trace_grid(trace, grid, memory_dilation=dilation)
        for j, processor in enumerate(machines.values()):
            report = processor.execute(trace, memory_dilation=dilation)
            assert cost.cycles[j] == report.cycles
            assert cost.seconds[j] == report.seconds

    def test_report_matches_processor_report(self, grid, machines):
        trace = build_registered_trace("linpack")
        cost = cost_trace_grid(trace, grid)
        for j, processor in enumerate(machines.values()):
            report = cost.report(j)
            direct = processor.execute(trace, engine="compiled")
            assert report.cycles == direct.cycles
            assert report.seconds == direct.seconds
            assert report.machine == direct.machine

    def test_per_op_methods_match_processor(self, grid, machines):
        # The REPO007/REPO009 reference chain: grid per-op == Processor per-op.
        trace = build_registered_trace("ccm2")
        for index, processor in enumerate(machines.values()):
            for op in trace.ops[:10]:
                if hasattr(op, "length"):
                    assert grid.vector_op_cycles(op, index) == processor.vector_op_cycles(op)
                else:
                    assert grid.scalar_op_cycles(op, index) == processor.scalar_op_cycles(op)

    def test_memoised_costing_is_identical(self, grid):
        trace = build_registered_trace("hint")
        first = cost_trace_grid(trace, grid)
        second = cost_trace_grid(trace, grid)
        assert (first.cycles == second.cycles).all()


class TestHomogeneousGrids:
    def test_vector_only_grid(self):
        grid = MachineGrid.from_processors([sx4_processor(), cray_ymp()])
        trace = build_registered_trace("stream")
        cost = cost_trace_grid(trace, grid)
        assert cost.cycles[0] == sx4_processor().execute(trace).cycles
        assert cost.cycles[1] == cray_ymp().execute(trace).cycles

    def test_single_machine_grid(self):
        grid = MachineGrid.from_processors([sx4_processor()])
        trace = build_registered_trace("nas-ep")
        cost = cost_trace_grid(trace, grid)
        assert cost.n_machines == 1
        assert cost.cycles[0] == sx4_processor().execute(trace).cycles
