"""Property-based grid parity: random machines, random traces, exact equality.

Two directions of randomness pin the grid down where example tests
cannot:

* a random *grid point* (random clock/pipes/banks/cache geometry around
  the calibrated presets) must cost every trace bit-identically to
  building that machine as a :class:`Processor` and executing on the
  compiled path — the grid is the same model over any parameters, not
  just the six the presets happen to use;
* a random *trace* against the canonical grid must match per-machine
  execution — the op side of the broadcast is as arbitrary as the
  machine side.

A smaller sample additionally chains down to the legacy per-op engine
(compiled==legacy is already pinned elsewhere; asserting it here closes
the loop grid -> batch -> per-op on the same inputs).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.traces import build_registered_trace
from repro.machine.grid import MachineGrid, cost_trace_grid
from repro.machine.operations import INTRINSICS, ScalarOp, Trace, VectorOp
from repro.machine.presets import canonical_machines, sun_sparc20, sx4_processor

CANONICAL = list(canonical_machines().values())

rates = st.floats(min_value=0.0, max_value=8.0, allow_nan=False)

intrinsic_mixes = st.dictionaries(
    st.sampled_from(sorted(INTRINSICS)),
    st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
    max_size=3,
).map(lambda mix: tuple(sorted(mix.items())))

vector_ops = st.builds(
    VectorOp,
    name=st.sampled_from(["a", "b", "c"]),
    length=st.integers(min_value=1, max_value=200_000),
    count=st.integers(min_value=0, max_value=5_000),
    flops_per_element=rates,
    loads_per_element=rates,
    stores_per_element=rates,
    gather_loads_per_element=rates,
    scatter_stores_per_element=rates,
    load_stride=st.integers(min_value=1, max_value=2048),
    store_stride=st.integers(min_value=1, max_value=2048),
    intrinsic_calls=intrinsic_mixes,
)


@st.composite
def scalar_ops(draw):
    instructions = draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    flops = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)) * instructions
    return ScalarOp(
        name=draw(st.sampled_from(["s", "t"])),
        instructions=instructions,
        flops=flops,
        memory_words=draw(st.floats(min_value=0.0, max_value=1e5, allow_nan=False)),
        count=draw(st.integers(min_value=0, max_value=100)),
    )


traces = st.lists(vector_ops | scalar_ops(), max_size=8).map(
    lambda ops: Trace(ops, name="rand")
)


@st.composite
def grid_points(draw):
    """A random machine as (base preset index, column overrides)."""
    vector = draw(st.booleans())
    overrides = {"period_ns": draw(st.floats(min_value=0.5, max_value=50.0))}
    if vector:
        overrides.update(
            pipes=float(draw(st.integers(min_value=1, max_value=32))),
            concurrent_sets=float(draw(st.integers(min_value=1, max_value=4))),
            startup_cycles=draw(st.floats(min_value=0.0, max_value=200.0)),
            register_length=float(draw(st.integers(min_value=8, max_value=512))),
            stripmine_cycles=draw(st.floats(min_value=0.0, max_value=50.0)),
            banks=draw(st.integers(min_value=1, max_value=4096)),
            bank_busy_cycles=draw(st.floats(min_value=0.25, max_value=16.0)),
            port_words_per_cycle=draw(st.floats(min_value=0.5, max_value=32.0)),
        )
    else:
        overrides.update(
            issue_width=draw(st.floats(min_value=0.5, max_value=8.0)),
            flops_per_cycle=draw(st.floats(min_value=0.25, max_value=8.0)),
            cache_size_bytes=draw(st.integers(min_value=1024, max_value=1 << 24)),
            cache_line_bytes=8 * draw(st.integers(min_value=1, max_value=64)),
            cache_hit_cycles_per_word=draw(st.floats(min_value=0.25, max_value=8.0)),
            cache_mem_words_per_cycle=draw(st.floats(min_value=0.1, max_value=8.0)),
        )
    return vector, overrides


def build_point_grid(vector: bool, overrides: dict) -> MachineGrid:
    base = sx4_processor() if vector else sun_sparc20()
    grid = MachineGrid.from_processors([base])
    for column, value in overrides.items():
        array = getattr(grid, column)
        array[0] = value if array.dtype != np.int64 else int(value)
    grid.validate()
    return grid


@given(point=grid_points(), trace=traces)
@settings(max_examples=40, deadline=None)
def test_random_grid_point_matches_direct_processor(point, trace):
    vector, overrides = point
    grid = build_point_grid(vector, overrides)
    cost = cost_trace_grid(trace, grid)
    processor = grid.materialize(0)
    report = processor.execute(trace, engine="compiled")
    assert cost.cycles[0] == report.cycles
    assert cost.seconds[0] == report.seconds
    assert cost.mflops[0] == report.mflops
    assert cost.bandwidth_bytes_per_s[0] == report.bandwidth_bytes_per_s


@given(point=grid_points())
@settings(max_examples=10, deadline=None)
def test_random_grid_point_chains_to_legacy(point):
    vector, overrides = point
    grid = build_point_grid(vector, overrides)
    trace = build_registered_trace("hint")
    cost = cost_trace_grid(trace, grid)
    legacy = grid.materialize(0).execute(trace, engine="legacy")
    assert cost.cycles[0] == legacy.cycles
    assert cost.seconds[0] == legacy.seconds


@given(trace=traces, dilation=st.floats(min_value=1.0, max_value=4.0, allow_nan=False))
@settings(max_examples=25, deadline=None)
def test_random_trace_matches_per_machine_execution(trace, dilation):
    grid = MachineGrid.from_processors(CANONICAL)
    cost = cost_trace_grid(trace, grid, memory_dilation=dilation)
    for j, processor in enumerate(CANONICAL):
        report = processor.execute(trace, memory_dilation=dilation, engine="compiled")
        assert cost.cycles[j] == report.cycles
        assert cost.mflops[j] == report.mflops
