"""Tests for the executable vector-ISA simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.isa import (
    Instr,
    VectorMachine,
    assemble_copy,
    assemble_daxpy,
    assemble_gather,
)
from repro.machine.operations import Trace, VectorOp
from repro.machine.presets import sx4_processor


def fresh(memory_words=1 << 16):
    return VectorMachine(memory_words=memory_words)


class TestBasics:
    def test_setvl_bounds(self):
        vm = fresh()
        vm.execute(Instr("setvl", imm=100))
        assert vm.vl == 100
        with pytest.raises(ValueError):
            vm.execute(Instr("setvl", imm=0))
        with pytest.raises(ValueError):
            vm.execute(Instr("setvl", imm=vm.max_vl + 1))

    def test_load_store_roundtrip(self):
        vm = fresh()
        vm.memory[100:356] = np.arange(256.0)
        vm.execute(Instr("lds", vd=0, imm=100, stride=1))
        vm.execute(Instr("sts", vs1=0, imm=1000, stride=1))
        assert np.array_equal(vm.memory[1000:1256], np.arange(256.0))

    def test_strided_load(self):
        vm = fresh()
        vm.memory[: 3 * 256 : 3] = 7.0
        vm.execute(Instr("lds", vd=0, imm=0, stride=3))
        assert np.all(vm.vregs[0] == 7.0)

    def test_arithmetic(self):
        vm = fresh()
        vm.execute(Instr("setvl", imm=8))
        vm.vregs[0, :8] = np.arange(8.0)
        vm.vregs[1, :8] = 2.0
        vm.execute(Instr("vmul", vd=2, vs1=0, vs2=1))
        assert np.array_equal(vm.vregs[2, :8], 2.0 * np.arange(8.0))
        vm.execute(Instr("vadds", vd=3, vs1=2, imm=1.0))
        assert np.array_equal(vm.vregs[3, :8], 2.0 * np.arange(8.0) + 1.0)

    def test_reduction(self):
        vm = fresh()
        vm.execute(Instr("setvl", imm=10))
        vm.vregs[0, :10] = np.arange(10.0)
        vm.execute(Instr("vsum", vd=0, vs1=0))
        assert vm.sregs[0] == 45.0
        vm.execute(Instr("vmaxval", vd=1, vs1=0))
        assert vm.sregs[1] == 9.0

    def test_divide_by_zero_trapped(self):
        vm = fresh()
        vm.vregs[1, :] = 0.0
        with pytest.raises(ZeroDivisionError):
            vm.execute(Instr("vdiv", vd=2, vs1=0, vs2=1))

    def test_memory_bounds_checked(self):
        vm = fresh(memory_words=100)
        with pytest.raises(IndexError):
            vm.execute(Instr("lds", vd=0, imm=0, stride=1))  # vl=256 > 100 words
        vm.execute(Instr("setvl", imm=10))
        with pytest.raises(IndexError):
            vm.execute(Instr("lds", vd=0, imm=95, stride=1))

    def test_register_bounds_checked(self):
        vm = fresh()
        with pytest.raises(ValueError):
            vm.execute(Instr("vadd", vd=99, vs1=0, vs2=1))
        with pytest.raises(ValueError):
            vm.execute(Instr("nonsense"))

    def test_cycle_accounting_monotone(self):
        vm = fresh()
        assert vm.cycles == 0.0
        vm.execute(Instr("setvl", imm=64))
        c1 = vm.cycles
        vm.execute(Instr("vadd", vd=2, vs1=0, vs2=1))
        assert vm.cycles > c1
        assert vm.instructions_retired == 2


class TestKernels:
    def test_copy_program_correct(self):
        vm = fresh()
        data = np.random.default_rng(0).standard_normal(1000)
        vm.memory[0:1000] = data
        vm.run(assemble_copy(src=0, dst=2000, n=1000))
        assert np.array_equal(vm.memory[2000:3000], data)

    def test_daxpy_program_correct(self):
        vm = fresh()
        rng = np.random.default_rng(1)
        x, y = rng.standard_normal(700), rng.standard_normal(700)
        vm.memory[0:700] = x
        vm.memory[1000:1700] = y
        vm.run(assemble_daxpy(x=0, y=1000, n=700, alpha=2.5))
        assert np.allclose(vm.memory[1000:1700], y + 2.5 * x)

    def test_gather_program_correct(self):
        vm = fresh()
        rng = np.random.default_rng(2)
        data = rng.standard_normal(500)
        indx = rng.permutation(500)
        vm.memory[0:500] = data
        vm.memory[1000:1500] = indx.astype(float)
        vm.run(assemble_gather(src=0, index=1000, dst=3000, n=500))
        assert np.array_equal(vm.memory[3000:3500], data[indx])

    @given(n=st.integers(1, 2000), seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_copy_any_length(self, n, seed):
        vm = fresh()
        data = np.random.default_rng(seed).standard_normal(n)
        vm.memory[0:n] = data
        vm.run(assemble_copy(src=0, dst=8000, n=n))
        assert np.array_equal(vm.memory[8000 : 8000 + n], data)

    def test_assembler_validation(self):
        with pytest.raises(ValueError):
            assemble_copy(0, 100, 0)
        with pytest.raises(ValueError):
            assemble_daxpy(0, 100, -1, 1.0)
        with pytest.raises(ValueError):
            assemble_gather(0, 100, 200, 0)


class TestCrossValidation:
    """The ISA simulator's cycles agree with the analytic trace model —
    the check that keeps the two layers of the machine model consistent."""

    def test_copy_cycles_match_analytic_model(self):
        n = 100_000
        vm = VectorMachine(memory_words=2 * n + 4096)
        vm.memory[0:n] = 1.0
        isa_cycles = vm.run(assemble_copy(src=0, dst=n, n=n))

        proc = sx4_processor()
        trace = Trace([VectorOp("copy", length=n, loads_per_element=1,
                                stores_per_element=1)])
        analytic_cycles = proc.execute(trace).cycles
        # The ISA program issues loads and stores as separate instructions
        # (no overlap), so it is the pessimistic bound; the analytic model
        # overlaps the two paths.  They agree within the startup envelope.
        assert analytic_cycles <= isa_cycles <= 3.0 * analytic_cycles

    def test_gather_slower_than_copy_like_the_ia_benchmark(self):
        n = 50_000
        vm1 = VectorMachine(memory_words=4 * n)
        vm1.memory[0:n] = 1.0
        copy_cycles = vm1.run(assemble_copy(src=0, dst=2 * n, n=n))

        vm2 = VectorMachine(memory_words=4 * n)
        vm2.memory[0:n] = 1.0
        vm2.memory[n : 2 * n] = np.arange(n, dtype=float)
        gather_cycles = vm2.run(assemble_gather(src=0, index=n, dst=2 * n, n=n))
        assert gather_cycles > 1.5 * copy_cycles

    def test_long_vectors_amortise_startup(self):
        def cycles_per_element(n):
            vm = VectorMachine(memory_words=4 * n + 4096)
            return vm.run(assemble_copy(src=0, dst=2 * n, n=n)) / n

        assert cycles_per_element(100_000) < 0.4 * cycles_per_element(64)
