"""Tests for operation descriptors and traces."""

import pytest

from repro.machine.operations import (
    INTRINSIC_FLOP_EQUIV,
    ScalarOp,
    Trace,
    VectorOp,
)


class TestVectorOp:
    def test_elements_accounting(self):
        op = VectorOp("v", length=100, count=5, flops_per_element=2.0)
        assert op.elements == 500
        assert op.raw_flops == 1000

    def test_flop_equivalents_include_intrinsics(self):
        op = VectorOp.make(
            "v", 10, count=2, flops_per_element=1.0, intrinsics={"exp": 1.0}
        )
        expected = 10 * 2 * (1.0 + INTRINSIC_FLOP_EQUIV["exp"])
        assert op.flop_equivalents == pytest.approx(expected)

    def test_words_moved_counts_data_not_indices(self):
        op = VectorOp(
            "gather",
            length=100,
            loads_per_element=0.0,
            stores_per_element=1.0,
            gather_loads_per_element=1.0,
        )
        # 1 gathered load + 1 store per element; index words excluded.
        assert op.words_moved == pytest.approx(200)

    def test_scaled_multiplies_count(self):
        op = VectorOp("v", length=8, count=3.0)
        assert op.scaled(4.0).count == pytest.approx(12.0)

    def test_intrinsics_sorted_and_filtered(self):
        op = VectorOp.make("v", 4, intrinsics={"sqrt": 0.5, "exp": 0.0})
        assert op.intrinsic_calls == (("sqrt", 0.5),)

    def test_unknown_intrinsic_rejected(self):
        with pytest.raises(ValueError):
            VectorOp.make("v", 4, intrinsics={"tanh": 1.0})  # repolint: skip

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            VectorOp("v", length=0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            VectorOp("v", length=4, count=-1)
        with pytest.raises(ValueError):
            VectorOp("v", length=4, flops_per_element=-1)

    def test_invalid_stride_rejected(self):
        with pytest.raises(ValueError):
            VectorOp("v", length=4, load_stride=0)

    def test_frozen(self):
        op = VectorOp("v", length=4)
        with pytest.raises(AttributeError):
            op.length = 8


class TestScalarOp:
    def test_accounting(self):
        op = ScalarOp("s", instructions=10, flops=2, memory_words=3, count=7)
        assert op.raw_flops == 14
        assert op.words_moved == 21
        assert op.flop_equivalents == op.raw_flops

    def test_flops_cannot_exceed_instructions(self):
        with pytest.raises(ValueError):
            ScalarOp("s", instructions=1, flops=2)

    def test_scaled(self):
        op = ScalarOp("s", instructions=10, count=2)
        assert op.scaled(3).count == pytest.approx(6)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ScalarOp("s", instructions=-1)


class TestTrace:
    def make_trace(self):
        return Trace(
            [
                VectorOp("a", length=10, count=2, flops_per_element=2.0,
                         loads_per_element=1.0, stores_per_element=1.0),
                ScalarOp("b", instructions=100, flops=10, memory_words=5, count=3),
            ],
            name="t",
        )

    def test_aggregates(self):
        trace = self.make_trace()
        assert trace.raw_flops == pytest.approx(10 * 2 * 2 + 10 * 3)
        assert trace.words_moved == pytest.approx(10 * 2 * 2 + 5 * 3)
        assert trace.bytes_moved == pytest.approx(trace.words_moved * 8)

    def test_concatenation(self):
        t1, t2 = self.make_trace(), self.make_trace()
        combined = t1 + t2
        assert len(combined) == 4
        assert combined.raw_flops == pytest.approx(2 * t1.raw_flops)

    def test_scaling_by_timesteps(self):
        trace = self.make_trace()
        scaled = trace * 12
        assert scaled.raw_flops == pytest.approx(12 * trace.raw_flops)
        assert (3 * trace).raw_flops == pytest.approx(3 * trace.raw_flops)

    def test_gather_fraction(self):
        trace = Trace(
            [
                VectorOp("seq", length=100, loads_per_element=1.0, stores_per_element=1.0),
                VectorOp("idx", length=100, gather_loads_per_element=1.0,
                         stores_per_element=1.0),
            ]
        )
        # 100 of 400 data words are gathered (200 copy + 100 gather + 100 store).
        assert trace.gather_fraction == pytest.approx(100 / 400)

    def test_gather_fraction_empty_trace(self):
        assert Trace([]).gather_fraction == 0.0

    def test_intrinsic_totals(self):
        trace = Trace(
            [
                VectorOp.make("a", 10, count=2, intrinsics={"exp": 1.0, "sqrt": 0.5}),
                VectorOp.make("b", 5, intrinsics={"exp": 2.0}),
            ]
        )
        totals = trace.intrinsic_calls_total
        assert totals["exp"] == pytest.approx(10 * 2 * 1.0 + 5 * 2.0)
        assert totals["sqrt"] == pytest.approx(10 * 2 * 0.5)

    def test_append_type_checked(self):
        trace = Trace([])
        with pytest.raises(TypeError):
            trace.append("not an op")
        with pytest.raises(TypeError):
            Trace(["junk"])
