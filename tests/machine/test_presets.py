"""Tests for calibrated machine presets and the Table 2 spec sheet."""

import pytest

from repro.machine import presets
from repro.machine.specs import sx4_32_benchmark_specs


class TestSX4Presets:
    def test_benchmark_clock_default(self):
        proc = presets.sx4_processor()
        assert proc.clock.period_ns == presets.BENCHMARK_CLOCK_NS == 9.2

    def test_production_clock_gives_2gflops(self):
        proc = presets.sx4_processor(period_ns=presets.PRODUCTION_CLOCK_NS)
        assert proc.peak_flops == pytest.approx(2e9)

    def test_clock_change_is_15_percent(self):
        bench = presets.sx4_processor(9.2)
        prod = presets.sx4_processor(8.0)
        assert prod.peak_flops / bench.peak_flops == pytest.approx(1.15)

    def test_vector_machine_flag(self):
        assert presets.sx4_processor().is_vector_machine

    def test_node_default_is_32(self):
        assert presets.sx4_node().cpu_count == 32

    def test_fresh_instances(self):
        a, b = presets.sx4_processor(), presets.sx4_processor()
        assert a is not b
        assert a.vector is not b.vector


class TestComparators:
    def test_table1_machine_names_in_paper_order(self):
        machines = presets.table1_machines()
        assert list(machines) == ["SUN SPARC20", "IBM RS6K 590", "CRI J90", "CRI YMP"]

    def test_vector_vs_cache_split(self):
        machines = presets.table1_machines()
        assert not machines["SUN SPARC20"].is_vector_machine
        assert not machines["IBM RS6K 590"].is_vector_machine
        assert machines["CRI J90"].is_vector_machine
        assert machines["CRI YMP"].is_vector_machine

    def test_ymp_peak(self):
        # 6 ns, one add + one multiply pipe: 333 Mflops.
        ymp = presets.cray_ymp()
        assert ymp.peak_flops == pytest.approx(333.3e6, rel=1e-2)

    def test_j90_slower_than_ymp(self):
        assert presets.cray_j90().peak_flops < presets.cray_ymp().peak_flops

    def test_rs6000_peak(self):
        # 66 MHz POWER2 with FMA: 264 Mflops wait, 2 flops/cycle = 132;
        # the 590 issues two FMAs per cycle in hardware but our scalar
        # model folds that into flops_per_cycle=2 at 66 MHz.
        rs6k = presets.ibm_rs6000_590()
        assert rs6k.peak_flops == pytest.approx(132e6, rel=1e-2)

    def test_sx4_dwarfs_comparators(self):
        sx4 = presets.sx4_processor()
        for proc in presets.table1_machines().values():
            assert sx4.peak_flops > 4 * proc.peak_flops


class TestSpecs:
    def test_table2_rows(self):
        specs = sx4_32_benchmark_specs()
        rows = dict(specs.rows())
        assert rows["Clock Rate"] == "9.2 ns"
        assert rows["Peak FLOP Rate Per Processor"] == "2 GFLOPS"
        assert rows["Peak Memory Bandwidth"] == "16 GB/sec/proc"
        assert rows["Disk Capacity"] == "282 GB"
        assert rows["Main Memory"] == "8GB"
        assert rows["Extended Memory"] == "4GB"
        assert rows["Cooling"] == "air cooled"
        assert rows["Power Consumption"] == "122.8 KVA"

    def test_row_order_matches_paper(self):
        labels = [label for label, _ in sx4_32_benchmark_specs().rows()]
        assert labels == [
            "Clock Rate",
            "Peak FLOP Rate Per Processor",
            "Peak Memory Bandwidth",
            "Disk Capacity",
            "Main Memory",
            "Extended Memory",
            "Cooling",
            "Power Consumption",
        ]


class TestPresetRegistry:
    def test_factory_for_every_canonical_id(self):
        for preset_id in presets.CANONICAL_PRESET_IDS:
            assert preset_id in presets.PRESET_FACTORIES
            proc = presets.preset_processor(preset_id)
            assert proc.name

    def test_unknown_id_names_the_known_ones(self):
        with pytest.raises(ValueError, match="sx4-production"):
            presets.preset_processor("cray-2")

    def test_preset_processor_builds_fresh_instances(self):
        assert presets.preset_processor("sx4") is not presets.preset_processor("sx4")

    def test_sx4_production_is_the_8ns_clock(self):
        proc = presets.preset_processor("sx4-production")
        assert proc.clock.period_ns == presets.PRODUCTION_CLOCK_NS

    def test_canonical_machines_keyed_by_processor_name(self):
        machines = presets.canonical_machines()
        assert len(machines) == len(presets.CANONICAL_PRESET_IDS)
        for name, proc in machines.items():
            assert proc.name == name

    def test_table1_machines_built_from_registry(self):
        table1 = presets.table1_machines()
        assert list(table1) == list(presets.TABLE1_LABELS)
        assert table1["CRI YMP"].name == "Cray Y-MP"
