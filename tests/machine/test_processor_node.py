"""Tests for the processor and SMP node models."""

import pytest

from repro.machine.clock import Clock
from repro.machine.node import block_imbalance
from repro.machine.operations import ScalarOp, Trace, VectorOp
from repro.machine.presets import sx4_node, sx4_processor
from repro.machine.processor import Processor
from repro.machine.scalar_unit import ScalarUnit


def axpy_trace(length=10_000, count=10):
    return Trace(
        [
            VectorOp(
                "axpy",
                length=length,
                count=count,
                flops_per_element=2.0,
                loads_per_element=2.0,
                stores_per_element=1.0,
            )
        ],
        name="axpy",
    )


class TestProcessor:
    def test_sx4_peaks(self):
        proc = sx4_processor(period_ns=8.0)
        assert proc.peak_flops == pytest.approx(2e9)
        assert proc.port_bandwidth_bytes_per_s == pytest.approx(16e9)

    def test_benchmark_clock_peak(self):
        proc = sx4_processor(period_ns=9.2)
        assert proc.peak_flops == pytest.approx(16 / 9.2e-9, rel=1e-6)

    def test_execute_reports_consistent_rates(self):
        proc = sx4_processor()
        report = proc.execute(axpy_trace())
        assert report.seconds > 0
        assert report.mflops == pytest.approx(
            report.flop_equivalents / report.seconds / 1e6
        )
        assert report.mflops <= proc.peak_flops / 1e6

    def test_long_vectors_closer_to_peak(self):
        proc = sx4_processor()
        short = proc.execute(axpy_trace(length=16, count=10_000))
        long = proc.execute(axpy_trace(length=160_000, count=1))
        assert long.mflops > 4 * short.mflops

    def test_memory_dilation_stretches_memory_bound_ops(self):
        proc = sx4_processor()
        copy = Trace([VectorOp("copy", length=100_000,
                               loads_per_element=1, stores_per_element=1)])
        base = proc.time(copy)
        stretched = proc.time(copy, memory_dilation=1.5)
        assert stretched > base

    def test_memory_dilation_cannot_shrink(self):
        proc = sx4_processor()
        with pytest.raises(ValueError):
            proc.time(axpy_trace(), memory_dilation=0.5)

    def test_scalar_op_on_vector_machine(self):
        proc = sx4_processor()
        trace = Trace([ScalarOp("diag", instructions=1000, count=10)])
        report = proc.execute(trace)
        assert report.seconds > 0

    def test_breakdown_names_and_dominant(self):
        proc = sx4_processor()
        trace = axpy_trace() + Trace([ScalarOp("tiny", instructions=1)])
        report = proc.execute(trace, breakdown=True)
        assert [name for name, _ in report.breakdown] == ["axpy", "tiny"]
        assert report.dominant_op() == "axpy"

    def test_breakdown_is_opt_in(self):
        proc = sx4_processor()
        trace = axpy_trace() + Trace([ScalarOp("tiny", instructions=1)])
        report = proc.execute(trace)
        assert report.breakdown == []
        # dominant_op works from the cycle columns even without it.
        assert report.dominant_op() == "axpy"

    def test_vector_unit_requires_memory_model(self):
        from repro.machine.vector_unit import VectorUnit

        with pytest.raises(ValueError):
            Processor(
                name="broken",
                clock=Clock(period_ns=8.0),
                scalar=ScalarUnit(),
                vector=VectorUnit(),
                memory=None,
            )

    def test_empty_trace(self):
        proc = sx4_processor()
        report = proc.execute(Trace([]))
        assert report.seconds == 0.0
        assert report.mflops == 0.0
        assert report.bandwidth_bytes_per_s == 0.0
        assert report.dominant_op() == "<empty>"


class TestBlockImbalance:
    def test_divisible_is_perfect(self):
        assert block_imbalance(64, 32) == 1.0

    def test_remainder_dilates(self):
        # 33 rows on 32 CPUs: one CPU does 2, wall time doubles vs ideal.
        assert block_imbalance(33, 32) == pytest.approx(2 / (33 / 32))

    def test_fewer_items_than_cpus(self):
        assert block_imbalance(4, 32) == pytest.approx(32 / 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            block_imbalance(0, 4)
        with pytest.raises(ValueError):
            block_imbalance(4, 0)


class TestNode:
    def test_node_peaks(self):
        node = sx4_node(cpus=32, period_ns=8.0)
        assert node.peak_flops == pytest.approx(64e9)
        assert node.node_bandwidth_bytes_per_s == pytest.approx(512e9)

    def test_cpu_count_bounds(self):
        with pytest.raises(ValueError):
            sx4_node(cpus=0)
        with pytest.raises(ValueError):
            sx4_node(cpus=33)

    def test_parallel_speedup_bounded_by_cpus(self):
        node = sx4_node()
        whole = axpy_trace(count=320)
        serial = node.run_serial(whole).seconds
        per_cpu = whole.scaled(1 / 32)
        par = node.run_parallel([per_cpu] * 32)
        speedup = serial / par.seconds
        assert 1.0 < speedup <= 32.0
        assert speedup > 20.0  # clean unit-stride work scales well

    def test_replicated_jobs_degrade_little(self):
        """Ensemble-style: unit-stride work from all CPUs is nearly free of
        interference (Table 6 measured 1.89% for CCM2)."""
        node = sx4_node()
        trace = axpy_trace(count=1000)  # large enough that sync is noise
        one = node.run_parallel([trace])
        all32 = node.run_replicated(trace, cpus=32)
        degradation = all32.seconds / one.seconds - 1.0
        assert degradation < 0.05

    def test_gathered_work_degrades_more_than_unit_stride(self):
        node = sx4_node()
        seq = Trace([VectorOp("seq", length=10_000, count=1000,
                              loads_per_element=1, stores_per_element=1)])
        idx = Trace([VectorOp("idx", length=10_000, count=1000,
                              gather_loads_per_element=1, stores_per_element=1)])

        def degradation(trace):
            one = node.run_parallel([trace]).seconds
            full = node.run_replicated(trace, cpus=32).seconds
            return full / one - 1.0

        assert degradation(idx) > degradation(seq)

    def test_serial_section_and_sync_accounted(self):
        node = sx4_node()
        per_cpu = axpy_trace(count=1)
        serial = Trace([ScalarOp("diag", instructions=1e6)])
        report = node.run_parallel([per_cpu] * 8, serial=serial, regions=100)
        assert report.serial_seconds > 0
        assert report.sync_seconds > 0
        assert report.seconds == pytest.approx(
            report.parallel_seconds + report.serial_seconds + report.sync_seconds
        )

    def test_sync_grows_with_cpus(self):
        node = sx4_node()
        assert node.sync_seconds(32, 1) > node.sync_seconds(2, 1)
        assert node.sync_seconds(1, 10) == 0.0

    def test_oversubscription_rejected(self):
        node = sx4_node(cpus=4)
        with pytest.raises(ValueError):
            node.run_replicated(axpy_trace(), cpus=5)
        with pytest.raises(ValueError):
            node.run_parallel([axpy_trace()] * 2, other_active_cpus=3)

    def test_empty_parallel_rejected(self):
        with pytest.raises(ValueError):
            sx4_node().run_parallel([])

    def test_flops_aggregated_across_cpus(self):
        node = sx4_node()
        trace = axpy_trace(count=1)
        report = node.run_replicated(trace, cpus=4)
        assert report.flop_equivalents == pytest.approx(4 * trace.flop_equivalents)
        assert report.gflops == pytest.approx(report.mflops / 1e3)
