"""Property-based tests (hypothesis) for machine-model invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.memory import BankedMemory
from repro.machine.operations import Trace, VectorOp
from repro.machine.presets import sx4_node, sx4_processor

lengths = st.integers(min_value=1, max_value=2_000_000)
strides = st.integers(min_value=1, max_value=4096)
cpus = st.integers(min_value=1, max_value=32)


@given(length=lengths)
def test_time_positive_and_finite(length):
    proc = sx4_processor()
    trace = Trace([VectorOp("v", length=length, loads_per_element=1,
                            stores_per_element=1, flops_per_element=2)])
    t = proc.time(trace)
    assert t > 0 and math.isfinite(t)


@given(length=st.integers(min_value=1, max_value=100_000),
       factor=st.integers(min_value=2, max_value=16))
def test_longer_vectors_never_slower_per_element(length, factor):
    """Amortising startup over a longer vector cannot hurt per-element cost."""
    proc = sx4_processor()

    def per_element_time(n):
        trace = Trace([VectorOp("v", length=n, loads_per_element=1,
                                stores_per_element=1)])
        return proc.time(trace) / n

    assert per_element_time(length * factor) <= per_element_time(length) * (1 + 1e-9)


@given(stride=strides)
def test_stride_factor_at_least_one(stride):
    mem = BankedMemory()
    assert mem.stride_factor(stride) >= 1.0


@given(stride=strides)
def test_unit_stride_is_never_beaten(stride):
    mem = BankedMemory()
    assert mem.stride_factor(stride) >= mem.stride_factor(1)


@given(active=cpus, frac=st.floats(min_value=0.0, max_value=1.0,
                                   allow_nan=False))
def test_contention_factor_bounds(active, frac):
    mem = BankedMemory()
    f = mem.contention_factor(active, frac)
    assert 1.0 <= f <= 1.0 + mem.contention_base_slope + mem.contention_slope


@given(active=st.integers(min_value=2, max_value=32),
       frac=st.floats(min_value=0.01, max_value=1.0, allow_nan=False))
def test_contention_monotone_in_cpus(active, frac):
    mem = BankedMemory()
    assert mem.contention_factor(active, frac) >= mem.contention_factor(active - 1, frac)


@settings(max_examples=25)
@given(n_cpus=st.integers(min_value=1, max_value=32))
def test_parallel_wall_time_monotone_decreasing_in_cpus(n_cpus):
    """Splitting a fixed embarrassingly-parallel workload over more CPUs
    never increases wall time by more than the sync overhead."""
    node = sx4_node()
    whole = Trace([VectorOp("work", length=10_000, count=64,
                            loads_per_element=1, stores_per_element=1,
                            flops_per_element=2)])
    per_cpu = whole.scaled(1.0 / n_cpus)
    report = node.run_parallel([per_cpu] * n_cpus)
    serial = node.run_serial(whole).seconds
    # Never faster than perfect speedup, never slower than serial + sync.
    assert report.seconds >= serial / n_cpus * 0.999
    assert report.seconds <= serial + node.sync_seconds(n_cpus, 1) + 1e-9


@settings(max_examples=25)
@given(length=st.integers(min_value=8, max_value=100_000),
       count=st.integers(min_value=1, max_value=20))
def test_report_flops_match_trace(length, count):
    proc = sx4_processor()
    trace = Trace([VectorOp("v", length=length, count=count, flops_per_element=2,
                            loads_per_element=1, stores_per_element=1)])
    report = proc.execute(trace)
    assert report.raw_flops == trace.raw_flops
    assert report.flop_equivalents == trace.flop_equivalents
    assert report.mflops <= proc.peak_flops / 1e6 * (1 + 1e-9)


@settings(max_examples=25)
@given(scale=st.floats(min_value=0.1, max_value=100.0, allow_nan=False))
def test_trace_scaling_scales_time_linearly(scale):
    proc = sx4_processor()
    trace = Trace([VectorOp("v", length=1000, count=10, flops_per_element=2,
                            loads_per_element=1, stores_per_element=1)])
    t1 = proc.time(trace)
    t2 = proc.time(trace.scaled(scale))
    assert t2 == proc.clock.seconds(proc.clock.cycles(t1) * scale) or \
        abs(t2 - t1 * scale) <= 1e-12 + 1e-9 * t1 * scale
