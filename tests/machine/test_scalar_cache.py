"""Tests for the cache and scalar-unit models."""

import pytest

from repro.machine.cache import CacheModel
from repro.machine.operations import ScalarOp, VectorOp
from repro.machine.scalar_unit import ScalarUnit


class TestCacheModel:
    def test_resident_working_set_never_misses(self):
        cache = CacheModel(size_bytes=64 * 1024)
        assert cache.miss_rate(1, working_set_bytes=32 * 1024) == 0.0
        assert cache.miss_rate(1, working_set_bytes=32 * 1024, indexed=True) == 0.0

    def test_streaming_unit_stride_misses_per_line(self):
        cache = CacheModel(size_bytes=64 * 1024, line_bytes=64)
        rate = cache.miss_rate(1, working_set_bytes=1e9)
        assert rate == pytest.approx(1 / 8)  # 8 words per 64-byte line

    def test_large_stride_misses_every_word(self):
        cache = CacheModel(line_bytes=64)
        assert cache.miss_rate(8, 1e9) == 1.0
        assert cache.miss_rate(100, 1e9) == 1.0

    def test_indexed_misses_every_word(self):
        cache = CacheModel()
        assert cache.miss_rate(1, 1e9, indexed=True) == 1.0

    def test_cycles_per_word_monotone_in_stride(self):
        cache = CacheModel()
        costs = [cache.cycles_per_word(s, 1e9) for s in (1, 2, 4, 8)]
        assert costs == sorted(costs)

    def test_line_fill_cost(self):
        cache = CacheModel(miss_latency_cycles=20, line_bytes=64, mem_words_per_cycle=0.5)
        assert cache.line_fill_cycles() == pytest.approx(20 + 8 / 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheModel(size_bytes=0)
        with pytest.raises(ValueError):
            CacheModel(line_bytes=60)  # not whole words
        with pytest.raises(ValueError):
            CacheModel(line_bytes=1024, size_bytes=512)
        with pytest.raises(ValueError):
            CacheModel(mem_words_per_cycle=0)
        with pytest.raises(ValueError):
            CacheModel().miss_rate(0, 1e9)


class TestScalarUnit:
    def test_scalar_op_issue_limited(self):
        unit = ScalarUnit(issue_width=2.0)
        op = ScalarOp("s", instructions=100)
        assert unit.scalar_op_cycles(op) == pytest.approx(50.0)

    def test_scalar_op_memory_component(self):
        unit = ScalarUnit(issue_width=2.0, cache=CacheModel(hit_cycles_per_word=1.0))
        op = ScalarOp("s", instructions=10, memory_words=20)
        assert unit.scalar_op_cycles(op) == pytest.approx(5.0 + 20.0)

    def test_vector_op_as_scalar_loop(self):
        unit = ScalarUnit()
        op = VectorOp("v", length=100, flops_per_element=2.0,
                      loads_per_element=1.0, stores_per_element=1.0)
        cycles = unit.vector_op_cycles(op)
        # At least the flop time plus loop overhead per element.
        assert cycles >= 100 * (2.0 / unit.flops_per_cycle)
        assert cycles > 0

    def test_intrinsics_dominate_scalar_radabs_mix(self):
        """Scalar intrinsic calls cost hundreds of cycles; this is what
        keeps workstation RADABS in the ~10 Mflops range (Table 1)."""
        unit = ScalarUnit()
        plain = VectorOp("v", length=100, flops_per_element=2.0)
        physics = VectorOp.make("v", 100, flops_per_element=2.0,
                                intrinsics={"exp": 1.0})
        assert unit.vector_op_cycles(physics) > 10 * unit.vector_op_cycles(plain)

    def test_indexed_lookups_add_cost_but_stay_cache_resident(self):
        """On cache machines indexed access is modelled as small-table
        lookups: dearer than no access, cheaper than streaming misses."""
        unit = ScalarUnit()
        base = VectorOp("v", length=100_000, stores_per_element=1.0)
        idx = VectorOp("v", length=100_000, gather_loads_per_element=2.0,
                       stores_per_element=1.0)
        stream = VectorOp("v", length=100_000, loads_per_element=2.0,
                          stores_per_element=1.0)
        assert unit.vector_op_cycles(idx) > unit.vector_op_cycles(base)
        assert unit.vector_op_cycles(idx) < unit.vector_op_cycles(stream)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScalarUnit(issue_width=0)
        with pytest.raises(ValueError):
            ScalarUnit(flops_per_cycle=0)
        with pytest.raises(ValueError):
            ScalarUnit(intrinsic_cycles_per_call={"exp": 1.0})
