"""Fused suite-batch costing: structure, bit-exact parity, sharing.

The suitebatch engine's contract mirrors the compiled engine's: it is a
*faster spelling* of the same model, never a different one.  The core
tests therefore assert ``==`` on ExecutionReports (and exact equality on
per-op cycle columns) across every registered trace, every canonical
preset, and multiple dilations — one fused pass against sixteen
per-trace compiled dispatches.
"""

import math

import numpy as np
import pytest

from repro.analysis.traces import (
    TRACE_BUILDERS,
    build_registered_trace,
    build_suite_columns,
)
from repro.machine.grid import MachineGrid, cost_trace_grid, cost_suite_trace_grid
from repro.machine.node import Node
from repro.machine.presets import canonical_machines, sx4_processor
from repro.machine.suitebatch import (
    PACK_SCHEMA,
    SuiteColumns,
    clear_registered_suite,
    cost_suite_batch,
    fsum_segments,
    pack_suite,
    register_suite,
    registered_suite,
    registered_suite_key,
    segment_sums,
    unpack_suite,
)
from repro.perfmon.collector import profile

ALL_TRACE_IDS = tuple(TRACE_BUILDERS)

DILATIONS = (1.0, 2.0)


@pytest.fixture(scope="module")
def machines():
    return canonical_machines()


@pytest.fixture(scope="module")
def suite_pairs():
    return [(tid, build_registered_trace(tid)) for tid in ALL_TRACE_IDS]


@pytest.fixture(scope="module")
def stacked(suite_pairs):
    return SuiteColumns.from_traces(suite_pairs)


@pytest.fixture(autouse=True)
def _no_registered_suite():
    """Each test starts and ends with no process-registered stack."""
    clear_registered_suite()
    yield
    clear_registered_suite()


class TestStructure:
    def test_stack_shape(self, stacked, suite_pairs):
        assert stacked.n_traces == len(ALL_TRACE_IDS)
        assert stacked.trace_ids == ALL_TRACE_IDS
        total_ops = sum(len(trace.ops) for _, trace in suite_pairs)
        assert stacked.n_ops == total_ops
        assert stacked.vector_offsets[0] == 0
        assert stacked.vector_offsets[-1] == stacked.vector.n
        assert stacked.scalar_offsets[-1] == stacked.scalar.n
        assert len(stacked.vector_trace) == stacked.vector.n
        assert len(stacked.scalar_trace) == stacked.scalar.n

    def test_trace_columns_map_to_their_segment(self, stacked):
        # Every stacked row's trace index agrees with the offsets table.
        vo = stacked.vector_offsets
        for i in range(stacked.n_traces):
            segment = stacked.vector_trace[vo[i]:vo[i + 1]]
            assert (segment == i).all()

    def test_trace_view_is_zero_copy(self, stacked):
        view = stacked.trace_view(0)
        assert view.vector.length.base is not None  # a slice, not a copy
        assert stacked.trace_view(0) is view  # memoised

    def test_rows_bit_identical_to_solo_compile(self, stacked, suite_pairs):
        from repro.machine.compiled import compile_trace

        for i, (_, trace) in enumerate(suite_pairs):
            solo = compile_trace(trace)
            view = stacked.trace_view(i)
            assert view.names == solo.names
            assert view.vector.length.tolist() == solo.vector.length.tolist()
            assert view.vector.raw_flops.tolist() == solo.vector.raw_flops.tolist()
            assert view.scalar.instructions.tolist() == solo.scalar.instructions.tolist()

    def test_build_suite_columns_rejects_unknown_ids(self):
        with pytest.raises(ValueError, match="unknown trace ids"):
            build_suite_columns(["copy", "nope"])

    def test_build_suite_columns_subset(self):
        suite = build_suite_columns(["copy", "stream"])
        assert suite.trace_ids == ("copy", "stream")


class TestExactParity:
    def test_all_traces_all_machines_all_dilations(
        self, stacked, suite_pairs, machines
    ):
        """16 traces x 6 presets x 2 dilations: fused == compiled, ``==``."""
        for processor in machines.values():
            for dilation in DILATIONS:
                reports = cost_suite_batch(processor, stacked, dilation)
                assert len(reports) == len(suite_pairs)
                for report, (_, trace) in zip(reports, suite_pairs):
                    expected = processor.execute(
                        trace, dilation, engine="compiled"
                    )
                    assert report == expected  # cycles/seconds/totals, exact
                    assert report.engine == "suitebatch"
                    assert report.op_names == expected.op_names
                    assert (
                        np.asarray(report.op_cycles).tolist()
                        == np.asarray(expected.op_cycles).tolist()
                    )

    def test_derived_rates_match_exactly(self, stacked, suite_pairs, machines):
        processor = machines["Cray J90"]
        reports = cost_suite_batch(processor, stacked)
        for report, (_, trace) in zip(reports, suite_pairs):
            expected = processor.execute(trace, engine="compiled")
            assert report.mflops == expected.mflops
            assert report.bandwidth_bytes_per_s == expected.bandwidth_bytes_per_s

    def test_subset_suite_parity(self, machines):
        suite = build_suite_columns(["linpack", "xpose", "ia"])
        processor = machines["NEC SX-4 (9.2 ns)"]
        reports = cost_suite_batch(processor, suite)
        for trace_id, report in zip(suite.trace_ids, reports):
            trace = build_registered_trace(trace_id)
            assert report == processor.execute(trace, engine="compiled")

    def test_empty_suite(self):
        suite = SuiteColumns.from_traces([])
        assert suite.n_traces == 0
        assert suite.n_ops == 0
        assert cost_suite_batch(sx4_processor(), suite) == []

    def test_breakdown_flag(self, stacked):
        processor = sx4_processor()
        plain = cost_suite_batch(processor, stacked)
        detailed = cost_suite_batch(processor, stacked, breakdown=True)
        assert plain[0].breakdown == []
        assert detailed[0].breakdown  # materialised (name, cycles) pairs
        assert detailed[0] == plain[0]


class TestMemoisation:
    def test_reports_are_memoised_per_machine_and_dilation(self, stacked):
        processor = sx4_processor()
        first = cost_suite_batch(processor, stacked, 1.5)
        second = cost_suite_batch(processor, stacked, 1.5)
        assert [id(a) for a in first] == [id(b) for b in second]
        # A different dilation is a different memo entry.
        other = cost_suite_batch(processor, stacked, 1.0)
        assert id(other[0]) != id(first[0])

    def test_perfmon_counts_costings_and_hits(self):
        suite = build_suite_columns(["copy", "stream"])
        processor = sx4_processor()
        with profile() as prof:
            cost_suite_batch(processor, suite)
            cost_suite_batch(processor, suite)
        counters = prof.counters.to_dict()["suitebatch"]
        assert counters["suites"] == 2.0
        assert counters["suite_traces"] == 4.0
        assert counters["costings"] == 1.0
        assert counters["memo_hits"] == 1.0

    def test_derive_counter(self):
        with profile() as prof:
            build_suite_columns(["copy"])
        assert prof.counters.to_dict()["suitebatch"]["derives"] == 1.0


class TestEngineDispatch:
    def test_member_trace_served_from_the_stack(self, machines):
        pairs = [(tid, build_registered_trace(tid)) for tid in ("copy", "ia")]
        suite = register_suite(SuiteColumns.from_traces(pairs))
        assert registered_suite() is suite
        processor = machines["Cray Y-MP"]
        for _, trace in pairs:
            report = processor.execute(trace, engine="suitebatch")
            assert report.engine == "suitebatch"
            assert report == processor.execute(trace, engine="compiled")

    def test_non_member_trace_falls_back_to_compiled(self):
        register_suite(build_suite_columns(["copy"]))
        outsider = build_registered_trace("stream")  # not the pinned object
        report = sx4_processor().execute(outsider, engine="suitebatch")
        assert report.engine == "compiled"
        assert report == sx4_processor().execute(outsider, engine="compiled")

    def test_no_registered_suite_falls_back(self):
        assert registered_suite() is None
        trace = build_registered_trace("copy")
        report = sx4_processor().execute(trace, engine="suitebatch")
        assert report.engine == "compiled"

    def test_mutated_member_no_longer_matches(self):
        trace = build_registered_trace("copy")
        suite = register_suite(SuiteColumns.from_traces([("copy", trace)]))
        assert suite.position_of(trace) == 0
        trace.ops.append(trace.ops[0])
        assert suite.position_of(trace) is None

    def test_registered_key_round_trip(self):
        suite = build_suite_columns(["copy"])
        register_suite(suite, key="a" * 64)
        assert registered_suite_key() == "a" * 64
        clear_registered_suite()
        assert registered_suite() is None
        assert registered_suite_key() is None

    def test_node_costing_suitebatch(self, machines):
        pairs = [("copy", build_registered_trace("copy"))]
        register_suite(SuiteColumns.from_traces(pairs))
        processor = machines["NEC SX-4 (9.2 ns)"]
        node = Node(processor, costing="suitebatch")
        report = node.run_serial(pairs[0][1])
        assert report.engine == "suitebatch"
        assert report == processor.execute(pairs[0][1], engine="compiled")


class TestPackUnpack:
    def test_round_trip_bit_exact(self, stacked, machines):
        adopted = unpack_suite(pack_suite(stacked))
        assert adopted.trace_ids == stacked.trace_ids
        assert adopted.names == stacked.names
        assert adopted.vector.length.tolist() == stacked.vector.length.tolist()
        assert adopted.vector_offsets.tolist() == stacked.vector_offsets.tolist()
        # The adopted stack costs to the same bits as the original.
        processor = machines["IBM RS6000/590"]
        original = cost_suite_batch(processor, stacked)
        recovered = cost_suite_batch(processor, adopted)
        assert original == recovered

    def test_pack_is_deterministic(self, stacked):
        assert pack_suite(stacked) == pack_suite(stacked)

    def test_adopted_stack_pins_no_members(self, stacked):
        adopted = unpack_suite(pack_suite(stacked))
        trace = build_registered_trace("copy")
        assert adopted.position_of(trace) is None

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="bad magic"):
            unpack_suite(b"NOPE" + b"\x00" * 32)

    def test_truncated_payload_rejected(self, stacked):
        payload = pack_suite(stacked)
        with pytest.raises(ValueError, match="truncated"):
            unpack_suite(payload[: len(payload) // 2])

    def test_wrong_schema_rejected(self, stacked):
        import json

        payload = pack_suite(stacked)
        header_len = int.from_bytes(payload[4:12], "little")
        header = json.loads(payload[12:12 + header_len])
        header["schema"] = PACK_SCHEMA + 1
        doctored = json.dumps(header, sort_keys=True).encode()
        rebuilt = (
            payload[:4]
            + len(doctored).to_bytes(8, "little")
            + doctored
            + payload[12 + header_len:]
        )
        with pytest.raises(ValueError, match="unsupported suite-column schema"):
            unpack_suite(rebuilt)

    def test_garbage_header_rejected(self):
        payload = b"RSBC" + (5).to_bytes(8, "little") + b"{nope" + b"\x00" * 8
        with pytest.raises(ValueError, match="corrupt suite-column header"):
            unpack_suite(payload)


class TestSegmentReductions:
    def test_fsum_segments_basic(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        offsets = np.array([0, 2, 2, 5])
        assert fsum_segments(values, offsets) == [3.0, 0.0, 12.0]

    def test_fsum_segments_is_exactly_rounded(self):
        # A sum that plain left-to-right addition gets wrong.
        values = np.array([1e16, 1.0, 1.0, 1.0, 1.0, -1e16])
        offsets = np.array([0, 6])
        assert fsum_segments(values, offsets) == [4.0]
        assert math.fsum(values.tolist()) == 4.0

    def test_segment_sums_matches_fsum_on_clean_data(self):
        rng = np.random.default_rng(1996)
        values = rng.uniform(0.0, 100.0, size=50)
        offsets = np.array([0, 10, 10, 25, 50])
        fast = segment_sums(values, offsets)
        exact = fsum_segments(values, offsets)
        assert fast.shape == (4,)
        assert fast[1] == 0.0  # empty segment
        assert fast == pytest.approx(exact, rel=1e-12)

    def test_segment_sums_empty_input(self):
        out = segment_sums(np.zeros(0), np.array([0, 0, 0]))
        assert out.tolist() == [0.0, 0.0]

    def test_trace_totals_match_compiled_totals(self, stacked, suite_pairs):
        from repro.machine.compiled import compile_trace

        for i, (_, trace) in enumerate(suite_pairs):
            solo = compile_trace(trace)
            raw, equiv, words = stacked.trace_totals(i)
            assert raw == solo.raw_flops_total()
            assert equiv == solo.flop_equivalents_total()
            assert words == solo.words_moved_total()


class TestGridFusion:
    def test_suite_grid_matches_per_trace_grid(self, stacked, suite_pairs, machines):
        grid = MachineGrid.from_processors(list(machines.values()))
        fused = cost_suite_trace_grid(stacked, grid)
        assert len(fused) == len(suite_pairs)
        for cost, (_, trace) in zip(fused, suite_pairs):
            solo = cost_trace_grid(trace, grid)
            assert cost.trace_name == solo.trace_name
            assert cost.machine_names == solo.machine_names
            assert np.asarray(cost.cycles).tolist() == np.asarray(solo.cycles).tolist()
            assert (
                np.asarray(cost.seconds).tolist()
                == np.asarray(solo.seconds).tolist()
            )
            assert np.asarray(cost.mflops).tolist() == np.asarray(solo.mflops).tolist()
