"""Property-based parity: fused suite-batch costing vs per-trace compiled.

The suitebatch engine promises *bit* parity for arbitrary suites, not
just the 16 registered traces — any multiset of traces stacked in any
order must cost, trace by trace, to the same doubles the compiled
engine produces for each trace alone.  Hypothesis explores both faces:
random *subsets/permutations of the registered suite* (the shape the
engine actually serves) and fully random synthetic traces (the shape
that would expose a kernel that stopped being elementwise).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.traces import TRACE_BUILDERS, build_registered_trace
from repro.machine.operations import INTRINSICS, ScalarOp, Trace, VectorOp
from repro.machine.presets import sx4_processor, table1_machines
from repro.machine.suitebatch import (
    SuiteColumns,
    cost_suite_batch,
    pack_suite,
    unpack_suite,
)

SX4 = sx4_processor()
#: A Table 1 machine without a vector unit: vector ops cost through the
#: scalar/cache model, the other half of the batched code.
CACHE_MACHINE = next(m for m in table1_machines().values() if m.vector is None)

ALL_TRACE_IDS = tuple(TRACE_BUILDERS)

#: Registered traces are built once; stacking pins objects by identity,
#: so reusing the same Trace objects across examples is exactly how the
#: production registry behaves.
REGISTERED = {tid: build_registered_trace(tid) for tid in ALL_TRACE_IDS}

registered_subsets = st.lists(
    st.sampled_from(ALL_TRACE_IDS), min_size=1, max_size=6, unique=True
)

dilations = st.floats(min_value=1.0, max_value=4.0, allow_nan=False)

rates = st.floats(min_value=0.0, max_value=8.0, allow_nan=False)

intrinsic_mixes = st.dictionaries(
    st.sampled_from(sorted(INTRINSICS)),
    st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
    max_size=3,
).map(lambda mix: tuple(sorted(mix.items())))

vector_ops = st.builds(
    VectorOp,
    name=st.sampled_from(["a", "b", "c"]),
    length=st.integers(min_value=1, max_value=200_000),
    count=st.integers(min_value=0, max_value=5_000),
    flops_per_element=rates,
    loads_per_element=rates,
    stores_per_element=rates,
    gather_loads_per_element=rates,
    scatter_stores_per_element=rates,
    load_stride=st.integers(min_value=1, max_value=2048),
    store_stride=st.integers(min_value=1, max_value=2048),
    intrinsic_calls=intrinsic_mixes,
)


@st.composite
def scalar_ops(draw):
    instructions = draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    flops = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)) * instructions
    return ScalarOp(
        name=draw(st.sampled_from(["s", "t"])),
        instructions=instructions,
        flops=flops,
        memory_words=draw(st.floats(min_value=0.0, max_value=1e5, allow_nan=False)),
        count=draw(st.integers(min_value=0, max_value=100)),
    )


random_traces = st.lists(
    st.lists(vector_ops | scalar_ops(), max_size=6).map(
        lambda ops: Trace(ops, name="rand")
    ),
    min_size=1,
    max_size=5,
)


def assert_suite_parity(processor, pairs, dilation=1.0):
    """Stacked costing == per-trace compiled costing, field for field."""
    suite = SuiteColumns.from_traces(pairs)
    reports = cost_suite_batch(processor, suite, dilation)
    assert len(reports) == len(pairs)
    for report, (_, trace) in zip(reports, pairs):
        expected = processor.execute(trace, dilation, engine="compiled")
        assert report == expected  # dataclass ==: cycles/seconds/totals
        assert report.mflops == expected.mflops
        assert report.bandwidth_bytes_per_s == expected.bandwidth_bytes_per_s
        assert (
            np.asarray(report.op_cycles).tolist()
            == np.asarray(expected.op_cycles).tolist()
        )


@given(subset=registered_subsets, dilation=dilations)
@settings(max_examples=50, deadline=None)
def test_registered_subsets_cost_bit_identically(subset, dilation):
    pairs = [(tid, REGISTERED[tid]) for tid in subset]
    assert_suite_parity(SX4, pairs, dilation)


@given(subset=registered_subsets)
@settings(max_examples=25, deadline=None)
def test_registered_subsets_on_a_cache_machine(subset):
    pairs = [(tid, REGISTERED[tid]) for tid in subset]
    assert_suite_parity(CACHE_MACHINE, pairs)


@given(traces=random_traces, dilation=dilations)
@settings(max_examples=50, deadline=None)
def test_random_synthetic_suites_cost_bit_identically(traces, dilation):
    pairs = [(f"t{i}", trace) for i, trace in enumerate(traces)]
    assert_suite_parity(SX4, pairs, dilation)


@given(traces=random_traces)
@settings(max_examples=25, deadline=None)
def test_random_suites_survive_pack_unpack(traces):
    """An adopted (serialised) stack costs to the same bits as the
    original — the property the shared-memory worker path relies on."""
    pairs = [(f"t{i}", trace) for i, trace in enumerate(traces)]
    suite = SuiteColumns.from_traces(pairs)
    adopted = unpack_suite(pack_suite(suite))
    original = cost_suite_batch(SX4, suite)
    recovered = cost_suite_batch(SX4, adopted)
    assert original == recovered
    for a, b in zip(original, recovered):
        assert (
            np.asarray(a.op_cycles).tolist() == np.asarray(b.op_cycles).tolist()
        )


@given(subset=registered_subsets)
@settings(max_examples=25, deadline=None)
def test_stack_order_does_not_change_any_report(subset):
    """Reversing the stacking order leaves every trace's report equal:
    segment reductions are exactly rounded, so neighbours can't leak."""
    pairs = [(tid, REGISTERED[tid]) for tid in subset]
    forward = {
        r.trace_name: r
        for r in cost_suite_batch(SX4, SuiteColumns.from_traces(pairs))
    }
    backward = {
        r.trace_name: r
        for r in cost_suite_batch(SX4, SuiteColumns.from_traces(pairs[::-1]))
    }
    assert forward.keys() == backward.keys()
    for name, report in forward.items():
        assert report == backward[name]
