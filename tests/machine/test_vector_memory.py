"""Tests for the vector unit and banked-memory models."""

import pytest

from repro.machine.memory import BankedMemory
from repro.machine.operations import VectorOp
from repro.machine.vector_unit import VectorUnit


class TestVectorUnit:
    def test_sx4_peak_is_16_flops_per_cycle(self):
        vu = VectorUnit()
        assert vu.peak_flops_per_cycle == 16.0

    def test_chained_add_multiply_throughput(self):
        vu = VectorUnit()
        # 2 flops/element keeps both pipe sets busy: 16 flops/cycle.
        op = VectorOp("axpy", length=256, flops_per_element=2.0)
        assert vu.arithmetic_cycles(op) == pytest.approx(256 * 2 / 16)

    def test_single_pipe_set_throughput(self):
        vu = VectorUnit()
        # 1 flop/element uses one set of 8 pipes: 8 flops/cycle.
        op = VectorOp("add", length=256, flops_per_element=1.0)
        assert vu.arithmetic_cycles(op) == pytest.approx(256 / 8)

    def test_copy_has_no_arithmetic(self):
        vu = VectorUnit()
        op = VectorOp("copy", length=256, loads_per_element=1, stores_per_element=1)
        assert vu.arithmetic_cycles(op) == 0.0

    def test_intrinsic_cycles_added(self):
        vu = VectorUnit()
        op = VectorOp.make("physics", 100, intrinsics={"exp": 1.0})
        expected = 100 * vu.intrinsic_cycles_per_element["exp"]
        assert vu.arithmetic_cycles(op) == pytest.approx(expected)

    def test_startup_charged_once_per_execution(self):
        vu = VectorUnit(startup_cycles=40.0, register_length=256)
        short = VectorOp("v", length=8)
        assert vu.overhead_cycles(short) == pytest.approx(40.0)

    def test_stripmining_beyond_register_length(self):
        vu = VectorUnit(startup_cycles=40.0, register_length=256, stripmine_cycles=8.0)
        long_op = VectorOp("v", length=1000)  # 4 strips
        assert vu.overhead_cycles(long_op) == pytest.approx(40.0 + 3 * 8.0)

    def test_intrinsic_rate(self):
        vu = VectorUnit()
        assert vu.intrinsic_rate_per_cycle("exp") == pytest.approx(
            1.0 / vu.intrinsic_cycles_per_element["exp"]
        )
        with pytest.raises(KeyError):
            vu.intrinsic_rate_per_cycle("tanh")

    def test_missing_intrinsic_table_entry_rejected(self):
        with pytest.raises(ValueError):
            VectorUnit(intrinsic_cycles_per_element={"exp": 1.0})

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            VectorUnit(pipes=0)
        with pytest.raises(ValueError):
            VectorUnit(register_length=0)
        with pytest.raises(ValueError):
            VectorUnit(startup_cycles=-1)


class TestBankedMemory:
    def test_unit_and_stride2_conflict_free(self):
        """The paper guarantees conflict-free stride 1 and 2 access."""
        mem = BankedMemory()
        assert mem.stride_factor(1) == 1.0
        assert mem.stride_factor(2) == 1.0

    def test_higher_strides_penalised(self):
        mem = BankedMemory()
        assert mem.stride_factor(3) > 1.0
        assert mem.stride_factor(7) >= mem.stride_base_penalty

    def test_power_of_two_strides_worst(self):
        mem = BankedMemory(banks=1024, bank_busy_cycles=2.0)
        # Stride 512 hits only 2 distinct banks; stride 511 hits all 1024.
        assert mem.stride_factor(512) > mem.stride_factor(511)

    def test_bank_count_softens_conflicts(self):
        few = BankedMemory(banks=64)
        many = BankedMemory(banks=1024)
        assert many.stride_factor(64) <= few.stride_factor(64)

    def test_gather_factor_exceeds_unit_stride(self):
        mem = BankedMemory()
        assert mem.gather_factor() > 1.0

    def test_short_bank_cycle_helps_gather(self):
        """'Higher strides and list vector access benefit from the very
        short bank cycle time' — longer busy time must hurt gathers."""
        fast = BankedMemory(bank_busy_cycles=2.0)
        slow = BankedMemory(bank_busy_cycles=16.0)
        assert fast.gather_factor() < slow.gather_factor()

    def test_copy_transfer_overlaps_load_store(self):
        mem = BankedMemory(port_words_per_cycle=16.0)
        op = VectorOp("copy", length=800, loads_per_element=1, stores_per_element=1)
        # 800 words each way at 8 words/cycle/path, overlapped.
        assert mem.transfer_cycles(op) == pytest.approx(100.0)

    def test_gather_includes_index_traffic(self):
        mem = BankedMemory()
        plain = VectorOp("load", length=100, loads_per_element=1.0)
        gathered = VectorOp("ia", length=100, gather_loads_per_element=1.0)
        assert mem.load_cycles(gathered) > mem.load_cycles(plain)

    def test_scatter_on_store_path(self):
        mem = BankedMemory()
        op = VectorOp("scatter", length=100, scatter_stores_per_element=1.0)
        assert mem.store_cycles(op) > 0
        # Scatter index vectors still ride the load path.
        assert mem.load_cycles(op) > 0

    def test_contention_unit_stride_nearly_free(self):
        """All 32 CPUs doing unit-stride see only the small base-slope
        interference (independent jobs lose the alignment behind the
        conflict-free guarantee) — a few percent, matching the ~2%
        ensemble degradation scale of Table 6."""
        mem = BankedMemory()
        factor = mem.contention_factor(32, irregular_fraction=0.0)
        assert 1.0 <= factor <= 1.0 + mem.contention_base_slope + 1e-12
        # A single CPU sees no interference at all.
        assert mem.contention_factor(1, 0.0) == 1.0

    def test_contention_grows_with_cpus_and_irregularity(self):
        mem = BankedMemory()
        assert mem.contention_factor(1, 1.0) == 1.0
        f16 = mem.contention_factor(16, 0.5)
        f32 = mem.contention_factor(32, 0.5)
        assert 1.0 < f16 < f32
        assert mem.contention_factor(32, 1.0) > f32

    def test_contention_bounded(self):
        mem = BankedMemory()
        # Even a fully-gathered workload from all 32 CPUs dilates less
        # than 2x; mixed workloads (the ensemble test) stay near 2%.
        assert mem.contention_factor(32, 1.0) <= 1.0 + (
            mem.contention_base_slope + mem.contention_slope
        )
        assert mem.contention_factor(32, 1.0) < 2.0

    def test_contention_validates_inputs(self):
        mem = BankedMemory()
        with pytest.raises(ValueError):
            mem.contention_factor(0, 0.5)
        with pytest.raises(ValueError):
            mem.contention_factor(4, 1.5)

    def test_stride_validates(self):
        with pytest.raises(ValueError):
            BankedMemory().stride_factor(0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            BankedMemory(banks=0)
        with pytest.raises(ValueError):
            BankedMemory(stride_base_penalty=0.5)
        with pytest.raises(ValueError):
            BankedMemory(port_words_per_cycle=0)
