"""Tests for ``python -m repro.perfmon`` (report / export / diff)."""

import json

import pytest

from repro.perfmon.cli import collect_kernel_profiles, main
from repro.perfmon.export import load_profile, profile_to_dict
from repro.perfmon.proginf import KERNEL_IDS


def _run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestReport:
    def test_report_prints_proginf_per_kernel(self, capsys):
        code, out, _ = _run(capsys, "report", "copy", "stream")
        assert code == 0
        assert out.count("Program Information") == 2

    def test_report_defaults_to_all_13_kernels(self, capsys):
        code, out, _ = _run(capsys, "report")
        assert code == 0
        assert out.count("Program Information") == len(KERNEL_IDS) == 13

    def test_report_ftrace_flag(self, capsys):
        code, out, _ = _run(capsys, "report", "copy", "--ftrace")
        assert code == 0
        assert "FTRACE" in out
        assert "kernel:copy" in out

    def test_report_save_writes_document(self, tmp_path, capsys):
        path = tmp_path / "prof.json"
        code, _, err = _run(capsys, "report", "copy", "--save", str(path))
        assert code == 0
        assert path.is_file()
        loaded = load_profile(path)
        assert "copy" in loaded.kernels

    def test_unknown_kernel_id_exits_2(self, capsys):
        code, _, err = _run(capsys, "report", "nonsense")
        assert code == 2
        assert "nonsense" in err


class TestExport:
    def test_export_live_chrome_validates(self, capsys):
        code, out, _ = _run(capsys, "export", "copy", "--format", "chrome")
        assert code == 0
        document = json.loads(out)
        assert isinstance(document["traceEvents"], list)

    def test_export_saved_profile(self, tmp_path, capsys):
        path = tmp_path / "prof.json"
        _run(capsys, "report", "copy", "--save", str(path))
        code, out, _ = _run(capsys, "export", "--format", "prometheus",
                            "--profile", str(path))
        assert code == 0
        assert "repro_proginf" in out

    def test_export_out_writes_file(self, tmp_path, capsys):
        target = tmp_path / "out" / "trace.json"
        code, _, err = _run(capsys, "export", "copy", "--format", "chrome",
                            "--out", str(target))
        assert code == 0
        assert target.is_file()
        assert "trace.json" in err

    def test_export_corrupt_profile_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 999}))
        code, _, err = _run(capsys, "export", "--format", "json",
                            "--profile", str(bad))
        assert code == 1
        assert "schema_version" in err


class TestDiff:
    def _saved(self, tmp_path, name, mutate=None):
        outer, kernels = collect_kernel_profiles(["copy"])
        payload = profile_to_dict(outer, kernels)
        if mutate:
            mutate(payload)
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def test_identical_profiles_exit_0(self, tmp_path, capsys):
        a = self._saved(tmp_path, "a.json")
        b = self._saved(tmp_path, "b.json")
        code, out, _ = _run(capsys, "diff", str(a), str(b))
        assert code == 0
        assert "no counter or metric drift" in out

    def test_regression_exits_1(self, tmp_path, capsys):
        a = self._saved(tmp_path, "a.json")

        def slower(payload):
            # avg VL is nonzero for copy (a vector kernel); mflops is not.
            metrics = payload["kernels"]["copy"]["metrics"]
            metrics["avg_vector_length"] *= 0.5

        b = self._saved(tmp_path, "b.json", mutate=slower)
        code, out, _ = _run(capsys, "diff", str(a), str(b))
        assert code == 1
        assert "copy.avg_vector_length" in out

    def test_tolerance_suppresses_small_drift(self, tmp_path, capsys):
        a = self._saved(tmp_path, "a.json")

        def slightly(payload):
            metrics = payload["kernels"]["copy"]["metrics"]
            metrics["avg_vector_length"] *= 0.99

        b = self._saved(tmp_path, "b.json", mutate=slightly)
        code, *_ = _run(capsys, "diff", str(a), str(b), "--tolerance", "0.05")
        assert code == 0
        code, *_ = _run(capsys, "diff", str(a), str(b), "--tolerance", "0.001")
        assert code == 1

    def test_json_output(self, tmp_path, capsys):
        a = self._saved(tmp_path, "a.json")
        b = self._saved(tmp_path, "b.json")
        code, out, _ = _run(capsys, "diff", str(a), str(b), "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["regressions"] == 0
        assert payload["entries"] == []

    def test_missing_file_exits_1(self, tmp_path, capsys):
        code, _, err = _run(capsys, "diff", str(tmp_path / "no.json"),
                            str(tmp_path / "nope.json"))
        assert code == 1
        assert "error" in err


class TestCollect:
    def test_outer_profile_merges_kernel_counters(self):
        outer, kernels = collect_kernel_profiles(["copy", "stream"])
        merged = sum(
            k.counters.get("processor", "cycles") for k in kernels.values()
        )
        assert outer.counters.get("processor", "cycles") == pytest.approx(merged)
        assert {s.name for s in outer.finished_spans()} == {
            "kernel:copy", "kernel:stream"
        }

    def test_reuses_active_profile(self):
        from repro.perfmon.collector import profile

        with profile(role="outer-test") as prof:
            outer, _ = collect_kernel_profiles(["copy"])
        assert outer is prof
        assert any(s.name == "kernel:copy" for s in prof.spans)
