"""Tests for the active-profile context: recording, spans, sim tracing."""

import pytest

from repro.events import Resource, Simulator
from repro.perfmon.collector import (
    HOST_CLOCK,
    SIM_CLOCK,
    SimSpanTracer,
    Span,
    active,
    profile,
    record,
    sim_tracer,
    span,
)


class TestActivation:
    def test_no_profile_by_default(self):
        assert active() is None

    def test_profile_activates_and_deactivates(self):
        with profile(run="demo") as prof:
            assert active() is prof
            assert prof.meta["run"] == "demo"
        assert active() is None

    def test_nested_profiles_stack(self):
        with profile(level="outer") as outer:
            with profile(level="inner") as inner:
                assert active() is inner
            assert active() is outer

    def test_recording_is_noop_without_profile(self):
        record("processor", {"cycles": 1.0})  # must not raise

    def test_recording_lands_in_active_profile_only(self):
        with profile() as outer:
            record("processor", {"cycles": 1.0})
            with profile() as inner:
                record("processor", {"cycles": 10.0})
        assert outer.counters.get("processor", "cycles") == 1.0
        assert inner.counters.get("processor", "cycles") == 10.0


class TestHostSpans:
    def test_span_noop_without_profile(self):
        with span("quiet") as s:
            assert s is None

    def test_span_records_duration_and_attrs(self):
        with profile() as prof:
            with span("work", exp_id="t1") as s:
                assert s is not None
        [recorded] = prof.spans
        assert recorded.name == "work"
        assert recorded.clock == HOST_CLOCK
        assert recorded.attrs == {"exp_id": "t1"}
        assert recorded.end_s is not None
        assert recorded.duration_s >= 0.0

    def test_nesting_tracked_via_parent_links(self):
        with profile() as prof:
            with span("outer"):
                with span("inner"):
                    pass
                with span("inner2"):
                    pass
        outer, inner, inner2 = prof.spans
        assert outer.parent is None
        assert inner.parent == 0
        assert inner2.parent == 0

    def test_finished_spans_filters_clock(self):
        with profile() as prof:
            with span("host-side"):
                pass
            prof.spans.append(Span(name="sim-side", clock=SIM_CLOCK,
                                   start_s=0.0, end_s=1.0))
            prof.spans.append(Span(name="open", clock=HOST_CLOCK, start_s=0.0))
        assert [s.name for s in prof.finished_spans(HOST_CLOCK)] == ["host-side"]
        assert [s.name for s in prof.finished_spans(SIM_CLOCK)] == ["sim-side"]
        assert len(prof.finished_spans()) == 2


class TestSimTracing:
    def test_sim_tracer_requires_active_profile(self):
        assert sim_tracer() is None
        with profile():
            assert isinstance(sim_tracer(), SimSpanTracer)

    def test_simulator_records_sim_clock_spans(self):
        def worker(delay):
            yield delay
            return delay

        with profile() as prof:
            sim = Simulator(tracer=sim_tracer(prefix="t"))
            sim.spawn(worker(2.5), name="a")
            sim.spawn(worker(1.0), name="b", delay=0.5)
            sim.run()
        spans = {s.name: s for s in prof.finished_spans(SIM_CLOCK)}
        assert set(spans) == {"t:a", "t:b"}
        assert spans["t:a"].start_s == 0.0
        assert spans["t:a"].end_s == pytest.approx(2.5)
        assert spans["t:b"].start_s == pytest.approx(0.5)
        assert spans["t:b"].end_s == pytest.approx(1.5)

    def test_sim_span_durations_are_simulated_not_host(self):
        def worker():
            yield 1000.0  # a thousand simulated seconds, instant on host

        with profile() as prof:
            sim = Simulator(tracer=sim_tracer())
            sim.spawn(worker(), name="slow")
            sim.run()
        [recorded] = prof.finished_spans(SIM_CLOCK)
        assert recorded.duration_s == pytest.approx(1000.0)

    def test_tracer_sees_queued_start_not_spawn(self):
        def blocked(res):
            from repro.events import Acquire, Release

            yield Acquire(res, 1)
            yield 1.0
            yield Release(res, 1)

        def holder(res):
            from repro.events import Acquire, Release

            yield Acquire(res, 1)
            yield 5.0
            yield Release(res, 1)

        with profile() as prof:
            sim = Simulator(tracer=sim_tracer())
            res = Resource(1, "cpu")
            sim.spawn(holder(res), name="holder")
            sim.spawn(blocked(res), name="blocked")
            sim.run()
        spans = {s.name: s for s in prof.finished_spans(SIM_CLOCK)}
        # Both processes *step* at t=0 (the acquire executes then), but
        # the blocked one only finishes after the holder releases.
        assert spans["sim:blocked"].end_s == pytest.approx(6.0)

    def test_untraced_simulator_still_runs_under_profile(self):
        def worker():
            yield 1.0

        with profile() as prof:
            sim = Simulator()
            sim.spawn(worker())
            sim.run()
        assert prof.finished_spans(SIM_CLOCK) == []
