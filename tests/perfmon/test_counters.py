"""Tests for the counter registry and CounterSet."""

import pytest

from repro.perfmon.counters import COMPONENT_COUNTERS, CounterSet, declare_counters


class TestRegistry:
    def test_machine_components_registered_on_import(self):
        import repro.machine.presets  # noqa: F401  (imports every component)

        for component in ("processor", "vector_unit", "scalar_unit", "memory",
                          "cache", "ixs", "iop", "xmu"):
            assert component in COMPONENT_COUNTERS, component
            assert COMPONENT_COUNTERS[component], component

    def test_declaration_is_idempotent_and_additive(self):
        declare_counters("testcomp", ("alpha", "beta"))
        declare_counters("testcomp", ("beta", "gamma"))
        assert COMPONENT_COUNTERS["testcomp"] == ("alpha", "beta", "gamma")

    def test_bad_names_rejected(self):
        with pytest.raises(ValueError):
            declare_counters("", ("x",))
        with pytest.raises(ValueError):
            declare_counters("comp-with-dash", ("x",))
        with pytest.raises(ValueError):
            declare_counters("okcomp", ())
        with pytest.raises(ValueError):
            declare_counters("okcomp", ("not a name",))


class TestCounterSet:
    def test_add_accumulates(self):
        counters = CounterSet()
        counters.add("processor", "cycles", 10.0)
        counters.add("processor", "cycles", 5.0)
        assert counters.get("processor", "cycles") == 15.0

    def test_unknown_component_and_counter_fail_loudly(self):
        counters = CounterSet()
        with pytest.raises(KeyError, match="declare_counters"):
            counters.add("no_such_component", "cycles")
        with pytest.raises(KeyError, match="not declared"):
            counters.add("processor", "no_such_counter")

    def test_merge_sums_per_counter(self):
        a, b = CounterSet(), CounterSet()
        a.add("processor", "cycles", 3.0)
        b.add("processor", "cycles", 4.0)
        b.add("processor", "ops", 1.0)
        a.merge(b)
        assert a.get("processor", "cycles") == 7.0
        assert a.get("processor", "ops") == 1.0

    def test_iteration_and_len(self):
        counters = CounterSet()
        counters.add("processor", "cycles", 1.0)
        counters.add("processor", "ops", 2.0)
        triples = list(counters)
        assert ("processor", "cycles", 1.0) in triples
        assert len(counters) == 2
        assert bool(counters)
        assert not CounterSet()

    def test_round_trip_preserves_values(self):
        counters = CounterSet()
        counters.add("processor", "cycles", 12.5)
        rebuilt = CounterSet.from_dict(counters.to_dict())
        assert rebuilt.get("processor", "cycles") == 12.5

    def test_from_dict_keeps_unknown_counters(self):
        # Forward compatibility: a profile written by a newer build must
        # still load (and diff) even if this build never declared the
        # counter.
        rebuilt = CounterSet.from_dict({"future_component": {"novel": 1.0}})
        assert rebuilt.get("future_component", "novel") == 1.0
