"""Tests for profile serialization and the exporter formats."""

import json

import pytest

from repro.perfmon.collector import SIM_CLOCK, Span, profile, span
from repro.perfmon.export import (
    PROFILE_SCHEMA_VERSION,
    LoadedProfile,
    export_text,
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
    to_chrome_trace,
    to_prometheus,
    validate_chrome_trace,
)
from repro.perfmon.proginf import profile_kernels
from repro.units import US


def _sample_profile():
    with profile(role="test") as prof:
        prof.counters.add("processor", "cycles", 100.0)
        with span("outer"):
            with span("inner"):
                pass
        prof.spans.append(
            Span(name="sim:a", clock=SIM_CLOCK, start_s=0.0, end_s=2.0)
        )
        prof.spans.append(
            Span(name="sim:b", clock=SIM_CLOCK, start_s=1.0, end_s=3.0)
        )
    return prof


class TestProfileDocument:
    def test_round_trip(self, tmp_path):
        prof = _sample_profile()
        kernels = profile_kernels(["copy"])
        path = save_profile(tmp_path / "prof.json", prof, kernels)
        loaded = load_profile(path)
        assert loaded.profile.counters.get("processor", "cycles") == 100.0
        assert [s.name for s in loaded.profile.spans] == [
            "outer", "inner", "sim:a", "sim:b"
        ]
        assert loaded.profile.meta["role"] == "test"
        assert loaded.kernels["copy"].metrics.mflops == pytest.approx(
            kernels["copy"].metrics.mflops
        )

    def test_document_is_schema_versioned(self):
        payload = profile_to_dict(_sample_profile())
        assert payload["schema_version"] == PROFILE_SCHEMA_VERSION

    def test_unsupported_schema_rejected(self):
        payload = profile_to_dict(_sample_profile())
        payload["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            profile_from_dict(payload)
        with pytest.raises(ValueError):
            profile_from_dict([])


class TestChromeTrace:
    def test_emitted_trace_validates(self):
        document = to_chrome_trace(_sample_profile())
        assert validate_chrome_trace(document) == []

    def test_span_times_are_microseconds(self):
        document = to_chrome_trace(_sample_profile())
        sim_events = [e for e in document["traceEvents"]
                      if e.get("cat") == SIM_CLOCK and e["name"] == "sim:a"]
        [event] = sim_events
        assert event["ts"] == pytest.approx(0.0)
        assert event["dur"] == pytest.approx(2.0 / US)  # 2 s in µs

    def test_overlapping_sim_spans_get_distinct_lanes(self):
        document = to_chrome_trace(_sample_profile())
        tids = {e["name"]: e["tid"] for e in document["traceEvents"]
                if e.get("cat") == SIM_CLOCK}
        assert tids["sim:a"] != tids["sim:b"]

    def test_open_spans_are_skipped(self):
        prof = _sample_profile()
        prof.spans.append(Span(name="never-closed", start_s=0.0))
        document = to_chrome_trace(prof)
        assert all(e["name"] != "never-closed" for e in document["traceEvents"])

    def test_json_serializable(self):
        json.dumps(to_chrome_trace(_sample_profile()))


class TestChromeValidation:
    """The validator must reject malformed documents — CI gates on it."""

    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace(None) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({"foo": []}) != []

    def test_rejects_bad_events(self):
        base = {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": 1.0}
        for corruption in (
            {"name": ""},
            {"ph": "ZZ"},
            {"pid": "one"},
            {"tid": None},
            {"ts": -5.0},
            {"ts": "0"},
            {"dur": None},
            {"dur": -1.0},
            {"args": "not-a-dict"},
        ):
            event = {**base, **corruption}
            errors = validate_chrome_trace({"traceEvents": [event]})
            assert errors != [], corruption

    def test_accepts_metadata_events_without_dur(self):
        event = {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                 "ts": 0, "args": {"name": "host"}}
        assert validate_chrome_trace({"traceEvents": [event]}) == []


class TestPrometheus:
    def test_counters_and_metrics_exposed(self):
        prof = _sample_profile()
        kernels = profile_kernels(["copy"])
        text = to_prometheus(prof, kernels)
        assert "# TYPE repro_perfmon_counter gauge" in text
        assert 'repro_perfmon_counter{component="processor",counter="cycles"} 100.0' in text
        assert '# TYPE repro_proginf gauge' in text
        assert 'repro_proginf{kernel="copy",metric="mflops"}' in text

    def test_label_values_escaped(self):
        prof = _sample_profile()
        text = to_prometheus(prof)
        assert '\\"' not in text  # nothing to escape in clean names
        from repro.perfmon.export import _prom_escape

        assert _prom_escape('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


class TestExportText:
    def test_every_format_renders(self):
        loaded = LoadedProfile(profile=_sample_profile(),
                               kernels=profile_kernels(["copy"]))
        for fmt in ("json", "prometheus", "chrome", "ftrace"):
            text = export_text(loaded, fmt)
            assert text.strip(), fmt

    def test_json_format_round_trips(self):
        loaded = LoadedProfile(profile=_sample_profile())
        payload = json.loads(export_text(loaded, "json"))
        assert payload["schema_version"] == PROFILE_SCHEMA_VERSION

    def test_ftrace_format_has_both_clocks(self):
        loaded = LoadedProfile(profile=_sample_profile())
        text = export_text(loaded, "ftrace")
        assert "FTRACE (host clock)" in text
        assert "FTRACE (sim clock)" in text

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown export format"):
            export_text(LoadedProfile(profile=_sample_profile()), "yaml")
