"""Tests for FTRACE aggregation and profile diffing."""

import pytest

from repro.perfmon.collector import HOST_CLOCK, SIM_CLOCK, Profile, Span
from repro.perfmon.diff import DiffEntry, diff_profiles, render_diff
from repro.perfmon.export import profile_from_dict, profile_to_dict
from repro.perfmon.ftrace import aggregate_spans, render_ftrace
from repro.perfmon.proginf import profile_kernels


def _profile_with_spans(spans):
    prof = Profile()
    prof.spans.extend(spans)
    return prof


class TestFtraceAggregation:
    def test_exclusive_subtracts_direct_children(self):
        prof = _profile_with_spans([
            Span(name="outer", start_s=0.0, end_s=10.0),
            Span(name="inner", start_s=1.0, end_s=4.0, parent=0),
            Span(name="inner", start_s=5.0, end_s=9.0, parent=0),
        ])
        stats = {s.name: s for s in aggregate_spans(prof)}
        assert stats["outer"].inclusive_s == pytest.approx(10.0)
        assert stats["outer"].exclusive_s == pytest.approx(3.0)  # 10 - 3 - 4
        assert stats["inner"].calls == 2
        assert stats["inner"].exclusive_s == pytest.approx(7.0)
        assert stats["inner"].min_s == pytest.approx(3.0)
        assert stats["inner"].max_s == pytest.approx(4.0)

    def test_sorted_by_exclusive_descending(self):
        prof = _profile_with_spans([
            Span(name="small", start_s=0.0, end_s=1.0),
            Span(name="big", start_s=0.0, end_s=5.0),
        ])
        assert [s.name for s in aggregate_spans(prof)] == ["big", "small"]

    def test_sim_spans_aggregate_separately(self):
        prof = _profile_with_spans([
            Span(name="host-work", start_s=0.0, end_s=1.0),
            Span(name="sim-work", clock=SIM_CLOCK, start_s=0.0, end_s=100.0),
        ])
        assert [s.name for s in aggregate_spans(prof, HOST_CLOCK)] == ["host-work"]
        sim = aggregate_spans(prof, SIM_CLOCK)
        assert [s.name for s in sim] == ["sim-work"]
        assert sim[0].inclusive_s == pytest.approx(100.0)

    def test_render_has_table_header_and_totals(self):
        prof = _profile_with_spans([Span(name="region", start_s=0.0, end_s=2.0)])
        text = render_ftrace(prof)
        assert "FTRACE" in text
        assert "FREQUENCY" in text
        assert "region" in text
        assert "total" in text

    def test_render_empty(self):
        assert "no host-clock spans" in render_ftrace(Profile())


def _loaded(counter_overrides=None, metric_overrides=None):
    kernels = profile_kernels(["copy"])
    prof = Profile()
    prof.counters.merge(kernels["copy"].counters)
    payload = profile_to_dict(prof, kernels)
    for subject, value in (counter_overrides or {}).items():
        component, counter = subject.split(".")
        payload["counters"][component][counter] = value
    for subject, value in (metric_overrides or {}).items():
        kid, metric = subject.split(".")
        payload["kernels"][kid]["metrics"][metric] = value
    return profile_from_dict(payload)


class TestDiff:
    def test_identical_profiles_have_no_drift(self):
        assert diff_profiles(_loaded(), _loaded(), tolerance=0.0) == []

    def test_within_tolerance_ignored(self):
        old = _loaded()
        new = _loaded(counter_overrides={
            "processor.cycles": old.profile.counters.get("processor", "cycles") * 1.01
        })
        assert diff_profiles(old, new, tolerance=0.05) == []
        assert diff_profiles(old, new, tolerance=0.001) != []

    def test_cost_counter_increase_is_regression(self):
        old = _loaded()
        worse = old.profile.counters.get("processor", "cycles") * 2.0
        entries = diff_profiles(
            old, _loaded(counter_overrides={"processor.cycles": worse})
        )
        cycles = [e for e in entries if e.subject == "processor.cycles"]
        assert cycles and cycles[0].regression

    def test_cost_counter_decrease_is_not_regression(self):
        old = _loaded()
        better = old.profile.counters.get("processor", "cycles") * 0.5
        entries = diff_profiles(
            old, _loaded(counter_overrides={"processor.cycles": better})
        )
        cycles = [e for e in entries if e.subject == "processor.cycles"]
        assert cycles and not cycles[0].regression

    def test_mflops_drop_is_regression_and_gain_is_not(self):
        # copy is a pure memory kernel (zero flops), so pin an explicit
        # baseline instead of scaling the computed value.
        old = _loaded(metric_overrides={"copy.mflops": 100.0})
        slower = diff_profiles(
            old, _loaded(metric_overrides={"copy.mflops": 50.0})
        )
        faster = diff_profiles(
            old, _loaded(metric_overrides={"copy.mflops": 200.0})
        )
        assert any(e.subject == "copy.mflops" and e.regression for e in slower)
        assert not any(e.regression for e in faster)

    def test_missing_counter_reported_as_presence(self):
        old = _loaded()
        payload = profile_to_dict(old.profile, old.kernels)
        del payload["counters"]["processor"]["cycles"]
        entries = diff_profiles(old, profile_from_dict(payload))
        presence = [e for e in entries if e.kind == "presence"]
        assert any(e.subject == "processor.cycles" for e in presence)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            diff_profiles(_loaded(), _loaded(), tolerance=-0.1)

    def test_render_diff(self):
        entries = [DiffEntry(kind="counter", subject="processor.cycles",
                             old=1.0, new=2.0, regression=True)]
        text = render_diff(entries, 0.05)
        assert "processor.cycles" in text
        assert "regression" in text
        assert "no counter or metric drift" in render_diff([], 0.05)

    def test_delta_pct(self):
        entry = DiffEntry(kind="counter", subject="x.y", old=2.0, new=3.0,
                          regression=False)
        assert entry.delta_pct == pytest.approx(50.0)
        assert DiffEntry(kind="presence", subject="x.y", old=None, new=1.0,
                         regression=False).delta_pct is None
