"""PROGINF acceptance tests.

The acceptance criterion of the observability subsystem: for each of
the 13 kernel traces, the counter-derived vector-operation ratio,
average vector length, and Mflops must match values derived
*independently* — straight from the operation descriptors in the trace
(strip-mining arithmetic by hand) and from an unprofiled
``Processor.execute`` run.
"""

import math

import pytest

from repro.analysis.traces import TRACE_BUILDERS
from repro.machine.operations import VectorOp
from repro.machine.presets import sx4_processor
from repro.perfmon.proginf import (
    APPLICATION_IDS,
    KERNEL_IDS,
    ProginfMetrics,
    profile_kernels,
    profile_trace,
    proginf_report,
    render_proginf,
)
from repro.units import MEGA


def expected_from_trace(trace, processor):
    """(ratio, avg VL, mflops) derived from trace ops alone.

    This deliberately re-implements the definitions instead of calling
    any perfmon code: vector instructions by strip-mining each loop into
    register_length chunks, scalar instructions straight off ScalarOp
    descriptors, Mflops from an unprofiled execute() run.
    """
    register_length = processor.vector.register_length
    vector_elements = 0.0
    vector_instructions = 0.0
    scalar_instructions = 0.0
    for op in trace:
        if isinstance(op, VectorOp):
            vector_elements += op.length * op.count
            vector_instructions += math.ceil(op.length / register_length) * op.count
        else:
            scalar_instructions += op.instructions * op.count
    seconds = processor.execute(trace).seconds  # no profile active
    denom = vector_elements + scalar_instructions
    ratio = vector_elements / denom if denom else 0.0
    avg_vl = vector_elements / vector_instructions if vector_instructions else 0.0
    mflops = trace.flop_equivalents / seconds / MEGA if seconds else 0.0
    return ratio, avg_vl, mflops


class TestKernelRegistry:
    def test_exactly_thirteen_kernels(self):
        assert len(KERNEL_IDS) == 13

    def test_applications_excluded(self):
        assert set(APPLICATION_IDS) == {"ccm2", "mom", "pop"}
        assert not set(KERNEL_IDS) & set(APPLICATION_IDS)
        assert set(KERNEL_IDS) | set(APPLICATION_IDS) == set(TRACE_BUILDERS)


class TestCountersMatchTraceDerivation:
    """The tentpole assertion: counters reproduce trace-derived truth."""

    @pytest.mark.parametrize("trace_id", KERNEL_IDS)
    def test_ratio_avg_vl_and_mflops(self, trace_id):
        processor = sx4_processor()
        trace = TRACE_BUILDERS[trace_id][1]()
        ratio, avg_vl, mflops = expected_from_trace(trace, processor)

        kernel = profile_kernels([trace_id])[trace_id]
        metrics = kernel.metrics
        assert metrics.vector_op_ratio == pytest.approx(ratio)
        assert metrics.avg_vector_length == pytest.approx(avg_vl)
        assert metrics.mflops == pytest.approx(mflops)

    @pytest.mark.parametrize("trace_id", KERNEL_IDS)
    def test_real_time_matches_execution_report(self, trace_id):
        trace = TRACE_BUILDERS[trace_id][1]()
        report, prof = profile_trace(trace)
        metrics = ProginfMetrics.from_counters(prof.counters)
        assert metrics.real_time_s == pytest.approx(report.seconds)
        assert metrics.flop_equivalents == pytest.approx(trace.flop_equivalents)

    def test_profiling_does_not_change_reported_time(self):
        trace = TRACE_BUILDERS["stream"][1]()
        processor = sx4_processor()
        bare = processor.execute(trace).seconds
        profiled, _ = profile_trace(trace, processor)
        assert profiled.seconds == bare


class TestMetricShapes:
    def test_ratio_bounded_and_times_partition(self):
        for trace_id in KERNEL_IDS:
            kernel = profile_kernels([trace_id])[trace_id]
            m = kernel.metrics
            assert 0.0 <= m.vector_op_ratio <= 1.0, trace_id
            assert m.bank_conflict_s >= 0.0, trace_id
            assert m.vector_time_s + m.scalar_time_s == pytest.approx(
                m.real_time_s
            ), trace_id

    def test_vectorized_radabs_beats_scalar_radabs(self):
        kernels = profile_kernels(["radabs", "radabs-scalar"])
        assert (
            kernels["radabs"].metrics.vector_op_ratio
            > kernels["radabs-scalar"].metrics.vector_op_ratio
        )
        assert kernels["radabs"].metrics.mflops > kernels["radabs-scalar"].metrics.mflops


class TestRendering:
    def test_proginf_block_has_classic_rows(self):
        kernel = profile_kernels(["stream"])["stream"]
        text = render_proginf(kernel.metrics, title="stream")
        assert "Program Information" in text
        for row in ("Real Time (sec)", "Vector Time (sec)", "V. Element Count",
                    "MFLOPS", "Average Vector Length", "Vector Op. Ratio (%)",
                    "Bank Conflict Time (sec)"):
            assert row in text, row

    def test_report_sections_per_kernel(self):
        kernels = profile_kernels(["copy", "stream"])
        text = proginf_report(kernels)
        assert text.count("Program Information") == 2
        assert "copy" in text and "stream" in text

    def test_unknown_kernel_id_raises(self):
        with pytest.raises(KeyError, match="nonsense"):
            profile_kernels(["nonsense"])
