"""Tests for resource blocks and the PRODLOAD simulation."""

import pytest

from repro.machine.presets import sx4_node
from repro.scheduler import jobs, prodload
from repro.scheduler.resource_blocks import ResourceBlock, ResourceBlockSet


class TestResourceBlock:
    def test_admit_allocate_release(self):
        block = ResourceBlock("b", 0, 8, 2.0)
        assert block.admits(4, 1.0)
        block.allocate(4, 1.0)
        assert block.cpus_in_use == 4
        assert not block.admits(5, 0.5)
        block.release(4, 1.0)
        assert block.cpus_in_use == 0

    def test_over_release_rejected(self):
        block = ResourceBlock("b", 0, 8, 2.0)
        with pytest.raises(ValueError):
            block.release(1, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceBlock("b", 4, 2, 1.0)  # min > max
        with pytest.raises(ValueError):
            ResourceBlock("b", 0, 4, -1.0)
        with pytest.raises(ValueError):
            ResourceBlock("b", 0, 4, 1.0, policy="weird")
        block = ResourceBlock("b", 0, 4, 1.0)
        with pytest.raises(ValueError):
            block.admits(0, 1.0)


class TestResourceBlockSet:
    def test_production_default_valid(self):
        blocks = ResourceBlockSet.production_default()
        assert len(blocks.blocks) == 3
        names = {b.name for b in blocks.blocks}
        assert "interactive" in names

    def test_placement_by_policy(self):
        blocks = ResourceBlockSet.production_default()
        chosen = blocks.place(2, 0.5, policy="interactive")
        assert chosen.name == "interactive"
        with pytest.raises(ValueError):
            blocks.place(8, 0.5, policy="interactive")  # exceeds the slice

    def test_all_processors_to_one_process(self):
        """Section 2.6.4: 'All processors can be assigned to a single
        process by properly defining the Resource Blocks.'"""
        blocks = ResourceBlockSet(
            blocks=[ResourceBlock("whole-machine", 0, 32, 8.0, policy="fifo")],
            node_cpus=32,
        )
        chosen = blocks.place(32, 8.0, policy="fifo")
        assert chosen.cpus_in_use == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceBlockSet(blocks=[])
        with pytest.raises(ValueError):
            ResourceBlockSet(
                blocks=[ResourceBlock("a", 0, 64, 2.0)], node_cpus=32
            )
        with pytest.raises(ValueError):
            ResourceBlockSet(
                blocks=[
                    ResourceBlock("a", 20, 20, 2.0),
                    ResourceBlock("b", 20, 20, 2.0),
                ],
                node_cpus=32,
            )
        with pytest.raises(ValueError):
            ResourceBlockSet(
                blocks=[ResourceBlock("a", 0, 4, 2.0), ResourceBlock("a", 0, 4, 2.0)]
            )


class TestJobs:
    @pytest.fixture(scope="class")
    def node(self):
        return sx4_node()

    def test_prodload_job_composition(self, node):
        """A job = HIPPI + one T106 3-day + two T42 20-day runs."""
        job = jobs.prodload_job(node, "j")
        names = [c.name for c in job.components]
        assert len(names) == 4
        assert sum("t42" in n for n in names) == 2
        assert sum("t106" in n for n in names) == 1
        assert sum("hippi" in n for n in names) == 1

    def test_four_jobs_fill_the_node(self, node):
        job = jobs.prodload_job(node, "j")
        assert 4 * job.cpus == node.cpu_count

    def test_durations_positive_and_minutes_scale(self, node):
        job = jobs.prodload_job(node, "j")
        for comp in job.components:
            assert 10.0 < comp.duration_s < 3600.0

    def test_contention_lengthens_components(self, node):
        alone = jobs.prodload_job(node, "j", concurrent_jobs=1)
        crowded = jobs.prodload_job(node, "j", concurrent_jobs=4)
        assert crowded.critical_duration_s > alone.critical_duration_s

    def test_validation(self, node):
        with pytest.raises(ValueError):
            jobs.Component("c", cpus=0, duration_s=1.0)
        with pytest.raises(ValueError):
            jobs.Component("c", cpus=1, duration_s=0.0)
        with pytest.raises(ValueError):
            jobs.JobSpec("j", components=())
        with pytest.raises(ValueError):
            jobs.ccm2_component(node, "x", "T42L18", days=0.0, cpus=2)
        with pytest.raises(ValueError):
            jobs.prodload_job(node, "j", concurrent_jobs=0)


class TestProdload:
    @pytest.fixture(scope="class")
    def result(self):
        return prodload.run_prodload()

    def test_four_tests_present(self, result):
        assert set(result.test_seconds) == {"test1", "test2", "test3", "test4"}

    def test_total_matches_paper(self, result):
        """'The NEC SX-4/32 completed the PRODLOAD benchmark in 93
        minutes and 28 seconds' — the simulation lands within ~10%."""
        assert result.total_seconds == pytest.approx(
            prodload.PAPER_TOTAL_SECONDS, rel=0.10
        )

    def test_concurrent_sequences_cost_little_extra(self, result):
        """Tests 1-3 run 1x/2x/4x the work in nearly the same wall time —
        the whole point of the benchmark (the machine absorbs load)."""
        t1 = result.test_seconds["test1"]
        t3 = result.test_seconds["test3"]
        assert t3 < 1.15 * t1

    def test_t170_test_is_short(self, result):
        assert result.test_seconds["test4"] < 0.25 * result.test_seconds["test1"]

    def test_job_records_complete(self, result):
        # 4 tests: (4 + 8 + 16) jobs x 4 components + 2 T170 components.
        assert len(result.job_records) == (4 + 8 + 16) * 4 + 2
        for name, start, end in result.job_records:
            assert end > start >= 0.0

    def test_no_cpu_oversubscription(self):
        """The event engine enforces the 32-CPU pool; a job needing more
        than the node must fail loudly."""
        node = sx4_node(cpus=4)
        with pytest.raises(Exception):
            prodload.run_prodload(node)

    def test_validation(self):
        with pytest.raises(ValueError):
            prodload.run_prodload(jobs_per_sequence=0)
