"""Tests for the transport-free service application.

The acceptance properties of the service live here: submit-twice
byte-identity, cache hits that never touch the executor, quota
enforcement, restart recovery, TTL sweeping, and live progress in
status payloads.
"""

import json

import pytest

import repro.service.app as app_module
from repro.faults.inject import FaultAction, FaultInjector
from repro.service.app import CACHE_HIT, CACHE_MISS, CACHE_PENDING, ServiceApp
from repro.service.requests import request_job_id, validate_request
from repro.service.tenants import Tenant, TenantRegistry

SUITE_BODY = {"kind": "suite", "suite": {"ids": ["table2"]}}


def submit(app, body=SUITE_BODY):
    response = app.handle("POST", "/v1/jobs", json.dumps(body).encode())
    return response, json.loads(response.body)


@pytest.fixture
def app(tmp_path):
    return ServiceApp(root=tmp_path / "cache")


class TestSubmission:
    def test_first_submission_is_a_miss(self, app):
        response, payload = submit(app)
        assert response.status == 202
        assert payload["cache"] == CACHE_MISS
        assert payload["state"] == "pending"

    def test_job_id_is_the_request_digest(self, app):
        _, payload = submit(app)
        expected = request_job_id(validate_request(SUITE_BODY))
        assert payload["job_id"] == expected

    def test_resubmit_while_pending_dedupes(self, app):
        _, first = submit(app)
        response, second = submit(app)
        assert response.status == 202
        assert second["cache"] == CACHE_PENDING
        assert second["job_id"] == first["job_id"]
        assert len(app.queue) == 1

    def test_malformed_json_is_400(self, app):
        assert app.handle("POST", "/v1/jobs", b"{nope").status == 400

    def test_unresolvable_request_is_400_not_a_job(self, app):
        response, _ = submit(app, {"kind": "suite", "suite": {"ids": ["nope"]}})
        assert response.status == 400
        assert app.spool.records() == []

    def test_unknown_tenant_is_403(self, app):
        response, _ = submit(app, dict(SUITE_BODY, tenant="ghost"))
        assert response.status == 403

    def test_unknown_route_is_404(self, app):
        assert app.handle("GET", "/v1/nope", b"").status == 404


class TestCacheSemantics:
    def test_submit_twice_byte_identical_without_executor(self, app):
        _, first = submit(app)
        assert app.run_pending() == 1
        result_1 = app.handle("GET", f"/v1/jobs/{first['job_id']}/result", b"")
        assert result_1.status == 200

        # Second identical submission: served from the spool, marked
        # hit, and the executor never runs (monkeypatch-free proof —
        # the queue stays empty, so there is nothing to execute).
        response, second = submit(app)
        assert response.status == 200
        assert second["cache"] == CACHE_HIT
        assert second["job_id"] == first["job_id"]
        assert len(app.queue) == 0
        assert app.run_pending() == 0

        result_2 = app.handle("GET", f"/v1/jobs/{first['job_id']}/result", b"")
        assert result_2.body == result_1.body

    def test_hit_never_invokes_engine(self, app, monkeypatch):
        _, first = submit(app)
        app.run_pending()

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("cache hit reached the executor")

        monkeypatch.setattr(app_module, "run_engine", forbidden)
        response, payload = submit(app)
        assert payload["cache"] == CACHE_HIT
        assert response.status == 200

    def test_result_payload_is_deterministic_content(self, app):
        _, payload = submit(app)
        app.run_pending()
        result = json.loads(
            app.handle("GET", f"/v1/jobs/{payload['job_id']}/result", b"").body
        )
        # Run-dependent data (timings, cache counts) must not leak into
        # the result payload — that would break byte-identity.
        assert "wall_s" not in result
        assert result["digests"].keys() == {"table2"}
        assert result["exp_ids"] == ["table2"]

    def test_result_by_digest_reads_store_directly(self, app):
        _, payload = submit(app)
        app.run_pending()
        result = json.loads(
            app.handle("GET", f"/v1/jobs/{payload['job_id']}/result", b"").body
        )
        digest = result["digests"]["table2"]
        response = app.handle("GET", f"/v1/results/{digest}", b"")
        assert response.status == 200
        body = json.loads(response.body)
        assert body["cache"] == CACHE_HIT
        assert body["experiment"]["exp_id"] == "table2"

    def test_result_by_unknown_digest_is_404(self, app):
        assert app.handle("GET", f"/v1/results/{'0' * 64}", b"").status == 404


class TestTenantIsolation:
    @pytest.fixture
    def app(self, tmp_path):
        return ServiceApp(
            root=tmp_path / "cache",
            tenants=TenantRegistry(tenants=(
                Tenant(name="team-a", max_pending=1, max_records=2),
            )),
        )

    def test_same_work_distinct_jobs_per_tenant(self, app):
        _, a = submit(app, dict(SUITE_BODY, tenant="team-a"))
        _, b = submit(app)
        assert a["job_id"] != b["job_id"]

    def test_tenant_cannot_read_other_tenants_job(self, app):
        _, payload = submit(app, dict(SUITE_BODY, tenant="team-a"))
        app.run_pending()
        mine = app.handle(
            "GET", f"/v1/jobs/{payload['job_id']}?tenant=team-a", b""
        )
        theirs = app.handle("GET", f"/v1/jobs/{payload['job_id']}", b"")
        assert mine.status == 200
        assert theirs.status == 404

    def test_caches_do_not_leak_across_tenants(self, app):
        # team-a computes; public submitting identical work is a miss.
        _, a = submit(app, dict(SUITE_BODY, tenant="team-a"))
        app.run_pending()
        _, b = submit(app)
        assert b["cache"] == CACHE_MISS

    def test_pending_quota_is_429(self, app):
        submit(app, dict(SUITE_BODY, tenant="team-a"))
        body = dict(SUITE_BODY, tenant="team-a", tag="second")
        response, _ = submit(app, body)
        assert response.status == 429
        text = app.handle("GET", "/metrics", b"").body.decode()
        assert 'counter="quota_rejections"} 1.0' in text

    def test_record_quota_is_429(self, app):
        for tag in ("a", "b"):
            submit(app, dict(SUITE_BODY, tenant="team-a", tag=tag))
            app.run_pending()
        response, _ = submit(app, dict(SUITE_BODY, tenant="team-a", tag="c"))
        assert response.status == 429


class TestRecovery:
    def test_restart_resumes_same_job_id_and_digest(self, tmp_path):
        app_1 = ServiceApp(root=tmp_path / "cache")
        _, payload = submit(app_1)
        # the process "dies" here: nothing executed, queue lost

        app_2 = ServiceApp(root=tmp_path / "cache")
        resumed = app_2.recover()
        assert [r.job_id for r in resumed] == [payload["job_id"]]
        assert app_2.run_pending() == 1
        status = json.loads(
            app_2.handle("GET", f"/v1/jobs/{payload['job_id']}", b"").body
        )
        assert status["state"] == "done"

    def test_killed_mid_job_reruns_to_same_result(self, tmp_path):
        app_1 = ServiceApp(root=tmp_path / "cache")
        _, payload = submit(app_1)
        record = app_1.spool.get("public", payload["job_id"])
        app_1.spool.mark_running(record)  # simulate dying mid-execution

        app_2 = ServiceApp(root=tmp_path / "cache")
        app_2.recover()
        app_2.run_pending()
        result = app_2.handle("GET", f"/v1/jobs/{payload['job_id']}/result", b"")
        assert result.status == 200


class TestProgressAndMetrics:
    def test_status_embeds_live_profile(self, app):
        _, payload = submit(app)
        record = app.spool.get("public", payload["job_id"])

        captured = {}

        def spying_run_engine(*args, **kwargs):
            # Snapshot the status payload while the job is running.
            captured["status"] = json.loads(
                app.handle("GET", f"/v1/jobs/{record.job_id}", b"").body
            )
            raise RuntimeError("stop here")

        real = app_module.run_engine
        app_module.run_engine = spying_run_engine
        try:
            app.run_pending()
        finally:
            app_module.run_engine = real
        progress = captured["status"].get("progress")
        assert progress is not None
        assert "counters" in progress

    def test_finished_job_meta_has_perfmon_snapshot(self, app):
        _, payload = submit(app)
        app.run_pending()
        status = json.loads(
            app.handle("GET", f"/v1/jobs/{payload['job_id']}", b"").body
        )
        assert "perfmon" in status["meta"]
        assert "cache" in status["meta"]

    def test_metrics_exposition(self, app):
        submit(app)
        app.run_pending()
        submit(app)
        text = app.handle("GET", "/metrics", b"").body.decode()
        assert 'component="service",counter="hits"} 1.0' in text
        assert 'component="service",counter="misses"} 1.0' in text
        assert 'component="service",counter="completed"} 1.0' in text

    def test_health(self, app):
        body = json.loads(app.handle("GET", "/v1/health", b"").body)
        assert body["status"] == "ready"
        assert body["draining"] is False
        assert body["degraded"] is False
        assert body["breakers"] == {}
        assert body["worker"]["epoch"] == 0


class TestFaultsAndSweeping:
    def test_injected_submit_fault_is_503(self, tmp_path):
        job_id = request_job_id(validate_request(SUITE_BODY))
        injector = FaultInjector(actions=(
            FaultAction(site="service_submit", exp_id=job_id, kind="error"),
        ))
        app = ServiceApp(root=tmp_path / "cache", injector=injector)
        response, _ = submit(app)
        assert response.status == 503
        assert injector.applied_counts() == {"service_submit": 1}
        # the fault fired once; the retry goes through
        response, _ = submit(app)
        assert response.status == 202

    def test_suite_fault_plan_recovers_via_retry(self, app):
        body = {
            "kind": "suite",
            "suite": {
                "ids": ["table2"],
                "fault_plan": {
                    "schema": 1,
                    "seed": 0,
                    "actions": [{"site": "executor_job", "exp_id": "table2",
                                 "kind": "error", "attempt": 0}],
                },
            },
        }
        _, payload = submit(app, body)
        app.run_pending()
        status = json.loads(
            app.handle("GET", f"/v1/jobs/{payload['job_id']}", b"").body
        )
        assert status["state"] == "done"
        assert status["meta"]["retry_rounds"] >= 1

    def test_ttl_sweep_drops_expired_records(self, tmp_path):
        clock = {"now": 0.0}
        app = ServiceApp(
            root=tmp_path / "cache",
            tenants=TenantRegistry(tenants=(
                Tenant(name="public", result_ttl_s=10.0),
            )),
            clock=lambda: clock["now"],
        )
        _, payload = submit(app)
        app.run_pending()
        assert app.sweep_expired() == 0  # not expired yet
        clock["now"] = 100.0
        assert app.sweep_expired() == 1
        assert app.spool.get("public", payload["job_id"]) is None
