"""Tests for ``python -m repro.service`` (the 0/1/2 exit contract)."""

import json

import pytest

from repro.service.cli import main
from repro.service.spool import JobRecord, JobSpool


class TestUsage:
    def test_no_command_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main([])
        assert exit_info.value.code == 2

    def test_unknown_command_is_usage_error(self):
        with pytest.raises(SystemExit) as exit_info:
            main(["transmogrify"])
        assert exit_info.value.code == 2

    def test_submit_requires_a_body(self):
        with pytest.raises(SystemExit) as exit_info:
            main(["submit"])
        assert exit_info.value.code == 2


class TestSubmitFailures:
    def test_invalid_json_body_is_1(self, capsys):
        code = main(["submit", "--body", "{nope", "--port", "1"])
        assert code == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_unreachable_server_is_1(self, capsys):
        code = main(["submit", "--body", "{}", "--port", "1"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_body_file_is_1(self, capsys):
        code = main(["submit", "--body-file", "/nonexistent/f.json"])
        assert code == 1


class TestStatusFailures:
    def test_unreachable_server_is_1(self, capsys):
        code = main(["status", "a" * 64, "--port", "1"])
        assert code == 1


class TestServeFailures:
    def test_bad_tenants_file_is_1(self, tmp_path, capsys):
        bad = tmp_path / "tenants.json"
        bad.write_text("{nope")
        code = main(["serve", "--tenants", str(bad)])
        assert code == 1
        assert "tenants file" in capsys.readouterr().err


class TestGc:
    def _expired_record(self, root):
        spool = JobSpool(root)
        record = JobRecord(
            job_id="ab" * 32, tenant="public",
            request={"kind": "suite", "suite": {"ids": []}},
        )
        spool.mark_done(record, result={}, meta={}, now=0.0, ttl_s=1.0)
        return spool

    def test_gc_sweeps_expired(self, tmp_path, capsys):
        spool = self._expired_record(tmp_path)
        code = main(["gc", "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "removed 1 expired job record" in capsys.readouterr().out
        assert spool.get("public", "ab" * 32) is None

    def test_gc_dry_run_keeps(self, tmp_path, capsys):
        spool = self._expired_record(tmp_path)
        code = main(["gc", "--cache-dir", str(tmp_path), "--dry-run"])
        assert code == 0
        assert "would remove 1" in capsys.readouterr().out
        assert spool.get("public", "ab" * 32) is not None


class TestEngineGcIntegration:
    def test_engine_gc_sweeps_service_records(self, tmp_path, capsys):
        from repro.engine.cli import main as engine_main

        spool = JobSpool(tmp_path)
        record = JobRecord(
            job_id="cd" * 32, tenant="public",
            request={"kind": "suite", "suite": {"ids": []}},
        )
        spool.mark_done(record, result={}, meta={}, now=0.0, ttl_s=1.0)
        code = engine_main(["gc", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 expired service job record" in out
        assert spool.get("public", "cd" * 32) is None
