"""Tests for the client half of the resilience layer.

All network I/O is monkeypatched at ``_request_once`` and every sleep
is recorded instead of slept, so the full retry/backoff schedule is
asserted in microseconds.
"""

import json

import pytest

from repro.faults.retry import RetryPolicy
from repro.service.client import (
    ServiceClient,
    ServiceError,
    connect_retry_policy,
)


def scripted_client(monkeypatch, script, **kwargs):
    """A client whose transport replays ``script`` and records sleeps.

    ``script`` items are either an exception instance (raised) or a
    ``(status, headers, body_dict)`` tuple (returned).  Returns
    ``(client, sleeps, calls)``.
    """
    sleeps: list[float] = []
    calls: list[tuple[str, str]] = []
    replies = list(script)

    def fake_request_once(self, method, path, body):
        calls.append((method, path))
        step = replies.pop(0)
        if isinstance(step, BaseException):
            raise step
        status, headers, payload = step
        return status, headers, json.dumps(payload).encode()

    monkeypatch.setattr(ServiceClient, "_request_once", fake_request_once)
    client = ServiceClient("127.0.0.1", 9999, sleep=sleeps.append, **kwargs)
    return client, sleeps, calls


OK = (200, {}, {"state": "done"})


class TestConnectionRetries:
    def test_connection_errors_retry_with_deterministic_backoff(
        self, monkeypatch
    ):
        client, sleeps, calls = scripted_client(
            monkeypatch,
            [ConnectionRefusedError(), ConnectionRefusedError(), OK],
        )
        assert client.request("GET", "/v1/health") == {"state": "done"}
        assert len(calls) == 3
        policy = connect_retry_policy()
        identity = "127.0.0.1:9999:GET:/v1/health"
        assert sleeps == [
            policy.delay_s(identity, 1),
            policy.delay_s(identity, 2),
        ]
        # The schedule is pure arithmetic: a second client replays it.
        _, sleeps2, _ = scripted_client(
            monkeypatch,
            [ConnectionRefusedError(), ConnectionRefusedError(), OK],
        )
        client2 = ServiceClient("127.0.0.1", 9999, sleep=sleeps2.append)
        client2.request("GET", "/v1/health")
        assert sleeps2 == sleeps

    def test_exhausted_retries_reraise_the_os_error(self, monkeypatch):
        client, sleeps, calls = scripted_client(
            monkeypatch, [ConnectionRefusedError()] * 4
        )
        with pytest.raises(ConnectionRefusedError):
            client.request("GET", "/v1/health")
        assert len(calls) == connect_retry_policy().max_attempts
        assert len(sleeps) == connect_retry_policy().max_attempts - 1

    def test_custom_policy_bounds_attempts(self, monkeypatch):
        client, _, calls = scripted_client(
            monkeypatch,
            [ConnectionResetError()] * 2,
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.01,
                              max_delay_s=0.1),
        )
        with pytest.raises(ConnectionResetError):
            client.request("GET", "/v1/health")
        assert len(calls) == 2

    def test_http_errors_are_not_retried(self, monkeypatch):
        client, sleeps, calls = scripted_client(
            monkeypatch, [(404, {}, {"error": "no such job"})]
        )
        with pytest.raises(ServiceError) as excinfo:
            client.request("GET", "/v1/jobs/zzz")
        assert excinfo.value.status == 404
        assert len(calls) == 1 and sleeps == []


class TestServiceError:
    def test_carries_reason_and_retry_after(self, monkeypatch):
        client, _, _ = scripted_client(
            monkeypatch,
            [(503, {"retry-after": "5"},
              {"error": "draining", "reason": "draining"})],
            busy_retries=0,
        )
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"kind": "suite"})
        error = excinfo.value
        assert error.status == 503
        assert error.reason == "draining"
        assert error.retry_after_s == 5.0
        assert str(error) == "HTTP 503: draining"

    def test_unparseable_retry_after_is_none(self, monkeypatch):
        client, _, _ = scripted_client(
            monkeypatch, [(429, {"retry-after": "soon"}, {"error": "busy"})],
        )
        with pytest.raises(ServiceError) as excinfo:
            client.request("GET", "/v1/jobs")
        assert excinfo.value.retry_after_s is None


class TestSubmitHonorsRetryAfter:
    BUSY = (429, {"retry-after": "2"},
            {"error": "quota", "reason": "quota_pending"})

    def test_sleeps_the_hint_then_succeeds(self, monkeypatch):
        client, sleeps, calls = scripted_client(
            monkeypatch, [self.BUSY, (202, {}, {"job_id": "abc"})]
        )
        assert client.submit({"kind": "suite"}) == {"job_id": "abc"}
        assert sleeps == [2.0]
        assert [m for m, _ in calls] == ["POST", "POST"]

    def test_hint_is_capped_at_max_retry_after(self, monkeypatch):
        huge = (503, {"retry-after": "3600"}, {"error": "draining",
                                               "reason": "draining"})
        client, sleeps, _ = scripted_client(
            monkeypatch, [huge, OK], max_retry_after_s=1.5
        )
        client.submit({"kind": "suite"})
        assert sleeps == [1.5]

    def test_busy_retries_bound_the_loop(self, monkeypatch):
        client, sleeps, calls = scripted_client(
            monkeypatch, [self.BUSY] * 3, busy_retries=2
        )
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"kind": "suite"})
        assert excinfo.value.reason == "quota_pending"
        assert len(calls) == 3 and len(sleeps) == 2

    def test_busy_without_hint_raises_immediately(self, monkeypatch):
        client, sleeps, _ = scripted_client(
            monkeypatch, [(503, {}, {"error": "draining"})]
        )
        with pytest.raises(ServiceError):
            client.submit({"kind": "suite"})
        assert sleeps == []

    def test_plain_errors_never_loop(self, monkeypatch):
        client, sleeps, calls = scripted_client(
            monkeypatch, [(400, {}, {"error": "bad body"})]
        )
        with pytest.raises(ServiceError):
            client.submit({"kind": "nope"})
        assert len(calls) == 1 and sleeps == []


class TestPollingBackoff:
    def test_wait_backs_off_geometrically(self, monkeypatch):
        pending = (200, {}, {"state": "pending"})
        client, sleeps, _ = scripted_client(
            monkeypatch, [pending] * 4 + [OK]
        )
        payload = client.wait("ab" * 32, poll_s=0.05, max_poll_s=1.0)
        assert payload["state"] == "done"
        assert sleeps == pytest.approx([0.05, 0.08, 0.128, 0.2048])

    def test_wait_interval_is_capped(self, monkeypatch):
        pending = (200, {}, {"state": "running"})
        client, sleeps, _ = scripted_client(
            monkeypatch, [pending] * 6 + [OK]
        )
        client.wait("ab" * 32, poll_s=0.4, max_poll_s=0.5)
        assert sleeps == pytest.approx([0.4] + [0.5] * 5)

    def test_wait_times_out(self, monkeypatch):
        pending = (200, {}, {"state": "pending"})
        client, _, _ = scripted_client(monkeypatch, [pending] * 2)
        clock = iter([0.0, 10.0])
        monkeypatch.setattr(
            "repro.service.client.time.monotonic", lambda: next(clock)
        )
        with pytest.raises(TimeoutError, match="still 'pending'"):
            client.wait("ab" * 32, timeout_s=5.0)

    def test_wait_ready_retries_until_healthy(self, monkeypatch):
        client, sleeps, _ = scripted_client(
            monkeypatch,
            [ConnectionRefusedError(),
             (503, {}, {"error": "starting"}),
             (200, {}, {"status": "ready"})],
        )
        # Each refused *connection* itself burns the transport's retry
        # budget first, so feed a generous script via a 1-attempt policy.
        client.retry = RetryPolicy(max_attempts=1, base_delay_s=0.01,
                                   max_delay_s=0.1)
        assert client.wait_ready()["status"] == "ready"
        assert sleeps == pytest.approx([0.05, 0.08])

    def test_wait_ready_reraises_past_deadline(self, monkeypatch):
        client, _, _ = scripted_client(
            monkeypatch, [(503, {}, {"error": "starting"})] * 2
        )
        clock = iter([0.0, 10.0])
        monkeypatch.setattr(
            "repro.service.client.time.monotonic", lambda: next(clock)
        )
        with pytest.raises(ServiceError):
            client.wait_ready(timeout_s=5.0)
