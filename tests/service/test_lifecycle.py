"""Tests for the service lifecycle layer (DESIGN.md §5k).

The resilience acceptance properties live here: graceful drain that
loses zero jobs (bounce, checkpoint, journal, resume byte-identically),
deadline budgets propagated into the engine and enforced on both sides
of execution, the per-(tenant, kind) circuit breaker, and the worker
watchdog with its epoch fence.  Everything runs on a logical clock —
no sleeps, no wall-clock flake.
"""

import json

import pytest

import repro.service.app as app_module
from repro.engine.executor import run_engine
from repro.service.app import ServiceApp
from repro.service.lifecycle import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    retry_after_header,
)
from repro.service.requests import DEFAULT_TENANT
from repro.service.spool import DONE, FAILED, PENDING

SUITE = {"kind": "suite", "suite": {"ids": ["table2"]}}

KEY = ("public", "suite")


def submit(app, body=SUITE, **extra):
    response = app.handle("POST", "/v1/jobs", json.dumps({**body, **extra}).encode())
    return response, json.loads(response.body)


@pytest.fixture
def clocked(tmp_path):
    """(app, now) — a service app driven entirely by a logical clock."""
    now = [0.0]
    app = ServiceApp(root=tmp_path / "cache", clock=lambda: now[0])
    return app, now


class TestCircuitBreaker:
    def test_closed_admits(self):
        breaker = CircuitBreaker()
        decision = breaker.admit(KEY, now=0.0)
        assert decision.allowed and decision.state == BREAKER_CLOSED

    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0)
        assert breaker.record_failure(KEY, now=0.0) is None
        assert breaker.record_failure(KEY, now=1.0) is None
        assert breaker.record_failure(KEY, now=2.0) == "opened"
        assert breaker.state(KEY) == BREAKER_OPEN

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(KEY, now=0.0)
        breaker.record_success(KEY)
        assert breaker.record_failure(KEY, now=1.0) is None  # streak restarted
        assert breaker.state(KEY) == BREAKER_CLOSED

    def test_open_fast_fails_with_remaining_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=10.0)
        breaker.record_failure(KEY, now=0.0)
        decision = breaker.admit(KEY, now=4.0)
        assert not decision.allowed
        assert decision.state == BREAKER_OPEN
        assert decision.retry_after_s == pytest.approx(6.0)

    def test_cooldown_elapsed_admits_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=10.0)
        breaker.record_failure(KEY, now=0.0)
        probe = breaker.admit(KEY, now=11.0)
        assert probe.allowed and probe.event == "probe"
        assert probe.state == BREAKER_HALF_OPEN
        # While the probe is out, everything else still bounces.
        follower = breaker.admit(KEY, now=11.5)
        assert not follower.allowed and follower.state == BREAKER_HALF_OPEN

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=10.0)
        breaker.record_failure(KEY, now=0.0)
        breaker.admit(KEY, now=11.0)
        assert breaker.record_success(KEY) == "closed"
        assert breaker.admit(KEY, now=12.0).allowed

    def test_probe_failure_reopens_immediately(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0)
        for t in range(3):
            breaker.record_failure(KEY, now=float(t))
        breaker.admit(KEY, now=13.0)  # half-open probe goes out
        assert breaker.record_failure(KEY, now=14.0) == "opened"
        assert not breaker.admit(KEY, now=15.0).allowed

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure(KEY, now=0.0)
        assert breaker.admit(("public", "sweep"), now=1.0).allowed
        assert not breaker.admit(KEY, now=1.0).allowed

    def test_snapshot_lists_only_interesting_slots(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.admit(KEY, now=0.0)  # clean slot: not listed
        breaker.record_failure(("acme", "suite"), now=0.0)
        snapshot = breaker.snapshot()
        assert list(snapshot) == ["acme/suite"]
        assert snapshot["acme/suite"]["consecutive_failures"] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown_s"):
            CircuitBreaker(cooldown_s=0.0)

    def test_retry_after_header_rounds_up_to_at_least_one(self):
        assert retry_after_header(0.2) == (("Retry-After", "1"),)
        assert retry_after_header(4.3) == (("Retry-After", "5"),)


class TestDeadlines:
    def test_deadline_is_excluded_from_the_job_id(self, clocked):
        app, _ = clocked
        _, with_deadline = submit(app, deadline_s=60.0)
        app.queue.clear()
        other = ServiceApp(root=app.root.parent / "other")
        _, without = submit(other)
        assert with_deadline["job_id"] == without["job_id"]

    def test_bad_deadline_is_400(self, clocked):
        app, _ = clocked
        for bad in (0, -5, "soon", True, float("nan")):
            response, payload = submit(app, deadline_s=bad)
            assert response.status == 400, bad
            assert payload["reason"] == "bad_request"

    def test_status_reports_remaining_budget(self, clocked):
        app, now = clocked
        _, payload = submit(app, deadline_s=60.0)
        now[0] = 15.0
        status = json.loads(
            app.handle("GET", f"/v1/jobs/{payload['job_id']}", b"").body
        )
        assert status["deadline_s"] == 60.0
        assert status["deadline_remaining_s"] == pytest.approx(45.0)
        assert app.profile.counters.get("deadline", "admitted") == 1.0

    def test_expired_in_queue_fails_without_the_engine(self, clocked, monkeypatch):
        app, now = clocked

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("engine ran for an already-dead job")

        monkeypatch.setattr(app_module, "run_engine", forbidden)
        _, payload = submit(app, deadline_s=5.0)
        now[0] = 10.0
        assert app.run_pending(1, epoch=app.worker_epoch) == 1
        record = app.spool.get(DEFAULT_TENANT, payload["job_id"])
        assert record.state == FAILED
        assert record.error.startswith("timeout")
        assert app.profile.counters.get("deadline", "expired") == 1.0

    def test_remaining_budget_propagates_as_engine_timeout(
        self, clocked, monkeypatch
    ):
        app, now = clocked
        seen = {}

        def spying(*args, **kwargs):
            seen["timeout_s"] = kwargs.get("timeout_s")
            return run_engine(*args, **kwargs)

        monkeypatch.setattr(app_module, "run_engine", spying)
        _, payload = submit(app, deadline_s=60.0)
        now[0] = 20.0
        app.run_pending(1, epoch=app.worker_epoch)
        assert seen["timeout_s"] == pytest.approx(40.0)
        assert app.spool.get(DEFAULT_TENANT, payload["job_id"]).state == DONE

    def test_overrun_fails_as_timeout_and_skips_the_breaker(
        self, clocked, monkeypatch
    ):
        app, now = clocked

        def slow(*args, **kwargs):
            now[0] += 100.0  # the job ran long past its budget
            return run_engine(*args, **kwargs)

        monkeypatch.setattr(app_module, "run_engine", slow)
        _, payload = submit(app, deadline_s=30.0)
        app.run_pending(1, epoch=app.worker_epoch)
        record = app.spool.get(DEFAULT_TENANT, payload["job_id"])
        assert record.state == FAILED
        assert "exceeded" in record.error
        assert app.profile.counters.get("deadline", "exceeded") == 1.0
        # A lapsed client budget says nothing about builder health.
        assert app.profile.counters.get("breaker", "failures") == 0.0
        assert app.breaker.state(KEY) == BREAKER_CLOSED


class TestBreakerInApp:
    @pytest.fixture
    def tripping(self, tmp_path):
        now = [0.0]
        app = ServiceApp(
            root=tmp_path / "cache",
            clock=lambda: now[0],
            breaker=CircuitBreaker(failure_threshold=2, cooldown_s=30.0),
        )
        return app, now

    def _fail_engine(self, monkeypatch):
        def failing(*args, **kwargs):
            raise RuntimeError("builder exploded")

        monkeypatch.setattr(app_module, "run_engine", failing)

    def test_consecutive_failures_open_and_fast_fail(self, tripping, monkeypatch):
        app, now = tripping
        self._fail_engine(monkeypatch)
        for i in range(2):
            _, payload = submit(app, tag=f"boom-{i}")
            app.run_pending(1, epoch=app.worker_epoch)
        assert app.profile.counters.get("breaker", "opened") == 1.0
        response, payload = submit(app, tag="doomed")
        assert response.status == 503
        assert payload["reason"] == "breaker_open"
        assert any(name == "Retry-After" for name, _ in response.headers)
        assert app.profile.counters.get("breaker", "fast_fails") == 1.0
        assert len(app.queue) == 0  # the bounced job was never spooled

    def test_probe_after_cooldown_closes_on_success(self, tripping, monkeypatch):
        app, now = tripping
        self._fail_engine(monkeypatch)
        for i in range(2):
            submit(app, tag=f"boom-{i}")
            app.run_pending(1, epoch=app.worker_epoch)
        monkeypatch.setattr(app_module, "run_engine", run_engine)  # healed
        now[0] = 31.0
        response, payload = submit(app, tag="probe")
        assert response.status == 202  # the half-open probe is admitted
        assert app.profile.counters.get("breaker", "probes") == 1.0
        app.run_pending(1, epoch=app.worker_epoch)
        assert app.profile.counters.get("breaker", "closed") == 1.0
        assert submit(app, tag="after")[0].status == 202

    def test_hits_and_pending_twins_bypass_an_open_breaker(
        self, tripping, monkeypatch
    ):
        app, now = tripping
        _, done = submit(app, tag="good")
        app.run_pending(1, epoch=app.worker_epoch)
        self._fail_engine(monkeypatch)
        for i in range(2):
            submit(app, tag=f"boom-{i}")
            app.run_pending(1, epoch=app.worker_epoch)
        # The breaker is open, but completed work is already paid for.
        response, payload = submit(app, tag="good")
        assert response.status == 200
        assert payload["cache"] == "hit"


class TestDrain:
    def test_draining_bounces_submissions_with_retry_after(self, clocked):
        app, _ = clocked
        app.begin_drain("test")
        response, payload = submit(app)
        assert response.status == 503
        assert payload["reason"] == "draining"
        assert ("Retry-After", "5") in response.headers
        assert app.profile.counters.get("drain", "rejected") == 1.0

    def test_reads_still_work_while_draining(self, clocked):
        app, _ = clocked
        _, payload = submit(app)
        app.run_pending(1, epoch=app.worker_epoch)
        app.begin_drain("test")
        status = app.handle("GET", f"/v1/jobs/{payload['job_id']}", b"")
        result = app.handle("GET", f"/v1/jobs/{payload['job_id']}/result", b"")
        assert status.status == 200 and result.status == 200

    def test_drain_journals_a_record(self, clocked):
        app, now = clocked
        now[0] = 42.0
        outcome = app.drain(timeout_s=0.0, reason="test")
        assert outcome["journaled"]
        journal = app.last_drain()
        assert journal["reason"] == "test"
        assert journal["drained_at"] == 42.0
        assert journal["checkpointed"] == []
        assert app.profile.counters.get("drain", "begun") == 1.0
        assert app.profile.counters.get("drain", "completed") == 1.0

    def test_drain_timeout_checkpoints_the_running_job(self, clocked):
        app, _ = clocked
        _, payload = submit(app)
        claimed = app.next_pending()
        app.spool.mark_running(app.spool.get(*claimed))
        app.running_job = claimed  # a worker is mid-job as the signal lands
        epoch_before = app.worker_epoch
        outcome = app.drain(timeout_s=0.0, reason="test")
        assert outcome["checkpointed"] == [payload["job_id"]]
        record = app.spool.get(DEFAULT_TENANT, payload["job_id"])
        assert record.state == PENDING
        assert app.worker_epoch == epoch_before + 1  # the late write is fenced

    def test_restart_resumes_checkpointed_jobs_byte_identically(self, tmp_path):
        now = [0.0]
        app = ServiceApp(root=tmp_path / "cache", clock=lambda: now[0])
        _, finished = submit(app)
        app.run_pending(1, epoch=app.worker_epoch)
        _, interrupted = submit(app, tag="cut-short")
        claimed = app.next_pending()
        app.spool.mark_running(app.spool.get(*claimed))
        app.running_job = claimed
        app.drain(timeout_s=0.0, reason="test")

        restarted = ServiceApp(root=tmp_path / "cache", clock=lambda: now[0])
        resumed = restarted.recover()
        assert [r.job_id for r in resumed] == [interrupted["job_id"]]
        assert restarted.profile.counters.get("drain", "resumed") == 1.0
        restarted.run_pending(epoch=restarted.worker_epoch)

        clean = ServiceApp(root=tmp_path / "clean", clock=lambda: now[0])
        submit(clean)
        submit(clean, tag="cut-short")
        clean.run_pending(epoch=clean.worker_epoch)
        for job_id in (finished["job_id"], interrupted["job_id"]):
            ours = restarted.handle("GET", f"/v1/jobs/{job_id}/result", b"")
            theirs = clean.handle("GET", f"/v1/jobs/{job_id}/result", b"")
            assert ours.status == theirs.status == 200
            assert ours.body == theirs.body

    def test_burst_drain_loses_zero_jobs(self, tmp_path):
        """A drain mid-burst: finished jobs stay done, queued jobs stay
        pending, and the restart finishes every one of them."""
        now = [0.0]
        app = ServiceApp(root=tmp_path / "cache", clock=lambda: now[0])
        ids = [submit(app, tag=f"burst-{i}")[1]["job_id"] for i in range(10)]
        app.run_pending(3, epoch=app.worker_epoch)  # burst partially served
        app.drain(timeout_s=0.0, reason="test")
        restarted = ServiceApp(root=tmp_path / "cache", clock=lambda: now[0])
        assert len(restarted.recover()) == 7
        restarted.run_pending(epoch=restarted.worker_epoch)
        states = [restarted.spool.get(DEFAULT_TENANT, j).state for j in ids]
        assert states == [DONE] * 10

    def test_drain_is_idempotent(self, clocked):
        app, _ = clocked
        app.begin_drain("first")
        app.begin_drain("second")
        assert app.drain_reason == "first"
        assert app.profile.counters.get("drain", "begun") == 1.0


class TestWatchdog:
    def test_fresh_heartbeat_is_quiet(self, clocked):
        app, now = clocked
        now[0] = app.stall_timeout_s  # exactly at the limit: not stalled
        assert app.watchdog_check() is None

    def test_stall_requeues_and_fences(self, clocked):
        app, now = clocked
        _, payload = submit(app)
        stale_epoch = app.worker_epoch
        claimed = app.next_pending()
        app.spool.mark_running(app.spool.get(*claimed))
        app.running_job = claimed  # the worker claimed it, then wedged
        now[0] = app.stall_timeout_s + 1.0
        event = app.watchdog_check()
        assert event["requeued"] == [payload["job_id"]]
        assert event["epoch"] == stale_epoch + 1
        assert app.queue[0] == claimed  # requeued at the *front*
        assert app.spool.get(*claimed).state == PENDING
        # The wedged worker finally wakes: its write is discarded.
        assert app.run_one(*claimed, epoch=stale_epoch) is None
        assert app.profile.counters.get("watchdog", "fenced") == 1.0
        assert app.spool.get(*claimed).state == PENDING
        # The fresh epoch completes the job for real.
        assert app.run_pending(1, epoch=app.worker_epoch) == 1
        assert app.spool.get(*claimed).state == DONE

    def test_mid_execution_fence_discards_the_stale_result(
        self, clocked, monkeypatch
    ):
        """The watchdog fires *while* the old worker is inside the
        engine: the finished result must be discarded, not journaled."""
        app, now = clocked
        _, payload = submit(app)
        stale_epoch = app.worker_epoch

        def wedged(*args, **kwargs):
            now[0] = app.stall_timeout_s + 5.0
            assert app.watchdog_check() is not None  # fires mid-job
            return run_engine(*args, **kwargs)

        monkeypatch.setattr(app_module, "run_engine", wedged)
        claimed = (DEFAULT_TENANT, payload["job_id"])
        assert app.run_one(*claimed, epoch=stale_epoch) is None
        assert app.spool.get(*claimed).state == PENDING  # not overwritten
        assert app.profile.counters.get("watchdog", "fenced") == 1.0

    def test_watchdog_defers_to_drain(self, clocked):
        app, now = clocked
        app.begin_drain("test")
        now[0] = app.stall_timeout_s * 10
        assert app.watchdog_check() is None

    def test_heartbeat_fault_error_crashes_the_loop_body(self, tmp_path):
        from repro.faults.inject import FaultAction, FaultInjector

        app = ServiceApp(
            root=tmp_path / "cache",
            injector=FaultInjector(actions=(
                FaultAction(site="worker_heartbeat", exp_id="worker",
                            kind="error"),
            )),
        )
        with pytest.raises(RuntimeError, match="injected worker fault"):
            app.run_pending(1, epoch=app.worker_epoch)
        # The action fires once; the restarted loop beats on.
        assert app.run_pending(1, epoch=app.worker_epoch) == 0
        assert app.profile.counters.get("watchdog", "beats") == 2.0


class TestHealthAndMetrics:
    def test_health_states_are_truthful(self, clocked):
        app, _ = clocked
        assert json.loads(app.health().body)["status"] == "ready"
        app.degraded = True
        assert json.loads(app.health().body)["status"] == "degraded"
        app.begin_drain("test")  # draining outranks degraded
        assert json.loads(app.health().body)["status"] == "draining"

    def test_health_exposes_breakers_and_worker(self, clocked):
        app, now = clocked
        app.breaker.record_failure(KEY, now=0.0)
        now[0] = 7.0
        payload = json.loads(app.health().body)
        assert payload["breakers"] == {
            "public/suite": {"state": "closed", "consecutive_failures": 1}
        }
        assert payload["worker"] == {"epoch": 0, "heartbeat_age_s": 7.0}

    def test_metrics_export_the_lifecycle_surface_from_zero(self, clocked):
        app, _ = clocked
        text = app.metrics().body.decode()
        for needle in (
            'component="drain",counter="begun"} 0.0',
            'component="breaker",counter="opened"} 0.0',
            'component="watchdog",counter="requeues"} 0.0',
            'component="deadline",counter="exceeded"} 0.0',
        ):
            assert needle in text

    def test_metrics_reflect_a_drain(self, clocked):
        app, _ = clocked
        app.drain(timeout_s=0.0, reason="test")
        text = app.metrics().body.decode()
        assert 'component="drain",counter="begun"} 1.0' in text
        assert 'component="drain",counter="completed"} 1.0' in text
