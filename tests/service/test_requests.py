"""Tests for canonical requests and deterministic job ids."""

import pytest

from repro.service.requests import (
    RequestError,
    request_bytes,
    request_job_id,
    validate_request,
)


class TestValidation:
    def test_minimal_suite(self):
        request = validate_request({"kind": "suite"})
        assert request["kind"] == "suite"
        assert request["tenant"] == "public"
        assert request["suite"] == {"ids": []}
        assert request["tag"] == ""

    def test_suite_subset_preserves_order(self):
        request = validate_request(
            {"kind": "suite", "suite": {"ids": ["figure6", "table2"]}}
        )
        assert request["suite"]["ids"] == ["figure6", "table2"]

    def test_sweep_defaults_made_explicit(self):
        request = validate_request({"kind": "sweep"})
        assert request["sweep"] == {
            "anchor": "sx4",
            "axes": [],
            "include_presets": False,
            "traces": [],
            "dilation": 1.0,
        }

    def test_non_object_body_rejected(self):
        with pytest.raises(RequestError, match="JSON object"):
            validate_request([1, 2, 3])

    def test_unknown_kind_rejected(self):
        with pytest.raises(RequestError, match="unknown job kind"):
            validate_request({"kind": "teleport"})

    def test_unknown_experiment_rejected_before_job_exists(self):
        with pytest.raises(RequestError, match="unknown experiment"):
            validate_request({"kind": "suite", "suite": {"ids": ["nope"]}})

    def test_unknown_trace_rejected(self):
        with pytest.raises(RequestError, match="unknown trace"):
            validate_request({"kind": "sweep", "sweep": {"traces": ["nope"]}})

    def test_bad_axis_shape_rejected(self):
        with pytest.raises(RequestError, match="axis"):
            validate_request({"kind": "sweep", "sweep": {"axes": [{"values": [1]}]}})

    def test_unknown_axis_parameter_rejected(self):
        with pytest.raises(RequestError, match="parameter"):
            validate_request(
                {"kind": "sweep",
                 "sweep": {"axes": [{"parameter": "warp.factor", "values": [9.0]}]}}
            )

    def test_invalid_fault_plan_rejected(self):
        with pytest.raises(RequestError, match="fault plan"):
            validate_request(
                {"kind": "suite", "suite": {"fault_plan": {"actions": "nope"}}}
            )


class TestJobIds:
    def test_identical_bodies_same_id(self):
        a = validate_request({"kind": "suite", "suite": {"ids": ["table2"]}})
        b = validate_request({"kind": "suite", "suite": {"ids": ["table2"]}})
        assert request_job_id(a) == request_job_id(b)

    def test_sparse_and_explicit_bodies_collide(self):
        # Filling in a default by hand is the same request.
        sparse = validate_request({"kind": "sweep"})
        explicit = validate_request(
            {"kind": "sweep",
             "sweep": {"anchor": "sx4", "axes": [], "include_presets": False,
                       "traces": [], "dilation": 1.0}}
        )
        assert request_job_id(sparse) == request_job_id(explicit)

    def test_different_work_different_id(self):
        a = validate_request({"kind": "suite", "suite": {"ids": ["table2"]}})
        b = validate_request({"kind": "suite", "suite": {"ids": ["figure6"]}})
        assert request_job_id(a) != request_job_id(b)

    def test_id_order_is_part_of_identity(self):
        a = validate_request({"kind": "suite", "suite": {"ids": ["table2", "figure6"]}})
        b = validate_request({"kind": "suite", "suite": {"ids": ["figure6", "table2"]}})
        assert request_job_id(a) != request_job_id(b)

    def test_tag_varies_id_without_changing_work(self):
        a = validate_request({"kind": "suite", "tag": "run-1"})
        b = validate_request({"kind": "suite", "tag": "run-2"})
        assert a["suite"] == b["suite"]
        assert request_job_id(a) != request_job_id(b)

    def test_id_is_a_valid_chunk_key(self):
        job_id = request_job_id(validate_request({"kind": "suite"}))
        assert len(job_id) == 64
        assert set(job_id) <= set("0123456789abcdef")

    def test_canonical_bytes_are_sorted_and_compact(self):
        raw = request_bytes(validate_request({"kind": "suite"}))
        assert b" " not in raw
        assert raw == request_bytes(validate_request({"kind": "suite"}))
