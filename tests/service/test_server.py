"""Tests for the asyncio HTTP front end, over real sockets.

One server per fixture on an OS-assigned port; the blocking
:class:`ServiceClient` runs in the test thread while the event loop
runs in a background thread — the same split a real deployment has.
"""

import asyncio
import threading

import pytest

from repro.service.app import ServiceApp
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import serve

SUITE_BODY = {"kind": "suite", "suite": {"ids": ["table2"]}}


class _Server:
    """A served app on 127.0.0.1:<ephemeral>, stoppable from the test."""

    def __init__(self, app: ServiceApp, paused: bool = False) -> None:
        self.app = app
        self.paused = paused
        self.loop = asyncio.new_event_loop()
        self.task = None
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.task = self.loop.create_task(
            serve(self.app, host="127.0.0.1", port=0, paused=self.paused,
                  ready_file=self.ready_file)
        )
        try:
            self.loop.run_until_complete(self.task)
        except asyncio.CancelledError:
            pass
        finally:
            self.loop.close()

    def start(self, tmp_path) -> ServiceClient:
        import json
        import time

        self.ready_file = tmp_path / "ready.json"
        self.ready_file.parent.mkdir(parents=True, exist_ok=True)
        self.thread.start()
        deadline = time.monotonic() + 10.0
        while not self.ready_file.exists():
            if time.monotonic() > deadline:  # pragma: no cover
                raise TimeoutError("server never became ready")
            time.sleep(0.01)
        bound = json.loads(self.ready_file.read_text())
        return ServiceClient(host=bound["host"], port=bound["port"])

    def stop(self) -> None:
        if self.task is not None:
            self.loop.call_soon_threadsafe(self.task.cancel)
        self.thread.join(timeout=10.0)


@pytest.fixture
def served(tmp_path):
    server = _Server(ServiceApp(root=tmp_path / "cache"))
    client = server.start(tmp_path)
    yield server.app, client
    server.stop()


class TestOverSockets:
    def test_health_and_metrics(self, served):
        _, client = served
        assert client.health()["status"] == "ready"
        assert "repro_perfmon_counter" in client.metrics()

    def test_submit_wait_result_roundtrip(self, served):
        _, client = served
        submitted = client.submit(SUITE_BODY)
        assert submitted["cache"] == "miss"
        final = client.wait(submitted["job_id"], timeout_s=60)
        assert final["state"] == "done"
        raw = client.result_bytes(submitted["job_id"])
        assert b'"table2"' in raw

    def test_second_submission_hits_byte_identical(self, served):
        _, client = served
        first = client.submit(SUITE_BODY)
        client.wait(first["job_id"], timeout_s=60)
        bytes_1 = client.result_bytes(first["job_id"])
        second = client.submit(SUITE_BODY)
        assert second["cache"] == "hit"
        assert second["job_id"] == first["job_id"]
        assert client.result_bytes(first["job_id"]) == bytes_1

    def test_error_statuses_raise(self, served):
        _, client = served
        with pytest.raises(ServiceError) as err:
            client.submit({"kind": "nope"})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.status("f" * 64)
        assert err.value.status == 404

    def test_malformed_request_line_is_400(self, served):
        import socket

        _, client = served
        with socket.create_connection((client.host, client.port)) as sock:
            sock.sendall(b"garbage\r\n\r\n")
            response = sock.recv(4096)
        assert response.startswith(b"HTTP/1.1 400")


class TestPausedRestart:
    def test_paused_server_queues_without_executing(self, tmp_path):
        server = _Server(ServiceApp(root=tmp_path / "cache"), paused=True)
        client = server.start(tmp_path)
        try:
            submitted = client.submit(SUITE_BODY)
            assert submitted["state"] == "pending"
            status = client.status(submitted["job_id"])
            assert status["state"] == "pending"
        finally:
            server.stop()

        # "Restart": a fresh process-equivalent over the same root
        # resumes the pending job under the same id.
        restarted = _Server(ServiceApp(root=tmp_path / "cache"))
        client_2 = restarted.start(tmp_path / "restart-stage")
        try:
            final = client_2.wait(submitted["job_id"], timeout_s=60)
            assert final["state"] == "done"
        finally:
            restarted.stop()
