"""Tests for the durable ChunkStore-backed job spool."""

import pytest

from repro.engine.store import ChunkStore
from repro.service.spool import DONE, FAILED, PENDING, RUNNING, JobRecord, JobSpool


def _record(job_id=None, tenant="public", state=PENDING, submitted_at=1.0):
    return JobRecord(
        job_id=job_id or ("ab" * 32),
        tenant=tenant,
        request={"kind": "suite", "suite": {"ids": []}},
        state=state,
        submitted_at=submitted_at,
    )


class TestJournal:
    def test_round_trip(self, tmp_path):
        spool = JobSpool(tmp_path)
        record = _record()
        spool.put(record)
        assert spool.get("public", record.job_id) == record

    def test_missing_is_none(self, tmp_path):
        assert JobSpool(tmp_path).get("public", "cd" * 32) is None

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError, match="unknown job state"):
            _record(state="paused")

    def test_records_ordered_by_submission(self, tmp_path):
        spool = JobSpool(tmp_path)
        spool.put(_record(job_id="bb" * 32, submitted_at=2.0))
        spool.put(_record(job_id="aa" * 32, submitted_at=1.0))
        assert [r.job_id for r in spool.records()] == ["aa" * 32, "bb" * 32]

    def test_tenants_are_isolated_namespaces(self, tmp_path):
        spool = JobSpool(tmp_path)
        spool.put(_record(tenant="public"))
        spool.put(_record(tenant="team-a"))
        assert len(spool.records("public")) == 1
        assert len(spool.records("team-a")) == 1
        assert spool.get("team-a", "ab" * 32).tenant == "team-a"

    def test_foreign_chunks_ignored(self, tmp_path):
        # Non-spool namespaces in the same ChunkStore are invisible.
        ChunkStore(tmp_path).put("explore-grid", "ef" * 32, {"x": 1})
        spool = JobSpool(tmp_path)
        spool.put(_record())
        assert len(spool.records()) == 1


class TestTransitions:
    def test_running_increments_attempts(self, tmp_path):
        spool = JobSpool(tmp_path)
        record = _record()
        spool.put(record)
        running = spool.mark_running(record)
        assert running.state == RUNNING
        assert running.attempts == 1
        assert spool.get("public", record.job_id).state == RUNNING

    def test_done_carries_result_and_ttl(self, tmp_path):
        spool = JobSpool(tmp_path)
        record = spool.mark_running(_record())
        done = spool.mark_done(
            record, result={"answer": 42}, meta={"wall_s": 0.1},
            now=100.0, ttl_s=50.0,
        )
        assert done.state == DONE
        assert done.expires_at == 150.0
        stored = spool.get("public", record.job_id)
        assert stored.result == {"answer": 42}
        assert stored.meta["wall_s"] == 0.1

    def test_failed_carries_error(self, tmp_path):
        spool = JobSpool(tmp_path)
        failed = spool.mark_failed(
            _record(), error="boom", meta={}, now=1.0, ttl_s=None
        )
        assert failed.state == FAILED
        assert failed.expires_at is None
        assert spool.get("public", failed.job_id).error == "boom"


class TestRecovery:
    def test_running_demoted_to_pending(self, tmp_path):
        spool = JobSpool(tmp_path)
        spool.put(_record(job_id="aa" * 32, state=RUNNING))
        spool.put(_record(job_id="bb" * 32, state=PENDING))
        resumed = spool.recover()
        assert sorted(r.job_id for r in resumed) == ["aa" * 32, "bb" * 32]
        assert all(r.state == PENDING for r in resumed)
        assert spool.get("public", "aa" * 32).state == PENDING

    def test_finished_jobs_not_resumed(self, tmp_path):
        spool = JobSpool(tmp_path)
        spool.mark_done(_record(), result={}, meta={}, now=1.0, ttl_s=None)
        assert spool.recover() == []

    def test_recovery_preserves_job_identity(self, tmp_path):
        # Same id, same request bytes across the simulated restart.
        spool = JobSpool(tmp_path)
        record = _record(state=RUNNING)
        spool.put(record)
        resumed = JobSpool(tmp_path).recover()[0]
        assert resumed.job_id == record.job_id
        assert resumed.request == record.request


class TestSweeping:
    def test_expired_finished_records_dropped(self, tmp_path):
        spool = JobSpool(tmp_path)
        spool.mark_done(
            _record(job_id="aa" * 32), result={}, meta={}, now=10.0, ttl_s=5.0
        )
        spool.mark_done(
            _record(job_id="bb" * 32), result={}, meta={}, now=10.0, ttl_s=500.0
        )
        swept = spool.sweep_expired(now=100.0)
        assert [r.job_id for r in swept] == ["aa" * 32]
        assert spool.get("public", "aa" * 32) is None
        assert spool.get("public", "bb" * 32) is not None

    def test_unfinished_never_swept(self, tmp_path):
        spool = JobSpool(tmp_path)
        spool.put(_record())
        assert spool.sweep_expired(now=1e18) == []

    def test_no_ttl_means_forever(self, tmp_path):
        spool = JobSpool(tmp_path)
        spool.mark_done(_record(), result={}, meta={}, now=1.0, ttl_s=None)
        assert spool.sweep_expired(now=1e18) == []

    def test_dry_run_keeps_records(self, tmp_path):
        spool = JobSpool(tmp_path)
        spool.mark_done(_record(), result={}, meta={}, now=1.0, ttl_s=1.0)
        swept = spool.sweep_expired(now=100.0, dry_run=True)
        assert len(swept) == 1
        assert spool.get("public", swept[0].job_id) is not None

    def test_clear_removes_all_tenants(self, tmp_path):
        spool = JobSpool(tmp_path)
        spool.put(_record(tenant="public"))
        spool.put(_record(tenant="team-a"))
        assert spool.clear() == 2
        assert spool.records() == []


class TestSweepResubmissionRace:
    """The TTL sweep racing a resubmission of the same digest."""

    def test_touch_on_hit_outruns_the_sweep(self, tmp_path):
        # A cache hit at t=14 refreshes the record that would have
        # expired at t=15; the sweep at t=20 must now spare it.
        spool = JobSpool(tmp_path)
        done = spool.mark_done(_record(), result={}, meta={}, now=10.0, ttl_s=5.0)
        spool.refresh_ttl(done, now=14.0, ttl_s=50.0)
        assert spool.sweep_expired(now=20.0) == []
        assert spool.get("public", done.job_id).expires_at == 64.0

    def test_refresh_is_a_noop_on_unfinished_records(self, tmp_path):
        spool = JobSpool(tmp_path)
        record = _record()
        spool.put(record)
        assert spool.refresh_ttl(record, now=5.0, ttl_s=1.0).expires_at is None
        assert spool.sweep_expired(now=1e18) == []

    def test_resubmission_after_sweep_starts_a_fresh_pending_job(self, tmp_path):
        # Sweep wins the race: the expired record is gone, and the
        # resubmission recreates the *same id* as a clean pending job.
        spool = JobSpool(tmp_path)
        done = spool.mark_done(_record(), result={"answer": 42}, meta={},
                               now=10.0, ttl_s=5.0)
        assert [r.job_id for r in spool.sweep_expired(now=100.0)] == [done.job_id]
        spool.put(_record(submitted_at=100.0))
        revived = spool.get("public", done.job_id)
        assert revived.state == PENDING
        assert revived.result is None

    def test_resubmission_demotion_shields_record_from_sweep(self, tmp_path):
        # Resubmission wins the race: the expired DONE record is demoted
        # back to PENDING for recompute before the sweep runs, and the
        # sweep must not delete the now-unfinished job out from under it.
        spool = JobSpool(tmp_path)
        done = spool.mark_done(_record(), result={}, meta={}, now=10.0, ttl_s=5.0)
        spool.mark_pending(done)
        assert spool.sweep_expired(now=100.0) == []
        assert spool.get("public", done.job_id).state == PENDING


class TestCheckpointDemotion:
    """RUNNING -> PENDING when a drain-timeout checkpoint fires mid-job."""

    def test_demotion_preserves_identity_and_attempts(self, tmp_path):
        spool = JobSpool(tmp_path)
        running = spool.mark_running(_record())
        demoted = spool.mark_pending(running)
        assert demoted.state == PENDING
        assert demoted.attempts == 1  # the aborted attempt still counts
        assert demoted.request == running.request
        assert spool.get("public", demoted.job_id).state == PENDING

    def test_demoted_job_reruns_under_the_same_id(self, tmp_path):
        spool = JobSpool(tmp_path)
        demoted = spool.mark_pending(spool.mark_running(_record()))
        rerun = spool.mark_running(demoted)
        assert rerun.job_id == demoted.job_id
        assert rerun.attempts == 2
        done = spool.mark_done(rerun, result={"ok": True}, meta={},
                               now=1.0, ttl_s=None)
        assert spool.get("public", done.job_id).state == DONE

    def test_demoted_job_survives_a_restart(self, tmp_path):
        # Checkpoint, then crash before the drain completes: recovery
        # must still surface the job exactly once, as PENDING.
        spool = JobSpool(tmp_path)
        spool.mark_pending(spool.mark_running(_record()))
        resumed = JobSpool(tmp_path).recover()
        assert [r.state for r in resumed] == [PENDING]

    def test_deadline_survives_the_demotion(self, tmp_path):
        spool = JobSpool(tmp_path)
        record = _record()
        record = JobRecord(
            job_id=record.job_id, tenant=record.tenant,
            request=record.request, state=PENDING,
            submitted_at=1.0, deadline_s=30.0,
        )
        spool.put(record)
        demoted = spool.mark_pending(spool.mark_running(record))
        assert demoted.deadline_s == 30.0
        assert demoted.deadline_at == 31.0
