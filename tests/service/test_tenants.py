"""Tests for tenant namespaces, quotas, and store isolation."""

import json

import pytest

from repro.service.tenants import Tenant, TenantRegistry, tenant_store_root


class TestTenant:
    def test_defaults(self):
        tenant = Tenant(name="public")
        assert tenant.max_pending == 32
        assert tenant.result_ttl_s == 7 * 24 * 3600.0

    @pytest.mark.parametrize(
        "name", ["", "UPPER", "has.dot", "has/slash", "-leading", "x" * 33]
    )
    def test_bad_names_rejected(self, name):
        with pytest.raises(ValueError, match="invalid tenant name"):
            Tenant(name=name)

    def test_bad_quotas_rejected(self):
        with pytest.raises(ValueError, match="quotas"):
            Tenant(name="t", max_pending=0)
        with pytest.raises(ValueError, match="result_ttl_s"):
            Tenant(name="t", result_ttl_s=0.0)

    def test_round_trip(self):
        tenant = Tenant(name="team-a", max_pending=2, result_ttl_s=None)
        assert Tenant.from_dict(tenant.to_dict()) == tenant


class TestRegistry:
    def test_public_always_present(self):
        registry = TenantRegistry()
        assert registry.get("public") is not None
        assert registry.names() == ("public",)

    def test_unknown_tenant_absent(self):
        assert TenantRegistry().get("ghost") is None

    def test_configured_tenants_join_public(self):
        registry = TenantRegistry(tenants=(Tenant(name="team-a"),))
        assert registry.names() == ("public", "team-a")

    def test_public_can_be_redefined(self):
        registry = TenantRegistry(tenants=(Tenant(name="public", max_pending=1),))
        assert registry.get("public").max_pending == 1

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps(
            {"tenants": [{"name": "team-a", "max_pending": 3}]}
        ))
        registry = TenantRegistry.load(path)
        assert registry.get("team-a").max_pending == 3


class TestStoreRoots:
    def test_roots_disjoint_per_tenant(self, tmp_path):
        a = tenant_store_root(tmp_path, "team-a")
        b = tenant_store_root(tmp_path, "team-b")
        assert a != b
        assert a.parent == b.parent == tmp_path / "tenants"

    def test_invalid_name_cannot_escape(self, tmp_path):
        with pytest.raises(ValueError, match="invalid tenant name"):
            tenant_store_root(tmp_path, "../escape")
