"""Tests for result archiving, run comparison, and the CLI."""

import json

import pytest

from repro.suite import archive
from repro.suite.results import Experiment
from repro.suite.runner import run_suite
from repro.__main__ import main as cli_main


def make_experiment(value=10.0, check_pass=True):
    exp = Experiment(exp_id="x", title="t", headers=["a"], rows=[[1]])
    exp.series["curve"] = [(1.0, value), (2.0, 2 * value)]
    exp.paper_values["anchor"] = 10.0
    exp.check("something holds", check_pass, detail="d")
    return exp


class TestArchive:
    def test_roundtrip(self, tmp_path):
        exps = [make_experiment()]
        path = archive.save_run(exps, tmp_path / "run.json")
        loaded = archive.load_run(path)
        assert len(loaded) == 1
        assert loaded[0].exp_id == "x"
        assert loaded[0].series["curve"] == [(1.0, 10.0), (2.0, 20.0)]
        assert loaded[0].checks[0].passed

    def test_real_experiment_roundtrip(self, tmp_path):
        report = run_suite(["table2", "table4"])
        path = archive.save_run(report.experiments, tmp_path / "real.json")
        loaded = archive.load_run(path)
        assert [e.exp_id for e in loaded] == ["table2", "table4"]
        assert all(e.passed for e in loaded)

    def test_json_is_plain(self, tmp_path):
        path = archive.save_run([make_experiment()], tmp_path / "r.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1
        assert payload["experiments"][0]["exp_id"] == "x"

    def test_schema_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "experiments": []}))
        with pytest.raises(ValueError):
            archive.load_run(path)

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            archive.save_run([], tmp_path / "e.json")


class TestCompareRuns:
    def test_identical_runs_have_no_drift(self):
        assert archive.compare_runs([make_experiment()], [make_experiment()]) == []

    def test_value_drift_detected(self):
        drifts = archive.compare_runs([make_experiment(10.0)], [make_experiment(11.0)])
        assert any(d.kind == "value" for d in drifts)

    def test_small_drift_within_tolerance(self):
        drifts = archive.compare_runs(
            [make_experiment(10.0)], [make_experiment(10.1)], rel_tolerance=0.02
        )
        assert drifts == []

    def test_check_regression_detected(self):
        drifts = archive.compare_runs(
            [make_experiment(check_pass=True)], [make_experiment(check_pass=False)]
        )
        assert any(d.kind == "check" for d in drifts)

    def test_missing_experiments_reported(self):
        base = [make_experiment()]
        other = Experiment(exp_id="y", title="t2")
        drifts = archive.compare_runs(base, [other])
        kinds = sorted(d.kind for d in drifts)
        assert kinds == ["missing", "missing"]  # x dropped, y new

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            archive.compare_runs([], [], rel_tolerance=-1.0)


class TestCLI:
    def test_list_command(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table7" in out and "figure8" in out

    def test_machine_command(self, capsys):
        assert cli_main(["machine"]) == 0
        out = capsys.readouterr().out
        assert "NEC SX-4/1" in out and "CRI YMP" in out

    def test_suite_single_experiment(self, capsys):
        assert cli_main(["suite", "table2", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "ALL SHAPE CHECKS PASS" in out

    def test_suite_save_and_compare(self, tmp_path, capsys):
        path = str(tmp_path / "baseline.json")
        assert cli_main(["suite", "table2", "--quiet", "--save", path]) == 0
        assert cli_main(["suite", "table2", "--quiet", "--compare", path]) == 0
        out = capsys.readouterr().out
        assert "no drifts" in out

    def test_unknown_experiment_fails(self):
        with pytest.raises(KeyError):
            cli_main(["suite", "bogus"])
