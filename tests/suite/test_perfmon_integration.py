"""End-to-end tests: suite runner ``--perfmon`` and engine job spans."""

import json

import pytest

from repro.engine.executor import execute_jobs, run_engine
from repro.engine.store import ResultStore
from repro.perfmon.collector import profile
from repro.perfmon.export import load_profile
from repro.perfmon.proginf import KERNEL_IDS
from repro.suite.runner import main as runner_main


class TestSuitePerfmonFlag:
    def test_json_payload_schema_and_host_timing(self, capsys):
        assert runner_main(["table2", "--json", "--perfmon"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1  # unchanged for existing consumers
        assert payload["schema_version"] == 2
        [exp] = payload["experiments"]
        assert exp["exp_id"] == "table2"
        assert isinstance(exp["host_elapsed_s"], float)
        assert exp["host_elapsed_s"] >= 0.0

    def test_json_embeds_perfmon_profile(self, capsys):
        assert runner_main(["table2", "--json", "--perfmon"]) == 0
        payload = json.loads(capsys.readouterr().out)
        perfmon = payload["perfmon"]
        assert set(perfmon["kernels"]) == set(KERNEL_IDS)
        span_names = {s["name"] for s in perfmon["spans"]}
        assert {"suite:run", "suite:kernels", "experiment:table2"} <= span_names
        assert "vector_unit" in perfmon["counters"]

    def test_without_perfmon_no_payload(self, capsys):
        assert runner_main(["table2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "perfmon" not in payload
        [exp] = payload["experiments"]
        assert exp["host_elapsed_s"] is not None  # host timing is always on

    def test_text_mode_appends_proginf_and_ftrace(self, capsys):
        assert runner_main(["table2", "--perfmon"]) == 0
        out = capsys.readouterr().out
        assert out.count("Program Information") == len(KERNEL_IDS)
        assert "FTRACE" in out
        assert "experiment:table2" in out

    def test_perfmon_out_writes_loadable_profile(self, tmp_path, capsys):
        target = tmp_path / "suite-profile.json"
        assert runner_main(["table2", "--json", "--perfmon-out", str(target)]) == 0
        captured = capsys.readouterr()
        assert "saved profile" in captured.err
        loaded = load_profile(target)
        assert set(loaded.kernels) == set(KERNEL_IDS)
        assert loaded.profile.meta["role"] == "suite"


class TestEngineJobSpans:
    def test_serial_execution_records_job_spans(self):
        with profile() as prof:
            results = execute_jobs(["table2"], jobs=1,
                                   cache_status={"table2": "miss"})
        [result] = results
        assert result.host_elapsed_s is not None
        assert result.host_elapsed_s >= result.elapsed_s
        [recorded] = prof.finished_spans()
        assert recorded.name == "engine:job:table2"
        assert recorded.attrs["cache"] == "miss"
        assert recorded.attrs["status"] == "ok"
        assert recorded.attrs["execute_s"] == pytest.approx(result.elapsed_s)

    def test_cache_hit_span_from_run_engine(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        run_engine(["table2"], store=store)  # warm the cache
        with profile() as prof:
            report = run_engine(["table2"], store=store)
        [result] = report.results
        assert result.source == "cache"
        assert result.host_elapsed_s is not None
        spans = {s.name: s for s in prof.finished_spans()}
        hit = spans["engine:job:table2"]
        assert hit.attrs["cache"] == "hit"
        assert hit.attrs["source"] == "cache"

    def test_no_profile_no_spans_no_crash(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        report = run_engine(["table2"], store=store)
        [result] = report.results
        assert result.experiment.passed
        assert result.host_elapsed_s is not None
