"""Round-trip stability of the suite serialization layer.

The engine's content-addressed store persists results through
:mod:`repro.suite.archive`; its byte-identity contract requires that
``experiment_to_dict`` is *idempotent across a round-trip*:
``to_dict(from_dict(to_dict(e))) == to_dict(e)``, for any experiment the
suite can produce.  These tests pin that down, property-based where the
value space is wide.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.suite.archive import (
    compare_runs,
    experiment_from_dict,
    experiment_to_dict,
    load_run,
    save_run,
)
from repro.suite.experiments import EXPERIMENTS
from repro.suite.results import Experiment, ShapeCheck

# ------------------------------------------------------------ strategies
_label = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), min_size=1, max_size=12
)
_number = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)
_cell = st.one_of(_number, _label, st.booleans(), st.none())
_point = st.tuples(
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)


@st.composite
def experiments_strategy(draw):
    n_cols = draw(st.integers(min_value=1, max_value=4))
    exp = Experiment(
        exp_id=draw(_label),
        title=draw(_label),
        headers=draw(st.lists(_label, min_size=n_cols, max_size=n_cols)),
        rows=draw(
            st.lists(
                st.lists(_cell, min_size=n_cols, max_size=n_cols), max_size=4
            )
        ),
        series=draw(
            st.dictionaries(_label, st.lists(_point, min_size=1, max_size=4),
                            max_size=3)
        ),
        paper_values=draw(
            st.dictionaries(
                st.one_of(_label, st.integers(min_value=0, max_value=64)),
                _cell,
                max_size=4,
            )
        ),
        notes=draw(_label),
    )
    for description, passed, detail in draw(
        st.lists(st.tuples(_label, st.booleans(), _label), max_size=3)
    ):
        exp.check(description, passed, detail)
    return exp


# ----------------------------------------------------------- properties
@settings(max_examples=50, deadline=None)
@given(experiments_strategy())
def test_to_dict_round_trip_is_idempotent(exp):
    once = experiment_to_dict(exp)
    again = experiment_to_dict(experiment_from_dict(once))
    assert once == again


@settings(max_examples=50, deadline=None)
@given(experiments_strategy())
def test_to_dict_is_json_stable(exp):
    """Serializing, dumping, and parsing changes nothing — no lossy
    types (tuples, numpy scalars, int keys) survive to the JSON layer."""
    payload = experiment_to_dict(exp)
    assert json.loads(json.dumps(payload)) == payload


@settings(max_examples=25, deadline=None)
@given(experiments_strategy())
def test_round_trip_preserves_verdicts(exp):
    back = experiment_from_dict(experiment_to_dict(exp))
    assert back.exp_id == exp.exp_id
    assert back.passed == exp.passed
    assert [str(c) for c in back.checks] == [str(c) for c in exp.checks]


# ---------------------------------------------------- real suite results
def test_every_real_experiment_round_trips():
    for exp_id in ("table1", "table2", "table3", "table7", "figure6", "sec4.4"):
        exp = EXPERIMENTS[exp_id]()
        once = experiment_to_dict(exp)
        assert experiment_to_dict(experiment_from_dict(once)) == once, exp_id


def test_table7_int_keyed_paper_values_round_trip():
    """Regression: int keys in paper_values must serialize exactly as the
    JSON layer will render them, or byte-identity breaks on reload."""
    exp = EXPERIMENTS["table7"]()
    assert any(isinstance(k, int) for k in exp.paper_values)
    payload = experiment_to_dict(exp)
    assert all(isinstance(k, str) for k in payload["paper_values"])
    assert json.loads(json.dumps(payload)) == payload


# ------------------------------------------------------------- archives
def test_save_load_run_round_trip(tmp_path):
    run = [EXPERIMENTS["table2"](), EXPERIMENTS["table3"]()]
    path = save_run(run, tmp_path / "run.json")
    loaded = load_run(path)
    assert [experiment_to_dict(e) for e in loaded] == [
        experiment_to_dict(e) for e in run
    ]


def test_loaded_run_compares_clean_against_itself(tmp_path):
    run = [EXPERIMENTS["figure6"]()]
    loaded = load_run(save_run(run, tmp_path / "run.json"))
    assert compare_runs(run, loaded) == []


def test_shape_check_round_trip_exact():
    check = ShapeCheck("d", False, "why")
    exp = Experiment(exp_id="x", title="t")
    exp.checks.append(check)
    back = experiment_from_dict(experiment_to_dict(exp))
    assert back.checks == [check]
