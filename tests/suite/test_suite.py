"""Tests for the suite harness: rendering, results, runner, experiments."""

import pytest

from repro.suite import experiments
from repro.suite.figures import render_ascii_chart, series_to_csv
from repro.suite.results import Experiment, ShapeCheck
from repro.suite.runner import render_experiment, run_suite
from repro.suite.tables import format_cell, render_table


class TestTables:
    def test_render_basic(self):
        out = render_table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_title(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_cell_formatting(self):
        assert format_cell(True) == "yes"
        assert format_cell(2.5) == "2.50"
        assert format_cell(1234.5) == "1,234.5"
        assert format_cell(0.0001) == "1.000e-04"
        assert format_cell("text") == "text"
        assert format_cell(0.0) == "0"

    def test_validation(self):
        with pytest.raises(ValueError):
            render_table([], [])
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])


class TestFigures:
    def test_chart_renders_all_series(self):
        out = render_ascii_chart(
            {"A": [(1, 10), (100, 50)], "B": [(1, 5), (100, 100)]},
            width=40, height=10,
        )
        assert "*" in out and "o" in out
        assert "legend" in out

    def test_log_axis_validation(self):
        with pytest.raises(ValueError):
            render_ascii_chart({"A": [(0, 1), (1, 2)]}, log_x=True)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            render_ascii_chart({"A": [(1, 1)]}, width=2)
        with pytest.raises(ValueError):
            render_ascii_chart({})
        with pytest.raises(ValueError):
            render_ascii_chart({"A": []})

    def test_csv_export(self):
        csv = series_to_csv({"A": [(1, 2.5)], "B": [(3, 4)]})
        lines = csv.splitlines()
        assert lines[0] == "series,x,y"
        assert "A,1,2.5" in lines
        assert "B,3,4" in lines
        with pytest.raises(ValueError):
            series_to_csv({})


class TestResults:
    def test_experiment_verdicts(self):
        exp = Experiment(exp_id="x", title="t")
        exp.check("ok", True)
        assert exp.passed
        exp.check("bad", False, detail="why")
        assert not exp.passed
        assert len(exp.failures) == 1
        assert "FAIL" in str(exp.failures[0])

    def test_summary_line(self):
        exp = Experiment(exp_id="x", title="t")
        exp.check("ok", True)
        assert "OK" in exp.summary_line()
        assert "[1/1" in exp.summary_line()

    def test_shape_check_str(self):
        assert str(ShapeCheck("d", True)) == "[PASS] d"
        assert str(ShapeCheck("d", False, "why")) == "[FAIL] d (why)"


class TestRunner:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_suite(["nonsense"])

    def test_single_experiment_run(self):
        report = run_suite(["table2"])
        assert len(report.experiments) == 1
        assert report.experiments[0].exp_id == "table2"
        assert report.passed

    def test_render_experiment_contains_checks(self):
        report = run_suite(["table2"])
        text = render_experiment(report.experiments[0])
        assert "[PASS]" in text
        assert "Clock Rate" in text

    def test_registry_covers_every_table_and_figure(self):
        """The deliverable: every table AND figure has a regenerator."""
        ids = set(experiments.EXPERIMENTS)
        for n in range(1, 8):
            assert f"table{n}" in ids, f"table{n} missing"
        for n in range(5, 9):
            assert f"figure{n}" in ids, f"figure{n} missing"
        # Plus the untabulated headline results.
        assert {"sec4.1", "sec4.4", "sec4.5", "sec4.6", "sec4.7.3"} <= ids


class TestFastExperiments:
    """Each cheap experiment passes its own shape checks.

    (The expensive ones — prodload, the full figure sweeps — are
    exercised by the benchmark harness; here we run the quick ones.)
    """

    @pytest.mark.parametrize("exp_id", ["table1", "table2", "table3", "table4",
                                        "sec4.1", "sec4.4", "sec4.7.3"])
    def test_experiment_passes(self, exp_id):
        exp = experiments.EXPERIMENTS[exp_id]()
        assert exp.passed, [str(c) for c in exp.failures]

    def test_table1_paper_order(self):
        exp = experiments.table1_hint_vs_radabs()
        assert exp.headers == ["Benchmark", "SUN SPARC20", "IBM RS6K 590",
                               "CRI J90", "CRI YMP"]
        assert exp.rows[0][0] == "HINT (MQUIPS)"
        assert exp.rows[1][0] == "RADABS (MFLOPS)"

    def test_table4_rows_complete(self):
        exp = experiments.table4_resolutions()
        assert len(exp.rows) == 5


class TestSectionExperiments:
    """The Section 2 and Section 3 experiments (architecture claims and
    rejected comparison suites)."""

    def test_sec2_passes(self):
        exp = experiments.sec2_architecture()
        assert exp.passed, [str(c) for c in exp.failures]
        rows = {row[0]: row[1] for row in exp.rows}
        assert rows["IXS bisection, 16 nodes"] == "128 GB/s"

    def test_sec3_passes(self):
        exp = experiments.sec3_other_benchmarks()
        assert exp.passed, [str(c) for c in exp.failures]
        names = [str(row[0]) for row in exp.rows]
        assert any("LINPACK" in n for n in names)
        assert any("NAS EP" in n for n in names)
        assert any("STREAM" in n for n in names)

    def test_registry_includes_sections(self):
        assert "sec2" in experiments.EXPERIMENTS
        assert "sec3" in experiments.EXPERIMENTS
