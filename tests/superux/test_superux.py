"""Tests for the SUPER-UX models: checkpoint/restart, NQS, SFS."""

import numpy as np
import pytest

from repro.apps.ccm2.gaussian import GaussianGrid
from repro.apps.ccm2.model import CCM2Model
from repro.apps.mom.grid import OceanGrid
from repro.apps.mom.model import MOMModel
from repro.apps.mom.state import warm_pool_state
from repro.apps.pop.model import POPModel
from repro.superux.checkpoint import Checkpoint, restore_model, take_checkpoint
from repro.superux.nqs import BatchJob, NQSQueue, QueueComplex
from repro.superux.sfs import MAX_FILE_BYTES, SFSFileSystem
from repro.units import MB


class TestCheckpointRestart:
    """Section 2.6.2: bit-identical continuation, no special programming."""

    def _roundtrip(self, make_model, warm_steps, extra_steps, probe):
        reference = make_model()
        reference.run(warm_steps)
        blob = take_checkpoint(reference)
        assert isinstance(blob, Checkpoint) and blob.nbytes > 0
        reference.run(extra_steps)

        restored = make_model()
        restore_model(restored, blob)
        assert restored.step_count == warm_steps
        restored.run(extra_steps)
        assert np.array_equal(probe(reference), probe(restored)), "continuation diverged"

    def test_ccm2_bit_identical(self):
        self._roundtrip(
            lambda: CCM2Model(GaussianGrid(32, 64), trunc=21, nlev=4),
            warm_steps=3,
            extra_steps=3,
            probe=lambda m: m.state.phi,
        )

    def test_mom_bit_identical(self):
        def make():
            grid = OceanGrid(nlon=24, nlat=16, nlev=3)
            model = MOMModel(grid, dt=1800.0)
            model.set_state(warm_pool_state(grid))
            return model

        self._roundtrip(make, warm_steps=4, extra_steps=4,
                        probe=lambda m: m.state.temperature)

    def test_pop_bit_identical(self):
        def make():
            model = POPModel(OceanGrid(nlon=24, nlat=16, nlev=3), dt=600.0)
            eta = np.zeros(model.grid.shape2d)
            eta[8, 12] = 0.5
            model.set_surface_anomaly(eta)
            return model

        self._roundtrip(make, warm_steps=3, extra_steps=3, probe=lambda m: m.eta)

    def test_kind_mismatch_rejected(self):
        ccm2 = CCM2Model(GaussianGrid(32, 64), trunc=21, nlev=4)
        pop = POPModel(OceanGrid(nlon=24, nlat=16, nlev=3), dt=600.0)
        blob = take_checkpoint(ccm2)
        with pytest.raises(ValueError):
            restore_model(pop, blob)

    def test_non_checkpointable_rejected(self):
        with pytest.raises(TypeError):
            take_checkpoint(object())
        with pytest.raises(TypeError):
            restore_model(object(), Checkpoint(data=b"", model_kind="X"))

    def test_blob_is_portable_npz(self):
        import io

        model = POPModel(OceanGrid(nlon=24, nlat=16, nlev=3), dt=600.0)
        blob = take_checkpoint(model)
        with np.load(io.BytesIO(blob.data)) as npz:
            assert "eta" in npz.files
            assert str(npz["__kind__"]) == "POPModel"


class TestNQS:
    def make_complex(self):
        return QueueComplex(
            queues=[
                NQSQueue("express", priority=10, max_cpus_per_job=4,
                         max_run_seconds=600, run_limit=2),
                NQSQueue("batch", priority=0, max_cpus_per_job=32,
                         max_run_seconds=86400, run_limit=4),
            ],
            node_cpus=32,
        )

    def test_queue_limits_enforced(self):
        qc = self.make_complex()
        with pytest.raises(ValueError):
            qc.submit(BatchJob("too-big", cpus=8, memory_gb=1, duration_s=60), "express")
        with pytest.raises(ValueError):
            qc.submit(BatchJob("too-long", cpus=2, memory_gb=1, duration_s=1e6), "express")
        with pytest.raises(KeyError):
            qc.submit(BatchJob("j", cpus=1, memory_gb=1, duration_s=10), "nonexistent")

    def test_priority_order(self):
        qc = self.make_complex()
        qc.submit(BatchJob("slowpoke", cpus=32, memory_gb=4, duration_s=100), "batch")
        qc.submit(BatchJob("urgent", cpus=4, memory_gb=1, duration_s=10), "express")
        qc.run()
        urgent = next(j for j, _ in qc.submitted if j.name == "urgent")
        slow = next(j for j, _ in qc.submitted if j.name == "slowpoke")
        # The express job starts first despite later submission order.
        assert urgent.start_time <= slow.start_time

    def test_run_limit_serialises_queue(self):
        qc = self.make_complex()
        for i in range(4):
            qc.submit(BatchJob(f"e{i}", cpus=1, memory_gb=0.1, duration_s=10), "express")
        makespan = qc.run()
        # run_limit=2: four 10s jobs take two waves.
        assert makespan == pytest.approx(20.0)

    def test_cpu_pool_enforced(self):
        qc = self.make_complex()
        for i in range(3):
            qc.submit(BatchJob(f"b{i}", cpus=16, memory_gb=1, duration_s=10), "batch")
        makespan = qc.run()
        # 3 x 16 CPUs on 32: two run, the third waits.
        assert makespan == pytest.approx(20.0)

    def test_accounting_records(self):
        qc = self.make_complex()
        qc.submit(BatchJob("j", cpus=4, memory_gb=1, duration_s=25), "batch")
        qc.run()
        rec = qc.accounting[0]
        assert rec.job == "j" and rec.queue == "batch"
        assert rec.ran_s == pytest.approx(25.0)
        assert rec.cpu_seconds == pytest.approx(100.0)

    def test_qcat_progressive_output(self):
        job = BatchJob(
            "chatty", cpus=1, memory_gb=0.1, duration_s=100,
            output_script=((0.0, "starting"), (0.5, "halfway"), (1.0, "done")),
        )
        assert job.qcat(now=0.0) == []  # not started
        job.start_time = 0.0
        assert job.qcat(now=10.0) == ["starting"]
        assert job.qcat(now=60.0) == ["starting", "halfway"]
        job.finish_time = 100.0
        assert job.qcat(now=100.0) == ["starting", "halfway", "done"]

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchJob("x", cpus=0, memory_gb=1, duration_s=1)
        with pytest.raises(ValueError):
            BatchJob("x", cpus=1, memory_gb=1, duration_s=1,
                     checkpoint_interval_s=0.0)
        with pytest.raises(ValueError):
            NQSQueue("q", run_limit=0)
        with pytest.raises(ValueError):
            QueueComplex(queues=[])
        with pytest.raises(ValueError):
            QueueComplex(queues=[NQSQueue("a"), NQSQueue("a")])
        qc = self.make_complex()
        with pytest.raises(ValueError):
            qc.run()


class TestNQSRequeue:
    """Section 2.6.3: a node fault requeues running work, nothing is lost."""

    def make_complex(self):
        return QueueComplex(
            queues=[NQSQueue("batch", max_run_seconds=86400, run_limit=4)],
            node_cpus=32,
        )

    def test_fault_without_checkpoint_restarts_from_scratch(self):
        qc = self.make_complex()
        job = BatchJob("j", cpus=4, memory_gb=1, duration_s=100)
        qc.submit(job, "batch")
        makespan = qc.run(node_faults=[60.0])
        # 60 s lost, then the full 100 s again.
        assert makespan == pytest.approx(160.0)
        assert job.requeues == 1
        rec = qc.accounting[0]
        assert rec.requeues == 1
        assert rec.cpu_seconds == pytest.approx(4 * 160.0)  # lost work billed
        assert rec.ran_s == pytest.approx(160.0)

    def test_checkpoint_interval_bounds_the_loss(self):
        qc = self.make_complex()
        job = BatchJob("j", cpus=4, memory_gb=1, duration_s=100,
                       checkpoint_interval_s=25.0)
        qc.submit(job, "batch")
        makespan = qc.run(node_faults=[60.0])
        # 50 s checkpointed before the fault at 60: only 50 s remain.
        assert makespan == pytest.approx(110.0)
        assert job.requeues == 1

    def test_fault_downtime_delays_the_requeue(self):
        qc = self.make_complex()
        job = BatchJob("j", cpus=4, memory_gb=1, duration_s=100,
                       checkpoint_interval_s=50.0)
        qc.submit(job, "batch")
        makespan = qc.run(node_faults=[60.0], fault_downtime_s=30.0)
        assert makespan == pytest.approx(60.0 + 30.0 + 50.0)

    def test_fault_outside_the_run_window_is_harmless(self):
        qc = self.make_complex()
        job = BatchJob("j", cpus=4, memory_gb=1, duration_s=100)
        qc.submit(job, "batch")
        makespan = qc.run(node_faults=[500.0])
        assert makespan == pytest.approx(100.0)
        assert job.requeues == 0

    def test_every_running_job_at_the_fault_is_requeued(self):
        qc = self.make_complex()
        jobs = [
            BatchJob(f"j{i}", cpus=8, memory_gb=1, duration_s=100)
            for i in range(3)
        ]
        for job in jobs:
            qc.submit(job, "batch")
        qc.run(node_faults=[50.0])
        assert [job.requeues for job in jobs] == [1, 1, 1]
        assert all(job.finish_time is not None for job in jobs)

    def test_fault_validation(self):
        qc = self.make_complex()
        qc.submit(BatchJob("j", cpus=4, memory_gb=1, duration_s=10), "batch")
        with pytest.raises(ValueError):
            qc.run(node_faults=[-1.0])
        with pytest.raises(ValueError):
            qc.run(fault_downtime_s=-1.0)


class TestSFS:
    def test_write_back_faster_than_write_through_for_bursts(self):
        wb = SFSFileSystem(write_back=True)
        wt = SFSFileSystem(write_back=False)
        wb.create("history")
        wt.create("history")
        t_wb = sum(wb.write("history", 4 * MB) for _ in range(20))
        t_wt = sum(wt.write("history", 4 * MB) for _ in range(20))
        assert t_wb < 0.1 * t_wt

    def test_flush_pays_the_disk_cost(self):
        fs = SFSFileSystem(write_back=True)
        fs.create("f")
        fs.write("f", 64 * MB)
        assert fs.dirty_total == pytest.approx(64 * MB)
        t_flush = fs.flush("f")
        assert fs.dirty_total == 0.0
        assert t_flush > 0.1  # 64 MB at tens of MB/s

    def test_cache_overflow_drains_synchronously(self):
        fs = SFSFileSystem(write_back=True, cache_limit_bytes=32 * MB)
        fs.create("f")
        fast = fs.write("f", 16 * MB)
        slow = fs.write("f", 32 * MB)  # overflows the 32 MB cache
        assert slow > fast
        assert fs.cached_bytes <= fs.cache_limit_bytes + 1e-6

    def test_read_prefers_cache(self):
        fs = SFSFileSystem(write_back=True)
        fs.create("f")
        fs.write("f", 16 * MB)
        cached = fs.read("f", 16 * MB)
        fs.flush("f")
        on_disk = fs.read("f", 16 * MB)
        assert cached < on_disk

    def test_cluster_allocation(self):
        fs = SFSFileSystem(cluster_bytes=1 * MB)
        fs.create("f")
        fs.write("f", 1.5 * MB)
        assert fs.allocated_bytes("f") == pytest.approx(2 * MB)
        fs.create("empty")
        assert fs.allocated_bytes("empty") == 0.0

    def test_files_beyond_two_terabytes(self):
        """'Individual files can exceed 2 terabytes in size.'"""
        fs = SFSFileSystem(write_back=False,
                           disk=__import__("repro.machine.iop", fromlist=["DiskArray"]).DiskArray(disks=256))
        fs.create("huge")
        fs.files["huge"].size_bytes = 3e12  # 3 TB
        assert fs.files["huge"].size_bytes > 2e12
        with pytest.raises(ValueError):
            fs.write("huge", MAX_FILE_BYTES)  # but not unbounded

    def test_namespace_rules(self):
        fs = SFSFileSystem()
        fs.create("a")
        with pytest.raises(FileExistsError):
            fs.create("a")
        with pytest.raises(FileNotFoundError):
            fs.write("missing", 1.0)
        with pytest.raises(ValueError):
            fs.read("a", 10.0)  # longer than the file

    def test_validation(self):
        with pytest.raises(ValueError):
            SFSFileSystem(staging_unit_bytes=0)
        with pytest.raises(ValueError):
            SFSFileSystem(cache_limit_bytes=-1.0)
        fs = SFSFileSystem()
        fs.create("f")
        with pytest.raises(ValueError):
            fs.write("f", -1.0)
