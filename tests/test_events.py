"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.events import Acquire, Release, Resource, SimulationError, Simulator


class TestBasics:
    def test_single_process_advances_time(self):
        sim = Simulator()

        def worker():
            yield 2.5
            return "done"

        proc = sim.spawn(worker(), name="w")
        sim.run()
        assert sim.now == pytest.approx(2.5)
        assert proc.finished
        assert proc.result == "done"
        assert proc.finish_time == pytest.approx(2.5)

    def test_spawn_with_delay(self):
        sim = Simulator()

        def worker():
            yield 1.0

        proc = sim.spawn(worker(), delay=3.0)
        sim.run()
        assert proc.start_time == pytest.approx(3.0)
        assert sim.now == pytest.approx(4.0)

    def test_negative_delay_rejected(self):
        sim = Simulator()

        def worker():
            yield -1.0

        sim.spawn(worker())
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_spawn_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.spawn(iter(()), delay=-1.0)

    def test_unsupported_yield_rejected(self):
        sim = Simulator()

        def worker():
            yield "nonsense"

        sim.spawn(worker())
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_until_pauses_and_resumes(self):
        sim = Simulator()

        def worker():
            yield 10.0
            return 99

        proc = sim.spawn(worker())
        sim.run(until=4.0)
        assert sim.now == pytest.approx(4.0)
        assert not proc.finished
        sim.run()
        assert proc.finished and proc.result == 99


class TestDeterminism:
    def test_fifo_tie_breaking(self):
        """Events at the same timestamp fire in spawn order."""
        sim = Simulator()
        order = []

        def worker(tag):
            yield 1.0
            order.append(tag)

        for tag in range(5):
            sim.spawn(worker(tag))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_repeated_runs_identical(self):
        def build():
            sim = Simulator()
            log = []

            def worker(tag, delay):
                yield delay
                log.append((tag, sim.now))

            for tag, delay in enumerate([0.3, 0.1, 0.3, 0.2]):
                sim.spawn(worker(tag, delay))
            sim.run()
            return log

        assert build() == build()


class TestJoin:
    def test_join_returns_result(self):
        sim = Simulator()

        def child():
            yield 5.0
            return 42

        def parent():
            kid = sim.spawn(child(), name="kid")
            value = yield kid
            return value * 2

        proc = sim.spawn(parent())
        sim.run()
        assert proc.result == 84
        assert sim.now == pytest.approx(5.0)

    def test_join_already_finished(self):
        sim = Simulator()

        def child():
            yield 1.0
            return "early"

        kid = sim.spawn(child())

        def parent():
            yield 3.0
            value = yield kid
            return value

        proc = sim.spawn(parent())
        sim.run()
        assert proc.result == "early"
        assert sim.now == pytest.approx(3.0)

    def test_fork_join_fan_out(self):
        sim = Simulator()

        def child(delay):
            yield delay
            return delay

        def parent():
            kids = [sim.spawn(child(d)) for d in (2.0, 5.0, 3.0)]
            results = []
            for kid in kids:
                value = yield kid
                results.append(value)
            return results

        proc = sim.spawn(parent())
        sim.run()
        assert proc.result == [2.0, 5.0, 3.0]
        # Wall time is the max of the children, not the sum.
        assert sim.now == pytest.approx(5.0)


class TestResources:
    def test_capacity_enforced(self):
        sim = Simulator()
        cpus = Resource(2, "cpus")
        busy_intervals = []

        def job(tag):
            yield Acquire(cpus)
            start = sim.now
            yield 1.0
            yield Release(cpus)
            busy_intervals.append((tag, start))

        for tag in range(4):
            sim.spawn(job(tag))
        sim.run()
        # Two jobs run immediately, two wait for a free slot.
        starts = sorted(start for _, start in busy_intervals)
        assert starts == pytest.approx([0.0, 0.0, 1.0, 1.0])
        assert cpus.available == 2

    def test_fifo_granting_no_barging(self):
        sim = Simulator()
        res = Resource(2, "r")
        grants = []

        def big():
            yield Acquire(res, 2)
            grants.append(("big", sim.now))
            yield 1.0
            yield Release(res, 2)

        def small(tag):
            yield Acquire(res, 1)
            grants.append((tag, sim.now))
            yield 0.5
            yield Release(res, 1)

        def scenario():
            yield Acquire(res, 1)
            sim.spawn(big())  # needs both units; must wait for us
            yield 0.0
            sim.spawn(small("late"))  # would fit now, but big is ahead
            yield 2.0
            yield Release(res, 1)

        sim.spawn(scenario())
        sim.run()
        assert grants[0][0] == "big"  # FIFO: big goes before late small

    def test_over_release_rejected(self):
        sim = Simulator()
        res = Resource(1, "r")

        def bad():
            yield Release(res, 1)

        sim.spawn(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_oversized_request_rejected(self):
        sim = Simulator()
        res = Resource(2, "r")

        def bad():
            yield Acquire(res, 3)

        sim.spawn(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_zero_amount_rejected(self):
        res = Resource(2, "r")
        with pytest.raises(SimulationError):
            Acquire(res, 0)
        with pytest.raises(SimulationError):
            Release(res, 0)

    def test_bad_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Resource(0, "r")

    def test_utilisation_trace_recorded(self):
        sim = Simulator()
        res = Resource(1, "r")

        def job():
            yield Acquire(res)
            yield 1.0
            yield Release(res)

        sim.spawn(job())
        sim.run()
        assert res.utilisation[0] == (0.0, 1)
        assert res.utilisation[-1][1] == 0
