"""Failure-injection and stress tests for the discrete-event engine.

The engine under PRODLOAD and NQS must fail loudly, not silently: a
crashing process, a deadlock, or resource misuse should surface as an
exception at ``run()``, never as a hung or quietly-wrong simulation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import Acquire, Release, Resource, SimulationError, Simulator


class TestProcessCrashes:
    def test_exception_propagates_from_run(self):
        sim = Simulator()

        def bomb():
            yield 1.0
            raise RuntimeError("component crashed")

        sim.spawn(bomb())
        with pytest.raises(RuntimeError, match="component crashed"):
            sim.run()

    def test_crash_timing_is_deterministic(self):
        """The crash surfaces at its simulated time, after earlier events."""
        sim = Simulator()
        log = []

        def fine():
            yield 0.5
            log.append("fine done")

        def bomb():
            yield 1.0
            raise ValueError("late bomb")

        sim.spawn(bomb())
        sim.spawn(fine())
        with pytest.raises(ValueError):
            sim.run()
        assert log == ["fine done"]
        assert sim.now == pytest.approx(1.0)

    def test_joiner_of_crashed_process_never_resumes_silently(self):
        sim = Simulator()

        def child():
            yield 1.0
            raise RuntimeError("child died")

        def parent():
            kid = sim.spawn(child())
            yield kid
            return "should never get here"

        proc = sim.spawn(parent())
        with pytest.raises(RuntimeError):
            sim.run()
        assert not proc.finished


class TestResourceMisuse:
    def test_leaked_resource_blocks_later_jobs_visibly(self):
        """A process that forgets to release leaves waiters queued; the
        simulation ends with the resource still held — detectable state,
        not a wrong answer."""
        sim = Simulator()
        cpus = Resource(1, "cpus")
        started = []

        def leaker():
            yield Acquire(cpus)
            yield 1.0
            # no Release: the bug under test

        def waiter():
            yield Acquire(cpus)
            started.append("waiter ran")
            yield Release(cpus)

        sim.spawn(leaker())
        sim.spawn(waiter())
        sim.run()
        assert started == []  # the waiter never ran...
        assert cpus.in_use == 1  # ...and the leak is visible

    def test_double_release_raises(self):
        sim = Simulator()
        res = Resource(2, "r")

        def buggy():
            yield Acquire(res)
            yield Release(res)
            yield Release(res)

        sim.spawn(buggy())
        with pytest.raises(SimulationError):
            sim.run()


class TestStress:
    @given(n=st.integers(1, 60), capacity=st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_pipeline_conserves_jobs(self, n, capacity):
        """n unit jobs through a capacity-c resource: all complete, the
        makespan is exactly ceil(n/c), and the resource drains."""
        sim = Simulator()
        res = Resource(capacity, "r")
        done = []

        def job(i):
            yield Acquire(res)
            yield 1.0
            yield Release(res)
            done.append(i)

        for i in range(n):
            sim.spawn(job(i))
        sim.run()
        assert sorted(done) == list(range(n))
        assert res.available == capacity
        assert sim.now == pytest.approx(-(-n // capacity) * 1.0)

    @given(delays=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=30))
    @settings(max_examples=20, deadline=None)
    def test_wall_clock_is_max_of_delays(self, delays):
        sim = Simulator()

        def sleeper(d):
            yield d

        for d in delays:
            sim.spawn(sleeper(d))
        sim.run()
        assert sim.now == pytest.approx(max(delays))

    def test_deep_fork_join_chain(self):
        """A 100-deep chain of joins completes without recursion issues."""
        sim = Simulator()

        def link(depth):
            if depth == 0:
                yield 1.0
                return 0
            child = sim.spawn(link(depth - 1))
            value = yield child
            return value + 1

        root = sim.spawn(link(100))
        sim.run()
        assert root.result == 100
        assert sim.now == pytest.approx(1.0)
