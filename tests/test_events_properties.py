"""Property-based tests for the discrete-event engine's ordering laws.

Two invariants the PRODLOAD/NQS schedules (and the sim-clock spans
perfmon records over them) lean on:

* **FIFO fairness** — :class:`repro.events.Resource` grants waiters in
  arrival order with no barging: a later, smaller request never
  overtakes an earlier one that is still waiting.
* **Deterministic zero-delay ordering** — events scheduled for the same
  simulated instant fire in schedule order, so whole runs are
  reproducible step-for-step.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import Acquire, Release, Resource, Simulator


def _holder(res, amount, hold):
    yield Acquire(res, amount)
    yield hold
    yield Release(res, amount)


class TestResourceFifoFairness:
    def test_waiters_granted_in_arrival_order(self):
        sim = Simulator()
        res = Resource(1, "cpu")
        grants = []

        def contender(tag):
            yield Acquire(res, 1)
            grants.append((tag, sim.now))
            yield 1.0
            yield Release(res, 1)

        for tag in ("a", "b", "c", "d"):
            sim.spawn(contender(tag), name=tag)
        sim.run()
        assert [tag for tag, _ in grants] == ["a", "b", "c", "d"]
        assert [t for _, t in grants] == pytest.approx([0.0, 1.0, 2.0, 3.0])

    def test_small_request_cannot_barge_past_large_one(self):
        """capacity 2 with 1 unit held: a queued request for 2 blocks a
        later request for 1, even though that 1 unit would fit."""
        sim = Simulator()
        res = Resource(2, "mem")
        order = []

        def big():
            yield 0.1  # arrives while holder has 1 of 2 units
            yield Acquire(res, 2)
            order.append("big")
            yield Release(res, 2)

        def small():
            yield 0.2  # 1 unit is free, but big is ahead in the queue
            yield Acquire(res, 1)
            order.append("small")
            yield Release(res, 1)

        def holder():
            yield Acquire(res, 1)
            yield 1.0
            yield Release(res, 1)

        sim.spawn(holder())
        sim.spawn(big())
        sim.spawn(small())
        sim.run()
        assert order == ["big", "small"]

    @settings(max_examples=50, deadline=None)
    @given(
        amounts=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=8),
        capacity=st.integers(min_value=4, max_value=6),
    )
    def test_grant_order_is_arrival_order(self, amounts, capacity):
        """Whatever the request sizes, completions of identical-length
        holds respect the arrival order of their acquires."""
        sim = Simulator()
        res = Resource(capacity, "pool")
        grant_order = []

        def contender(idx, amount):
            yield idx * 0.001  # strictly staggered arrivals
            yield Acquire(res, amount)
            grant_order.append(idx)
            yield 1.0
            yield Release(res, amount)

        for idx, amount in enumerate(amounts):
            sim.spawn(contender(idx, amount))
        sim.run()
        assert grant_order == sorted(grant_order)
        assert res.available == res.capacity  # everything released

    @settings(max_examples=50, deadline=None)
    @given(
        holds=st.lists(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            min_size=1,
            max_size=6,
        )
    )
    def test_unit_resource_serializes_in_fifo_order(self, holds):
        """With capacity 1, start times are the running sum of the
        earlier holds — exact FIFO serialization."""
        sim = Simulator()
        res = Resource(1, "cpu")
        starts = {}

        def job(idx, hold):
            yield Acquire(res, 1)
            starts[idx] = sim.now
            if hold:
                yield hold
            yield Release(res, 1)

        for idx, hold in enumerate(holds):
            sim.spawn(job(idx, hold))
        sim.run()
        expected = 0.0
        for idx, hold in enumerate(holds):
            assert starts[idx] == pytest.approx(expected)
            expected += hold


class TestZeroDelayDeterminism:
    def test_same_instant_events_fire_in_schedule_order(self):
        sim = Simulator()
        log = []

        def worker(tag):
            yield 0.0
            log.append(tag)

        for tag in range(10):
            sim.spawn(worker(tag))
        sim.run()
        assert log == list(range(10))

    @settings(max_examples=50, deadline=None)
    @given(
        delays=st.lists(
            st.sampled_from([0.0, 0.5, 1.0]), min_size=1, max_size=8
        )
    )
    def test_equal_timestamps_resolve_by_spawn_order(self, delays):
        sim = Simulator()
        log = []

        def worker(idx, delay):
            yield delay
            log.append((delay, idx))

        for idx, delay in enumerate(delays):
            sim.spawn(worker(idx, delay))
        sim.run()
        assert log == sorted(log)  # by (delay, spawn index)

    @settings(max_examples=25, deadline=None)
    @given(
        script=st.lists(
            st.tuples(
                st.sampled_from([0.0, 0.25, 1.0]),  # spawn delay
                st.integers(min_value=1, max_value=2),  # acquire amount
                st.sampled_from([0.0, 0.5]),  # hold time
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_runs_are_identical_step_for_step(self, script):
        """The same script replayed twice produces the same event log,
        including zero-delay ties and resource handoffs."""

        def execute():
            sim = Simulator()
            res = Resource(2, "pool")
            log = []

            def job(idx, delay, amount, hold):
                yield delay
                yield Acquire(res, amount)
                log.append(("got", idx, sim.now))
                if hold:
                    yield hold
                yield Release(res, amount)
                log.append(("rel", idx, sim.now))

            for idx, (delay, amount, hold) in enumerate(script):
                sim.spawn(job(idx, delay, amount, hold))
            sim.run()
            return log, sim.now

        assert execute() == execute()

    def test_traced_and_untraced_runs_agree_on_schedule(self):
        """Attaching a perfmon tracer must not perturb event order."""
        from repro.perfmon.collector import profile, sim_tracer

        def execute(tracer):
            sim = Simulator(tracer=tracer)
            res = Resource(1, "cpu")
            for idx in range(5):
                sim.spawn(_holder(res, 1, 0.5), name=f"j{idx}")
            sim.run()
            finish = [(p.name, p.start_time, p.finish_time) for p in sim.processes]
            return finish, sim.now

        bare = execute(None)
        with profile():
            traced = execute(sim_tracer())
        assert bare == traced
