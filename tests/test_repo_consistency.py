"""Repository-level consistency checks.

These tests keep the documentation honest as the code grows: every
module documents itself, every experiment the registry knows is recorded
in EXPERIMENTS.md, and every benchmark target exists.
"""

import importlib
import pathlib
import pkgutil

import repro
from repro.suite.experiments import EXPERIMENTS

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        missing = []
        for name in _walk_modules():
            module = importlib.import_module(name)
            if not (module.__doc__ or "").strip():
                missing.append(name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_module_imports_cleanly(self):
        count = 0
        for name in _walk_modules():
            importlib.import_module(name)
            count += 1
        # The repo holds a lot of subsystems; a silent collapse of the
        # package tree (e.g. a broken __init__) would show up here.
        assert count >= 45


class TestDocumentationSync:
    def test_every_experiment_recorded_in_experiments_md(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        labels = {
            "table1": "Table 1", "table2": "Table 2", "table3": "Table 3",
            "table4": "Table 4", "table5": "Table 5", "table6": "Table 6",
            "table7": "Table 7", "figure5": "Figure 5", "figure6": "Figure 6",
            "figure7": "Figure 7", "figure8": "Figure 8",
            "sec2": "§2", "sec3": "§3", "sec4.1": "§4.1", "sec4.4": "§4.4",
            "sec4.5": "§4.5", "sec4.6": "§4.6", "sec4.7.3": "§4.7.3",
        }
        assert set(labels) == set(EXPERIMENTS), "registry/docs label map drifted"
        for exp_id, label in labels.items():
            assert label in text, f"{exp_id} ({label}) missing from EXPERIMENTS.md"

    def test_every_tabled_experiment_has_a_bench_file(self):
        bench_dir = REPO_ROOT / "benchmarks"
        benches = {p.name for p in bench_dir.glob("bench_*.py")}
        expected = {
            "table1": "bench_table1_hint_vs_radabs.py",
            "table2": "bench_table2_specs.py",
            "table3": "bench_table3_elefunt.py",
            "table4": "bench_table4_resolutions.py",
            "table5": "bench_table5_oneyear.py",
            "table6": "bench_table6_ensemble.py",
            "table7": "bench_table7_mom.py",
            "figure5": "bench_fig5_membw.py",
            "figure6": "bench_fig6_rfft.py",
            "figure7": "bench_fig7_vfft.py",
            "figure8": "bench_fig8_ccm2_scaling.py",
            "sec2": "bench_sec2_architecture.py",
            "sec3": "bench_sec3_other_benchmarks.py",
            "sec4.1": "bench_sec41_correctness.py",
            "sec4.4": "bench_sec44_radabs.py",
            "sec4.5": "bench_sec45_io.py",
            "sec4.6": "bench_sec46_prodload.py",
            "sec4.7.3": "bench_sec473_pop.py",
        }
        assert set(expected) == set(EXPERIMENTS)
        for exp_id, filename in expected.items():
            assert filename in benches, f"{exp_id} has no bench file {filename}"

    def test_design_md_names_every_subpackage(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        for package in ("machine", "kernels", "ccm2", "mom", "pop",
                        "iosim", "scheduler", "superux", "suite"):
            assert package in text, f"DESIGN.md does not mention {package!r}"

    def test_examples_exist_and_are_runnable_scripts(self):
        examples = sorted((REPO_ROOT / "examples").glob("*.py"))
        assert len(examples) >= 5
        for path in examples:
            head = path.read_text().splitlines()
            assert head[0].startswith("#!"), f"{path.name} missing shebang"
            assert '"""' in head[1], f"{path.name} missing docstring"
