"""Tests for repro.units."""

import math

import pytest

from repro import units


class TestConversions:
    def test_hz_from_period_ns_sx4_benchmark_clock(self):
        # The 9.2 ns benchmarked machine runs at ~108.7 MHz.
        assert units.hz_from_period_ns(9.2) == pytest.approx(108.695652e6, rel=1e-6)

    def test_hz_from_period_ns_production_clock(self):
        assert units.hz_from_period_ns(8.0) == pytest.approx(125e6)

    def test_period_roundtrip(self):
        for period in (0.5, 6.0, 8.0, 9.2, 1000.0):
            assert units.period_ns_from_hz(units.hz_from_period_ns(period)) == pytest.approx(
                period
            )

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            units.hz_from_period_ns(0.0)
        with pytest.raises(ValueError):
            units.hz_from_period_ns(-1.0)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            units.period_ns_from_hz(0.0)

    def test_ns_to_s(self):
        assert units.ns_to_s(9.2) == pytest.approx(9.2e-9)
        assert units.s_to_ns(1.0) == pytest.approx(1e9)


class TestFormatting:
    def test_fmt_rate_gigabytes(self):
        assert units.fmt_rate(16e9) == "16.00 GB/s"

    def test_fmt_rate_megabytes(self):
        assert units.fmt_rate(2.5e6) == "2.50 MB/s"

    def test_fmt_bytes(self):
        assert units.fmt_bytes(15e9) == "15.00 GB"
        assert units.fmt_bytes(512) == "512.00 B"

    def test_fmt_flops(self):
        assert units.fmt_flops(865.9e6) == "865.9 Mflops"
        assert units.fmt_flops(24e9) == "24.0 Gflops"

    def test_fmt_time_subsecond(self):
        assert units.fmt_time(5e-9).endswith("ns")
        assert units.fmt_time(5e-6).endswith("us")
        assert units.fmt_time(5e-3).endswith("ms")

    def test_fmt_time_prodload_result(self):
        # The paper's PRODLOAD completion: 93 minutes 28 seconds.
        assert units.fmt_time(5608) == "1h33m28s"

    def test_fmt_time_minutes(self):
        assert units.fmt_time(1327.53) == "22m08s"

    def test_fmt_time_rejects_negative(self):
        with pytest.raises(ValueError):
            units.fmt_time(-1.0)


class TestParseHms:
    def test_parse_prodload(self):
        assert units.parse_hms("1h33m28s") == pytest.approx(5608.0)

    def test_parse_minutes_only(self):
        assert units.parse_hms("93m28s") == pytest.approx(5608.0)

    def test_parse_seconds(self):
        assert units.parse_hms("42s") == pytest.approx(42.0)
        assert units.parse_hms("42.5s") == pytest.approx(42.5)

    def test_roundtrip_with_fmt_time(self):
        for seconds in (61, 3599, 3600, 5608, 86399):
            assert units.parse_hms(units.fmt_time(seconds)) == pytest.approx(seconds)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            units.parse_hms("not a duration")
        with pytest.raises(ValueError):
            units.parse_hms("")


class TestConstants:
    def test_decimal_units(self):
        assert units.GB == 1e9
        assert units.MB == 1e6

    def test_word_size(self):
        # The SX-4 is a 64-bit machine.
        assert units.WORD_BYTES == 8

    def test_scaled_picks_largest_unit(self):
        value, suffix = units._scaled(1.0, [(1e3, "k"), (1.0, "u")])
        assert (value, suffix) == (1.0, "u")
        value, suffix = units._scaled(0.5, [(1e3, "k"), (1.0, "u")])
        assert math.isclose(value, 0.5) and suffix == "u"
